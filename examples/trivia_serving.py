"""Question-answering service over a token-level corpus.

Run with::

    python examples/trivia_serving.py

The workload the paper's intro motivates: factoid QA against an external
knowledge store. This example exercises the *full* offline and online paths —
raw token documents are chunked and encoded (no pre-made embeddings), queries
arrive as text, and responses carry the augmented prompts. It then checks
retrieval quality against the exhaustive ground truth and reports where the
Hermes accuracy/efficiency trade-off lands.
"""

import numpy as np

from repro import HermesConfig, HermesSystem, MonolithicRetriever, ndcg
from repro.datastore import (
    ChunkStore,
    CorpusGenerator,
    SyntheticEncoder,
    TokenVocabulary,
    chunk_documents,
)

N_TOPICS = 8
N_DOCS = 600
QUERIES_PER_TOPIC = 4


def build_knowledge_store():
    """Offline stage: documents -> chunks -> embeddings (paper Fig. 2)."""
    vocab = TokenVocabulary(n_topics=N_TOPICS, pool_size=150, common_size=100)
    generator = CorpusGenerator(vocab, doc_tokens=128, topical_fraction=0.75, seed=1)
    documents = generator.generate(N_DOCS)
    chunks = chunk_documents(documents, chunk_tokens=64)
    encoder = SyntheticEncoder(dim=96, seed=0)
    embeddings = encoder.encode_chunks(chunks)
    return vocab, chunks, encoder, embeddings


def make_questions(vocab: TokenVocabulary) -> list[tuple[str, int]]:
    """Text questions, each drawn from one topic's characteristic tokens."""
    rng = np.random.default_rng(7)
    questions = []
    for topic in range(N_TOPICS):
        pool = vocab.topic_pool(topic)
        for _ in range(QUERIES_PER_TOPIC):
            tokens = rng.choice(pool, size=16, replace=False)
            questions.append((" ".join(f"tok{t}" for t in tokens), topic))
    return questions


def main() -> None:
    vocab, chunks, encoder, embeddings = build_knowledge_store()
    print(f"knowledge store: {len(chunks)} chunks, dim {embeddings.shape[1]}")

    system = HermesSystem(
        embeddings,
        total_tokens=100e9,  # the deployment scale being modelled
        config=HermesConfig(n_clusters=N_TOPICS, clusters_to_search=2),
        chunk_store=ChunkStore(chunks),
        encoder=encoder,
    )
    questions = make_questions(vocab)
    texts = [q for q, _ in questions]

    response = system.serve(texts)
    print(f"\nserved {len(texts)} questions")
    print(f"retrieval per stride: {response.retrieval.latency_s:.2f} s")
    print(f"E2E generation      : {response.generation.e2e_s:.1f} s")

    # How topically on-target is the augmentation?
    on_target = 0
    for (text, topic), augmented in zip(questions, response.augmented):
        context_topics = [
            vocab.topic_of_token(int(w[3:]))
            for w in augmented.context_texts[0].split()
            if vocab.topic_of_token(int(w[3:])) >= 0
        ]
        if context_topics and np.bincount(
            context_topics, minlength=N_TOPICS
        ).argmax() == topic:
            on_target += 1
    print(f"context topical hit rate: {on_target}/{len(questions)}")

    # Retrieval quality vs the exhaustive ground truth.
    mono = MonolithicRetriever(embeddings)
    query_emb = encoder.encode_batch(texts)
    _, truth = mono.ground_truth(query_emb, 5)
    score = ndcg(response.retrieval.search.ids, truth)
    print(f"Hermes NDCG vs brute force: {score:.3f} "
          f"(searching {system.config.clusters_to_search}/{N_TOPICS} clusters)")

    example = response.augmented[0]
    print("\nexample augmented prompt (truncated):")
    print(" ", example.prompt()[:120], "...")


if __name__ == "__main__":
    main()
