"""Capacity planning: size a Hermes fleet for a target deployment.

Run with::

    python examples/capacity_planning.py

The operator-facing use of the paper's §4.1/Fig. 10/Fig. 19 analysis: given a
datastore size, an inference model, and a serving shape, pick the cluster
count so retrieval hides under inference, then report the resulting fleet —
node count, memory per node, throughput, energy per request — and what the
two DVFS policies save.
"""

from repro.experiments.fig10 import max_hidden_cluster_tokens, recommended_clusters
from repro.experiments.common import build_fleet, hermes_retrieval_cost, monolithic_retrieval_cost
from repro.llm.generation import GenerationConfig, RetrievalCost, constant_retrieval, simulate_generation
from repro.llm.inference import InferenceModel
from repro.llm.models import get_model
from repro.perfmodel.aggregate import DVFSPolicy, expected_deep_loads
from repro.perfmodel.measurements import index_memory_bytes

DATASTORE_TOKENS = 300e9
MODEL_KEY = "gemma2_9b"
SERVING = GenerationConfig(batch=128, input_tokens=512, output_tokens=256, stride=16)


def main() -> None:
    inference = InferenceModel(model=get_model(MODEL_KEY))
    window = (
        inference.prefill(SERVING.batch, SERVING.input_tokens).latency_s
        + inference.decode(SERVING.batch, SERVING.stride).latency_s
    )
    print(f"deployment target : {DATASTORE_TOKENS:.0e} tokens, {inference.model.name}")
    print(f"inference window  : {window:.2f} s per stride (batch {SERVING.batch})")

    # 1. Cluster sizing (Fig. 10's pipeline-gap rule).
    max_cluster = max_hidden_cluster_tokens(config=SERVING)
    n_clusters = recommended_clusters(DATASTORE_TOKENS, config=SERVING)
    print(f"\nmax hidden cluster: {max_cluster:.3g} tokens")
    print(f"recommended fleet : {n_clusters} nodes")
    per_node_gb = index_memory_bytes(DATASTORE_TOKENS / n_clusters) / 1e9
    print(f"memory per node   : {per_node_gb:.0f} GB (IVF-SQ8)")

    # 2. Model the fleet under the NQ-like access skew.
    fleet = build_fleet(DATASTORE_TOKENS, n_clusters=n_clusters)
    clusters_to_search = 3
    loads = expected_deep_loads(SERVING.batch, fleet.access_frequency, clusters_to_search)

    plain = fleet.model.hermes(SERVING.batch, loads)
    dvfs = fleet.model.hermes(SERVING.batch, loads, dvfs=DVFSPolicy.BASELINE)
    enhanced = fleet.model.hermes(
        SERVING.batch, loads, dvfs=DVFSPolicy.ENHANCED, latency_target_s=window
    )
    naive = fleet.model.naive_split(SERVING.batch)
    mono = monolithic_retrieval_cost(DATASTORE_TOKENS, SERVING.batch)

    print(f"\nretrieval per stride (batch {SERVING.batch}):")
    print(f"  monolithic      : {mono.latency_s:7.2f} s   {mono.energy_j:9.0f} J")
    print(f"  naive split     : {naive.latency_s:7.2f} s   {naive.energy_j:9.0f} J")
    print(f"  hermes          : {plain.latency_s:7.2f} s   {plain.energy_j:9.0f} J")
    print(f"  hermes +dvfs    : {dvfs.latency_s:7.2f} s   {dvfs.energy_j:9.0f} J")
    print(f"  hermes +dvfs++  : {enhanced.latency_s:7.2f} s   {enhanced.energy_j:9.0f} J")
    print(f"  fleet throughput: {fleet.model.throughput_qps(SERVING.batch, plain):.0f} QPS")
    hidden = "yes" if plain.latency_s <= window else "NO — add nodes"
    print(f"  hides under inference window: {hidden}")

    # 3. End-to-end request view (pipelined + prefix-cached stack).
    from dataclasses import replace

    cost = hermes_retrieval_cost(
        fleet, SERVING.batch, clusters_to_search=clusters_to_search,
        dvfs=DVFSPolicy.ENHANCED, latency_target_s=window,
    )
    stack_cfg = replace(SERVING, pipelined=True, prefix_cached=True)
    stacked = simulate_generation(constant_retrieval(cost), inference, stack_cfg)
    baseline = simulate_generation(
        constant_retrieval(RetrievalCost(mono.latency_s, mono.energy_j)),
        inference,
        SERVING,
    )
    print("\nend-to-end per batch:")
    print(f"  baseline (monolithic, unoptimized): {baseline.e2e_s:7.1f} s")
    print(f"  hermes/piperag/ragcache stack     : {stacked.e2e_s:7.1f} s")
    print(f"  speedup                           : {baseline.e2e_s / stacked.e2e_s:7.2f}x")
    print(f"  energy saving                     : "
          f"{baseline.total_energy_j / stacked.total_energy_j:7.2f}x")


if __name__ == "__main__":
    main()
