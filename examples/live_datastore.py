"""Live datastore operations: online ingest and node-failure handling.

Run with::

    python examples/live_datastore.py

RAG's core promise is a *mutable* knowledge store (paper §1: incorporate
real-time information "without needing frequent re-training"). This example
drives a deployed Hermes datastore through its operational lifecycle:

1. build the clustered deployment;
2. ingest a breaking-news burst of new documents online and retrieve them
   immediately;
3. retract part of the burst (tombstones) and compact the deltas away;
4. lose a retrieval node and keep serving from the survivors;
5. watch the imbalance metric that tells the operator when to re-split.
"""

import numpy as np

from repro import HermesConfig, MonolithicRetriever, cluster_datastore, make_corpus, ndcg
from repro.core.hierarchical import HermesSearcher


def main() -> None:
    corpus = make_corpus(8000, n_topics=10, dim=64, seed=6)
    config = HermesConfig()
    datastore = cluster_datastore(corpus.embeddings, config)
    searcher = HermesSearcher(datastore)
    print(
        f"deployed: {datastore.ntotal} docs across {datastore.n_clusters} "
        f"nodes, imbalance {datastore.imbalance:.2f}x"
    )

    # -- 1. online ingest ------------------------------------------------
    # A burst of fresh documents, skewed toward one hot topic (breaking news).
    model = corpus.topic_model
    hot_weights = np.full(10, 0.02)
    hot_weights[3] = 1.0 - hot_weights.sum() + 0.02
    fresh, _ = model.sample_queries(600, topic_weights=hot_weights / hot_weights.sum())
    new_ids = datastore.add_documents(fresh)
    print(f"\ningested {len(new_ids)} fresh docs "
          f"(hot topic 3); imbalance now {datastore.imbalance:.2f}x")

    # The fresh documents are immediately retrievable.
    probe = fresh[:32]
    result = searcher.search(probe, k=1, clusters_to_search=3)
    hit = (np.isin(result.ids[:, 0], new_ids)).mean()
    print(f"fresh-doc retrievability (top-1 is a fresh doc): {hit:.0%}")

    # -- 2. deletes + compaction -----------------------------------------
    # Retract part of the burst (corrections happen): tombstones hide the
    # documents immediately, compaction folds the rest into fresh sealed
    # indices and clears the delta memtables.
    retracted = new_ids[:100]
    datastore.delete_documents(retracted)
    gone = searcher.search(fresh[:100], k=1, clusters_to_search=3)
    leaked = int(np.isin(gone.ids, retracted).sum())
    print(f"retracted {len(retracted)} docs; leaked into results: {leaked}")
    print(f"delta rows before compaction: {datastore.delta_rows()}")
    compacted = datastore.compact()
    print(f"compacted {compacted} shard(s); delta rows now "
          f"{datastore.delta_rows()}, generation {datastore.generation}")

    # -- 3. node failure ----------------------------------------------------
    queries, _ = model.sample_queries(64, query_spread=0.25)
    all_vectors = np.concatenate([corpus.embeddings, fresh])
    mono = MonolithicRetriever(all_vectors)
    _, truth = mono.ground_truth(queries, 5)

    healthy = searcher.search(queries, clusters_to_search=3)
    print(f"\nhealthy fleet NDCG: {ndcg(healthy.ids, truth):.3f}")

    dead = 3  # the hot node, worst case
    degraded = searcher.search(queries, clusters_to_search=3, exclude_clusters={dead})
    print(f"node {dead} down      : {ndcg(degraded.ids, truth):.3f} "
          f"(lost shard held {len(datastore.shards[dead])} docs)")

    two_dead = searcher.search(
        queries, clusters_to_search=3, exclude_clusters={dead, 7}
    )
    print(f"nodes {dead} and 7 down: {ndcg(two_dead.ids, truth):.3f}")
    print("\nservice continues from the surviving clusters; the operator "
          "re-splits offline when imbalance or coverage drifts too far.")


if __name__ == "__main__":
    main()
