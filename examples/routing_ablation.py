"""Routing-strategy ablation: why document sampling beats centroids.

Run with::

    python examples/routing_ablation.py

Reproduces the design argument of the paper's §4.2 interactively: on the
same clustered datastore, compare four ways of choosing which clusters to
deep-search — Hermes document sampling, centroid-only ranking, a naive random
split, and exhaustive search — as the deep-search fan-out grows. Prints the
NDCG table and the per-query work each strategy pays.
"""

from repro import HermesConfig, MonolithicRetriever, cluster_datastore, make_corpus, ndcg
from repro.core.clustering import split_datastore_evenly
from repro.core.hierarchical import HierarchicalSearcher
from repro.core.router import CentroidRouter, SampledRouter
from repro.datastore import trivia_queries
from repro.metrics import format_table


def main() -> None:
    corpus = make_corpus(12_000, n_topics=10, dim=64, seed=4)
    queries = trivia_queries(corpus.topic_model, 96)
    config = HermesConfig()

    mono = MonolithicRetriever(corpus.embeddings)
    _, truth = mono.ground_truth(queries.embeddings, config.k)

    clustered = cluster_datastore(corpus.embeddings, config)
    random_split = split_datastore_evenly(corpus.embeddings, config)
    print(
        f"clustered datastore: {clustered.n_clusters} shards, "
        f"imbalance {clustered.imbalance:.2f}x (paper ~2x)\n"
    )

    strategies = {
        "Hermes (sampling)": HierarchicalSearcher(clustered, router=SampledRouter()),
        "Centroid-based": HierarchicalSearcher(clustered, router=CentroidRouter()),
        "Random split": HierarchicalSearcher(random_split, router=SampledRouter()),
    }

    rows = []
    for m in (1, 2, 3, 5, 10):
        row = [m]
        for searcher in strategies.values():
            result = searcher.search(queries.embeddings, clusters_to_search=m)
            row.append(ndcg(result.ids, truth))
        rows.append(row)
    _, mono_ids = mono.search(queries.embeddings, config.k)
    print(
        format_table(
            ["clusters searched"] + list(strategies),
            rows,
            title=f"NDCG vs deep-search fan-out (monolithic = {ndcg(mono_ids, truth):.3f})",
        )
    )

    # The work side of the trade-off: shard-queries issued per batch.
    print("\nwork per batch (deep shard-queries, fan-out 3 vs exhaustive):")
    hermes3 = strategies["Hermes (sampling)"].search(
        queries.embeddings, clusters_to_search=3
    )
    exhaustive = strategies["Hermes (sampling)"].search(
        queries.embeddings, clusters_to_search=10
    )
    print(f"  Hermes fan-out 3 : {hermes3.shard_queries}")
    print(f"  search all 10    : {exhaustive.shard_queries}")
    print(f"  work saved       : {exhaustive.shard_queries / hermes3.shard_queries:.2f}x")


if __name__ == "__main__":
    main()
