"""Quickstart: build a Hermes RAG deployment and serve a query batch.

Run with::

    python examples/quickstart.py

This walks the minimal happy path: generate a topic-structured corpus, build
the clustered Hermes datastore modelling a trillion-token deployment,
retrieve with the hierarchical search, and simulate the full strided
generation — printing the latency/energy comparison against the monolithic
baseline.
"""

from repro import GenerationConfig, HermesConfig, HermesSystem, make_corpus
from repro.datastore import trivia_queries


def main() -> None:
    # 1. A corpus with latent topic structure (stands in for Common Crawl
    #    embeddings; see DESIGN.md "Substitutions").
    corpus = make_corpus(10_000, n_topics=10, dim=64, seed=0)
    queries = trivia_queries(corpus.topic_model, 32)

    # 2. A Hermes deployment: 10 clustered indices modelling a 1T-token
    #    datastore, searched 3-deep with the paper's nProbe split.
    system = HermesSystem(
        corpus.embeddings,
        total_tokens=1e12,
        config=HermesConfig(n_clusters=10, clusters_to_search=3),
        generation=GenerationConfig(batch=32, input_tokens=512, output_tokens=256, stride=16),
    )
    print("deployment:", system.describe(), "\n")

    # 3. Serve one batch: real retrieval results, modelled system cost.
    response = system.serve(queries.embeddings)
    retrieval = response.retrieval
    print(f"retrieved ids (first query): {retrieval.search.ids[0]}")
    print(f"retrieval per stride : {retrieval.latency_s:8.2f} s  {retrieval.energy_j:9.0f} J")
    print(f"TTFT                 : {response.generation.ttft_s:8.2f} s")
    print(f"end-to-end           : {response.generation.e2e_s:8.2f} s")
    print(f"total energy         : {response.generation.total_energy_j:8.0f} J\n")

    # 4. Against the monolithic baseline on the same workload.
    mono = system.scheduler.monolithic_dispatch(batch=32)
    print(f"monolithic retrieval : {mono.latency_s:8.2f} s per stride")
    print(f"Hermes speedup       : {mono.latency_s / retrieval.latency_s:8.2f}x")


if __name__ == "__main__":
    main()
