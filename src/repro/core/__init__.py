"""Hermes core: the paper's primary contribution.

Datastore disaggregation (K-means split with seed sweep), hierarchical
sample-then-deep search, fleet scheduling, DVFS load balancing, and the
end-to-end RAG pipeline facade.
"""

from .build_cache import (
    BuildCache,
    CacheStats,
    build_fingerprint,
    cached_cluster_datastore,
)
from .clustering import (
    ClusteredDatastore,
    IndexShard,
    assign_queries_to_shards,
    cluster_datastore,
    split_datastore_evenly,
)
from .config import HermesConfig
from .dvfs_policy import DVFSComparison, evaluate_dvfs
from .errors import (
    RetrievalError,
    RetrievalUnavailableError,
    ShardCrashedError,
    ShardError,
    ShardSearchError,
    ShardTimeoutError,
    TransientShardError,
)
from .hierarchical import (
    ExhaustiveSplitSearcher,
    HermesSearcher,
    HierarchicalSearcher,
    RetrievalPolicy,
    SearchResult,
    ShardCallStats,
    ShardHealth,
)
from .pipeline import HermesSystem, RAGResponse, RetrievalOutcome
from .router import (
    AllRouter,
    CentroidRouter,
    ClusterRouter,
    LoadAwareRouter,
    RoutingDecision,
    SampledRouter,
)
from .rerank import CrossInteractionReranker, Reranker, SimilarityReranker
from .scheduler import HermesScheduler, routing_to_batch
from .store_io import load_datastore, save_datastore
from .session import SessionTrace, StridedRAGSession, StrideStep

__all__ = [
    "BuildCache",
    "CacheStats",
    "build_fingerprint",
    "cached_cluster_datastore",
    "ClusteredDatastore",
    "IndexShard",
    "assign_queries_to_shards",
    "cluster_datastore",
    "split_datastore_evenly",
    "HermesConfig",
    "DVFSComparison",
    "evaluate_dvfs",
    "ExhaustiveSplitSearcher",
    "HermesSearcher",
    "HierarchicalSearcher",
    "RetrievalPolicy",
    "SearchResult",
    "ShardCallStats",
    "ShardHealth",
    "RetrievalError",
    "RetrievalUnavailableError",
    "ShardCrashedError",
    "ShardError",
    "ShardSearchError",
    "ShardTimeoutError",
    "TransientShardError",
    "HermesSystem",
    "RAGResponse",
    "RetrievalOutcome",
    "AllRouter",
    "CentroidRouter",
    "ClusterRouter",
    "LoadAwareRouter",
    "RoutingDecision",
    "SampledRouter",
    "CrossInteractionReranker",
    "Reranker",
    "SimilarityReranker",
    "HermesScheduler",
    "routing_to_batch",
    "load_datastore",
    "save_datastore",
    "SessionTrace",
    "StridedRAGSession",
    "StrideStep",
]
