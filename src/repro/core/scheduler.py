"""Hermes scheduler: turning routing decisions into per-node work.

The Hermes scheduler (the box in the paper's Fig. 9) receives each batch's
routing decision and dispatches per-node deep-search sub-batches. This module
bridges the algorithm layer (real searches over
:class:`~repro.core.clustering.ClusteredDatastore`) and the system layer
(:class:`~repro.perfmodel.aggregate.MultiNodeModel`): it converts routing
matrices into :class:`~repro.perfmodel.trace.BatchRouting` loads, accumulates
access traces, and evaluates batch latency/energy under a DVFS policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.node import NodeCluster
from ..perfmodel.aggregate import (
    DistributedRetrievalResult,
    DVFSPolicy,
    MultiNodeModel,
)
from ..perfmodel.measurements import index_memory_bytes
from ..perfmodel.trace import BatchRouting, ClusterAccessTrace
from .clustering import ClusteredDatastore
from .config import HermesConfig
from .router import RoutingDecision


def routing_to_batch(decision: RoutingDecision) -> BatchRouting:
    """Convert a router's decision matrix into a trace/load record."""
    return BatchRouting(clusters=decision.clusters)


@dataclass
class HermesScheduler:
    """Dispatches routed batches across the retrieval fleet.

    Built from a clustered datastore and a nominal total datastore size in
    tokens: each node hosts the shard whose token share mirrors the real
    clustering's document share, so size imbalance flows into the latency and
    DVFS models exactly as in the paper's §4.1/§4.2 analysis.
    """

    datastore: ClusteredDatastore
    total_tokens: float
    cluster: NodeCluster | None = None
    config: HermesConfig | None = None

    def __post_init__(self) -> None:
        self.config = self.config or self.datastore.config
        if self.total_tokens <= 0:
            raise ValueError("total_tokens must be positive")
        if self.cluster is None:
            # Default nodes are provisioned to fit their shard with headroom
            # (the capacity check still guards user-supplied fleets).
            largest = max(
                index_memory_bytes(t)
                for t in self.datastore.shard_token_sizes(self.total_tokens)
            )
            self.cluster = NodeCluster.homogeneous(
                self.datastore.n_clusters,
                memory_gb=max(1024.0, 2 * largest / 1e9),
            )
        if len(self.cluster) != self.datastore.n_clusters:
            raise ValueError(
                f"fleet has {len(self.cluster)} nodes but datastore has "
                f"{self.datastore.n_clusters} clusters"
            )
        shard_tokens = self.datastore.shard_token_sizes(self.total_tokens)
        shard_bytes = [index_memory_bytes(t) for t in shard_tokens]
        self.cluster.host_shards(shard_tokens, shard_bytes)
        self.model = MultiNodeModel(self.cluster)
        self.trace = ClusterAccessTrace(n_clusters=self.datastore.n_clusters)

    # -- dispatch ------------------------------------------------------------
    def dispatch(
        self,
        decision: RoutingDecision,
        *,
        dvfs: DVFSPolicy = DVFSPolicy.NONE,
        latency_target_s: float | None = None,
        period_s: float | None = None,
        record: bool = True,
    ) -> DistributedRetrievalResult:
        """Model one batch's retrieval cost from its routing decision.

        Records the batch in the scheduler's access trace (the paper's
        Fig. 13/15 artefact) unless ``record=False`` (e.g. when re-costing
        the same batch under several DVFS policies), and returns the fleet
        latency/energy.
        """
        batch_routing = routing_to_batch(decision)
        if record:
            self.trace.record(batch_routing)
        loads = batch_routing.node_loads(self.datastore.n_clusters)
        return self.model.hermes(
            decision.batch_size,
            loads,
            sample_nprobe=self.config.sample_nprobe,
            deep_nprobe=self.config.deep_nprobe,
            dvfs=dvfs,
            latency_target_s=latency_target_s,
            period_s=period_s,
        )

    def naive_dispatch(self, batch: int) -> DistributedRetrievalResult:
        """Model the naive broadcast-to-all-nodes baseline for comparison."""
        return self.model.naive_split(batch, nprobe=self.config.deep_nprobe)

    def monolithic_dispatch(self, batch: int):
        """Model the single-node monolithic baseline for comparison."""
        return self.model.monolithic(
            self.total_tokens, batch, nprobe=self.config.deep_nprobe
        )

    # -- diagnostics -----------------------------------------------------------
    def access_imbalance(self) -> float:
        """Hottest/coldest cluster access ratio accumulated so far."""
        return self.trace.imbalance()

    def mean_node_loads(self) -> np.ndarray:
        """Average per-batch deep-search load per node."""
        return self.trace.mean_loads()
