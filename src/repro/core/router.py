"""Cluster-routing strategies: which shards should a query deep-search?

Fig. 11 of the paper compares three ways of picking clusters:

- **Hermes (document sampling)**: run a cheap low-nProbe search into every
  cluster, retrieve one real document from each, and rank clusters by that
  document's similarity to the query. Real documents beat centroid
  generalisations, which is the paper's key accuracy argument.
- **Centroid-based**: rank clusters by query-to-centroid similarity only.
- **All (naive)**: search every cluster (the naive-split baseline's only
  option, since random shards have no routable structure).

Routers return, per query, the ranked cluster ids to deep-search; Hermes's
router also reports the sampling work so the performance model can charge
for it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..ann.distances import as_matrix, pairwise_distance, top_k
from ..obs.trace import get_tracer
from .clustering import ClusteredDatastore
from .errors import ShardError


@dataclass(frozen=True)
class RoutingDecision:
    """Routing output for one query batch.

    ``clusters`` is ``(nq, m)``: ranked shard ids per query (best first).
    ``scores`` carries the per-(query, shard) routing distances (smaller is
    better) for all shards, useful for diagnostics and ablations.
    ``failed_clusters`` lists shards whose sampling probe raised a
    :class:`~repro.core.errors.ShardError`: they score ``inf`` (routed
    around) and the searcher reports them as failed.
    """

    clusters: np.ndarray
    scores: np.ndarray
    failed_clusters: frozenset = frozenset()

    @property
    def batch_size(self) -> int:
        return len(self.clusters)

    @property
    def fanout(self) -> int:
        return self.clusters.shape[1]


class ClusterRouter(abc.ABC):
    """Strategy interface for deep-search cluster selection."""

    name: str = "router"

    @abc.abstractmethod
    def route(
        self,
        queries: np.ndarray,
        datastore: ClusteredDatastore,
        m: int,
        *,
        exclude: frozenset = frozenset(),
    ) -> RoutingDecision:
        """Pick the *m* clusters each query should deep-search.

        ``exclude`` lists failed/unreachable clusters (node-failure
        handling): they are never probed nor routed to.
        """

    @staticmethod
    def _check_fanout(m: int, datastore: ClusteredDatastore, exclude: frozenset) -> int:
        alive = datastore.n_clusters - len(exclude)
        if alive <= 0:
            raise ValueError("no clusters left alive to route to")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        return min(m, alive)


class SampledRouter(ClusterRouter):
    """Hermes document-sampling router (§4.2).

    Every cluster is probed with a low nProbe for its single most similar
    document; clusters are ranked by that document's distance to the query.

    Sampling is best-effort: a probe that raises a
    :class:`~repro.core.errors.ShardError` (crash, transient blip, modelled
    fault) leaves the cluster's score at ``inf`` so routing flows to the
    survivors, and the shard is reported via ``failed_clusters``. The cheap
    probes are not retried — the next batch re-probes anyway, which is the
    natural recovery path for transient sampling failures.
    """

    name = "hermes-sampled"

    def __init__(self, *, sample_nprobe: int | None = None, sample_k: int | None = None) -> None:
        self.sample_nprobe = sample_nprobe
        self.sample_k = sample_k

    def route(
        self,
        queries: np.ndarray,
        datastore: ClusteredDatastore,
        m: int,
        *,
        exclude: frozenset = frozenset(),
    ) -> RoutingDecision:
        q = as_matrix(queries)
        config = datastore.config
        nprobe = self.sample_nprobe or config.sample_nprobe
        sample_k = self.sample_k or config.sample_k
        m = self._check_fanout(m, datastore, exclude)
        scores = np.full((len(q), datastore.n_clusters), np.inf, dtype=np.float32)
        failed = set()
        tracer = get_tracer()
        for shard in datastore.shards:
            if shard.shard_id in exclude:
                continue  # a failed node cannot be sampled
            with tracer.span("sample", shard=int(shard.shard_id), nprobe=nprobe):
                try:
                    dists, _ = shard.search(q, sample_k, nprobe=nprobe)
                except ShardError:
                    failed.add(int(shard.shard_id))
                    continue  # score stays inf: routing flows to survivors
                # Best (smallest) sampled distance represents the cluster.
                scores[:, shard.shard_id] = dists[:, 0]
        _, ranked = top_k(scores, m)
        return RoutingDecision(
            clusters=ranked, scores=scores, failed_clusters=frozenset(failed)
        )


class CentroidRouter(ClusterRouter):
    """Centroid-only router (Fig. 11's "Centroid-Based" ablation)."""

    name = "centroid"

    def route(
        self,
        queries: np.ndarray,
        datastore: ClusteredDatastore,
        m: int,
        *,
        exclude: frozenset = frozenset(),
    ) -> RoutingDecision:
        q = as_matrix(queries)
        m = self._check_fanout(m, datastore, exclude)
        scores = pairwise_distance(q, datastore.centroids(), datastore.config.metric)
        scores = scores.astype(np.float32)
        for dead in exclude:
            scores[:, dead] = np.inf
        _, ranked = top_k(scores, m)
        return RoutingDecision(clusters=ranked, scores=scores)


class AllRouter(ClusterRouter):
    """Search-everything router (naive distributed baseline)."""

    name = "all"

    def route(
        self,
        queries: np.ndarray,
        datastore: ClusteredDatastore,
        m: int,
        *,
        exclude: frozenset = frozenset(),
    ) -> RoutingDecision:
        q = as_matrix(queries)
        del m  # the naive baseline always searches every live cluster
        n = datastore.n_clusters
        alive = np.array(
            [c for c in range(n) if c not in exclude], dtype=np.int64
        )
        if not len(alive):
            raise ValueError("no clusters left alive to route to")
        clusters = np.tile(alive, (len(q), 1))
        scores = np.zeros((len(q), n), dtype=np.float32)
        for dead in exclude:
            scores[:, dead] = np.inf
        return RoutingDecision(clusters=clusters, scores=scores)


class LoadAwareRouter(ClusterRouter):
    """Routing extension: break near-ties toward cheaper/colder nodes.

    Hermes's Fig. 13 shows hot clusters absorb >2x the deep-search traffic
    of cold ones, which caps fleet throughput at the hottest node. Often the
    router's choice is *nearly indifferent* — several clusters' sampled
    documents score within a whisker of each other — and any of them would
    satisfy the query. This wrapper exploits that: among clusters whose
    routing score is within ``slack`` of the would-be cut-off, it prefers the
    ones with lower ``node_costs`` (e.g. recent load, queue depth, or a
    slower platform), flattening the access skew at bounded accuracy cost.

    This is an extension beyond the paper (its scheduler routes purely by
    similarity and reclaims the imbalance with DVFS); the test suite
    quantifies the trade-off.
    """

    name = "load-aware"

    def __init__(
        self,
        base: ClusterRouter,
        node_costs: np.ndarray,
        *,
        slack: float = 0.05,
    ) -> None:
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.base = base
        self.node_costs = np.asarray(node_costs, dtype=np.float64)
        self.slack = slack

    def route(
        self,
        queries: np.ndarray,
        datastore: ClusteredDatastore,
        m: int,
        *,
        exclude: frozenset = frozenset(),
    ) -> RoutingDecision:
        if len(self.node_costs) != datastore.n_clusters:
            raise ValueError(
                f"node_costs has {len(self.node_costs)} entries for "
                f"{datastore.n_clusters} clusters"
            )
        base = self.base.route(queries, datastore, m, exclude=exclude)
        m_eff = base.fanout
        scores = base.scores
        nq, n = scores.shape
        clusters = np.empty((nq, m_eff), dtype=np.int64)
        for qi in range(nq):
            row = scores[qi]
            finite = np.isfinite(row)
            order = np.argsort(row)
            cutoff = row[order[m_eff - 1]]
            # Tie window scoped to the local decision: the spread among the
            # top-2m candidates, not the whole fleet — only genuinely
            # near-equivalent clusters may swap in.
            local = order[: min(2 * m_eff, int(finite.sum()))]
            spread = float(row[local[-1]] - row[local[0]]) if len(local) > 1 else 0.0
            threshold = cutoff + self.slack * max(spread, 0.0)
            eligible = np.flatnonzero(finite & (row <= threshold))
            # Keep m: prefer low node cost, tie-break by routing score.
            ranked = sorted(
                eligible, key=lambda c: (self.node_costs[c], row[c])
            )[:m_eff]
            # Preserve relevance order within the final pick.
            ranked = sorted(ranked, key=lambda c: row[c])
            clusters[qi] = np.asarray(ranked, dtype=np.int64)
        return RoutingDecision(clusters=clusters, scores=scores)
