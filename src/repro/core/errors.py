"""Retrieval-fleet error taxonomy.

Hermes's one-index-per-node deployment (§4/§6) puts every retrieval node on
the TTFT critical path, so the searcher has to distinguish *how* a shard
failed to pick the right response:

- :class:`TransientShardError` — a blip (dropped RPC, brief overload); worth
  a bounded retry with backoff.
- :class:`ShardCrashedError` — the node is gone; retrying is wasted work, the
  circuit breaker should open and routing should exclude the shard.
- :class:`ShardTimeoutError` — the per-shard deadline elapsed (straggler or
  silent failure); hedged duplicates are the mitigation, not retries.
- :class:`ShardSearchError` — an *unexpected* exception inside a shard's deep
  search, re-raised with the shard id and routed query count attached so the
  fan-out's failure context is never lost.

:class:`RetrievalUnavailableError` is the terminal case: no live shard is
left to serve the query batch, so no degraded result can be produced.

Two request-scoped (not shard-scoped) failures support the overload story:

- :class:`AdmissionRejectedError` — the serving queue is full; the request
  is refused *at submit time* so the client can back off or retry elsewhere
  instead of queueing behind work that will miss its deadline anyway.
- :class:`DeadlineExceededError` — the request's end-to-end budget ran out
  before a result could be produced (shed at dequeue, or expired mid-search).
  Distinct from :class:`ShardTimeoutError`, which is one shard missing its
  *per-attempt* deadline inside a batch that may still succeed.

The fault *models* that raise these live in :mod:`repro.serving.faults`;
keeping the types here lets the core searcher stay import-free of the
serving/chaos tooling.
"""

from __future__ import annotations


class RetrievalError(RuntimeError):
    """Base class for retrieval-fleet failures."""


class RetrievalUnavailableError(RetrievalError):
    """Every shard is excluded, open-circuit, or failed: nothing can serve."""


class AdmissionRejectedError(RetrievalError):
    """The bounded serving queue is full: fail fast instead of queueing."""

    def __init__(self, queue_depth: int, max_queue: int, message: str | None = None) -> None:
        self.queue_depth = int(queue_depth)
        self.max_queue = int(max_queue)
        super().__init__(
            message
            or f"admission rejected: queue holds {queue_depth} of {max_queue} requests"
        )


class DeadlineExceededError(RetrievalError):
    """The request's end-to-end deadline elapsed before it could be served.

    ``stage`` records where the budget ran out: ``"queue"`` (shed at dequeue
    because the remaining budget cannot cover the estimated service time) or
    ``"search"`` (expired while the search was in flight).
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        *,
        stage: str = "search",
        message: str | None = None,
    ) -> None:
        self.deadline_s = deadline_s
        self.stage = stage
        if message is None:
            suffix = f" ({deadline_s:.3g}s budget)" if deadline_s is not None else ""
            message = f"deadline exceeded in {stage}{suffix}"
        super().__init__(message)


class ShardError(RetrievalError):
    """A failure scoped to one shard; carries the shard id."""

    def __init__(self, shard_id: int, message: str | None = None) -> None:
        self.shard_id = int(shard_id)
        super().__init__(message or f"shard {shard_id} failed")


class ShardCrashedError(ShardError):
    """Crash-stop: the node hosting this shard is permanently down."""

    def __init__(self, shard_id: int, message: str | None = None) -> None:
        super().__init__(shard_id, message or f"shard {shard_id} crashed (crash-stop)")


class TransientShardError(ShardError):
    """A retryable failure: the shard is expected to recover shortly."""

    def __init__(self, shard_id: int, message: str | None = None) -> None:
        super().__init__(shard_id, message or f"shard {shard_id} transient error")


class ShardTimeoutError(ShardError):
    """The per-shard deadline elapsed before the shard answered."""

    def __init__(
        self, shard_id: int, deadline_s: float | None = None, message: str | None = None
    ) -> None:
        self.deadline_s = deadline_s
        if message is None:
            suffix = f" after {deadline_s:.3g}s" if deadline_s is not None else ""
            message = f"shard {shard_id} missed its deadline{suffix}"
        super().__init__(shard_id, message)


class ShardSearchError(ShardError):
    """Context wrapper for unexpected exceptions inside a shard fan-out.

    Raised ``from`` the original exception so the traceback chain shows both
    the root cause and which shard (serving how many routed queries) hit it.
    """

    def __init__(self, shard_id: int, n_queries: int, cause: BaseException) -> None:
        self.n_queries = int(n_queries)
        super().__init__(
            shard_id,
            f"deep search failed on shard {shard_id} "
            f"({n_queries} routed queries): {type(cause).__name__}: {cause}",
        )
