"""Hermes DVFS load-balancing policies (§4.2 "Load Balancing Optimization",
Fig. 21).

Cluster sizes and access frequencies are imbalanced (Fig. 13), so within a
batch some nodes finish their deep search early and idle. Two policies turn
that slack into energy savings:

- **baseline DVFS**: every node slows to just meet the *slowest cluster's*
  latency in the batch — zero latency cost by construction (the paper
  measures 10.1-14.5% savings);
- **enhanced DVFS**: because retrieval is pipelined under inference, retrieval
  finishing earlier than the inference stride buys nothing; every node slows
  to the *inference latency* instead (18.8-22.1% savings, 19.6% at the
  evaluated 3-clusters-searched point).

This module evaluates both policies for a scheduler/batch and reports the
savings breakdown used by Fig. 21.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel.aggregate import DistributedRetrievalResult, DVFSPolicy
from .router import RoutingDecision
from .scheduler import HermesScheduler


@dataclass(frozen=True)
class DVFSComparison:
    """Energy of one batch under the three DVFS settings."""

    none: DistributedRetrievalResult
    baseline: DistributedRetrievalResult
    enhanced: DistributedRetrievalResult

    @property
    def baseline_savings(self) -> float:
        """Fractional energy saved by baseline DVFS vs. no DVFS."""
        return 1.0 - self.baseline.energy_j / self.none.energy_j

    @property
    def enhanced_savings(self) -> float:
        """Fractional energy saved by enhanced DVFS vs. no DVFS."""
        return 1.0 - self.enhanced.energy_j / self.none.energy_j


def evaluate_dvfs(
    scheduler: HermesScheduler,
    decision: RoutingDecision,
    *,
    inference_latency_s: float,
) -> DVFSComparison:
    """Run one batch under no/baseline/enhanced DVFS.

    ``inference_latency_s`` is the pipelined inference window (prefill +
    stride decode) that enhanced DVFS may stretch retrieval into; baseline
    DVFS only exploits intra-batch slack.
    """
    if inference_latency_s <= 0:
        raise ValueError("inference_latency_s must be positive")
    # In steady-state pipelined serving the batch period is the slower of
    # deep search at max frequency and the inference window; all policies pay
    # idle power over that same period so the comparison isolates the
    # dynamic-energy savings DVFS actually buys.
    at_max = scheduler.dispatch(decision, dvfs=DVFSPolicy.NONE, record=False)
    period = max(inference_latency_s, at_max.deep.latency_s)
    none = scheduler.dispatch(decision, dvfs=DVFSPolicy.NONE, period_s=period)
    baseline = scheduler.dispatch(
        decision, dvfs=DVFSPolicy.BASELINE, period_s=period, record=False
    )
    enhanced = scheduler.dispatch(
        decision,
        dvfs=DVFSPolicy.ENHANCED,
        latency_target_s=inference_latency_s,
        period_s=period,
        record=False,
    )
    return DVFSComparison(none=none, baseline=baseline, enhanced=enhanced)
