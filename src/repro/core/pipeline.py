"""End-to-end Hermes RAG pipeline (the paper's Fig. 9 online path).

:class:`HermesSystem` is the facade a downstream user builds once and then
serves queries with. It composes:

- the **encoder** (``SyntheticEncoder`` stand-in for BGE-Large) for raw text
  queries — pre-encoded embeddings are accepted directly, mirroring the
  paper's use of pre-encoded TriviaQA queries;
- the **clustered datastore + hierarchical searcher** for real retrieval with
  real document ids;
- the **chunk store + augmentation** mapping ids back to text and building
  the enhanced prompt;
- the **scheduler + multi-node performance model** for the latency/energy of
  that retrieval at a configured deployment scale; and
- the **inference model + strided-generation timeline** for TTFT/E2E/energy
  of the whole RAG request, under any combination of PipeRAG pipelining and
  RAGCache prefix caching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..datastore.chunkstore import AugmentedQuery, ChunkStore, augment_query
from ..datastore.encoder import SyntheticEncoder
from ..hardware.node import NodeCluster
from ..llm.generation import (
    GenerationConfig,
    GenerationResult,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
)
from ..llm.inference import InferenceModel
from ..perfmodel.aggregate import DVFSPolicy
from .clustering import ClusteredDatastore, cluster_datastore
from .config import HermesConfig
from .hierarchical import HermesSearcher, SearchResult
from .scheduler import HermesScheduler


@dataclass(frozen=True)
class RetrievalOutcome:
    """Real retrieval results plus their modelled system cost."""

    search: SearchResult
    latency_s: float
    energy_j: float

    def cost(self) -> RetrievalCost:
        return RetrievalCost(latency_s=self.latency_s, energy_j=self.energy_j)


@dataclass(frozen=True)
class RAGResponse:
    """One served batch: retrieval results and generation timeline."""

    retrieval: RetrievalOutcome
    generation: GenerationResult
    augmented: list[AugmentedQuery] | None = None


class HermesSystem:
    """A deployed Hermes RAG service.

    Parameters
    ----------
    embeddings:
        The corpus embedding matrix that the clustered indices are built on.
    total_tokens:
        Nominal datastore size in tokens for the deployment being modelled
        (the real index is a scale model; latency/energy follow this size).
    config:
        Hermes tunables (Table 2 defaults).
    generation:
        Serving configuration (batch/sequence/stride; pipelining/caching).
    inference:
        Inference cost model (defaults to Gemma2-9B on one A6000 Ada).
    chunk_store:
        Optional id→text store enabling prompt augmentation.
    encoder:
        Optional text encoder for raw-text queries.
    fleet:
        Optional custom retrieval fleet (defaults to one Xeon Gold node per
        cluster).
    dvfs:
        Frequency policy for the deep-search phase (Fig. 21's knob).
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        total_tokens: float,
        config: HermesConfig | None = None,
        generation: GenerationConfig | None = None,
        inference: InferenceModel | None = None,
        chunk_store: ChunkStore | None = None,
        encoder: SyntheticEncoder | None = None,
        fleet: NodeCluster | None = None,
        dvfs: DVFSPolicy = DVFSPolicy.NONE,
        datastore: ClusteredDatastore | None = None,
    ) -> None:
        self.config = config or HermesConfig()
        self.generation_config = generation or GenerationConfig()
        self.inference = inference or InferenceModel()
        self.chunk_store = chunk_store
        self.encoder = encoder
        self.dvfs = dvfs
        self.datastore = (
            datastore
            if datastore is not None
            else cluster_datastore(embeddings, self.config)
        )
        self.searcher = HermesSearcher(self.datastore, config=self.config)
        self.scheduler = HermesScheduler(
            datastore=self.datastore,
            total_tokens=total_tokens,
            cluster=fleet,
            config=self.config,
        )

    # -- encoding ------------------------------------------------------------
    def encode(self, queries: "list[str] | np.ndarray") -> np.ndarray:
        """Accept raw text (requires an encoder) or pre-encoded embeddings."""
        if isinstance(queries, np.ndarray):
            return queries
        if self.encoder is None:
            raise ValueError("raw-text queries require an encoder")
        return self.encoder.encode_batch(list(queries))

    # -- retrieval ---------------------------------------------------------------
    def retrieve(
        self, queries: "list[str] | np.ndarray", *, k: int | None = None
    ) -> RetrievalOutcome:
        """Hierarchical retrieval: real results, modelled fleet cost."""
        embeddings = self.encode(queries)
        search = self.searcher.search(embeddings, k=k)
        target = self._inference_window()
        modelled = self.scheduler.dispatch(
            search.routing,
            dvfs=self.dvfs,
            latency_target_s=target if self.dvfs is DVFSPolicy.ENHANCED else None,
        )
        return RetrievalOutcome(
            search=search, latency_s=modelled.latency_s, energy_j=modelled.energy_j
        )

    def _inference_window(self) -> float:
        """The pipelined inference latency enhanced DVFS may stretch into."""
        cfg = self.generation_config
        prefill = self.inference.prefill(cfg.batch, cfg.input_tokens).latency_s
        decode = self.inference.decode(cfg.batch, cfg.stride).latency_s
        return prefill + decode

    # -- full service --------------------------------------------------------------
    def serve(
        self, queries: "list[str] | np.ndarray", *, k: int | None = None
    ) -> RAGResponse:
        """Retrieve, augment (when a chunk store is attached), and simulate
        the strided generation for one batch."""
        retrieval = self.retrieve(queries, k=k)
        batch = retrieval.search.batch_size
        gen_cfg = replace(self.generation_config, batch=batch)
        generation = simulate_generation(
            constant_retrieval(retrieval.cost()), self.inference, gen_cfg
        )
        augmented = None
        if self.chunk_store is not None and not isinstance(queries, np.ndarray):
            augmented = [
                augment_query(
                    text,
                    self.chunk_store,
                    retrieval.search.ids[i],
                    top_n=self.config.rerank_top,
                )
                for i, text in enumerate(queries)
            ]
        return RAGResponse(
            retrieval=retrieval, generation=generation, augmented=augmented
        )

    # -- persistence -----------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the deployment (indices + serving config) to a directory.

        The expensive artefact — the clustered indices — round-trips exactly;
        the inference/encoder models are reconstructed from their specs.
        """
        import dataclasses
        import json
        from pathlib import Path

        from .store_io import save_datastore

        directory = Path(directory)
        save_datastore(self.datastore, directory)
        meta = {
            "total_tokens": self.scheduler.total_tokens,
            "dvfs": self.dvfs.value,
            "generation": dataclasses.asdict(self.generation_config),
        }
        (directory / "system.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory, **overrides) -> "HermesSystem":
        """Rebuild a system saved by :meth:`save` (overrides win)."""
        import json
        from pathlib import Path

        from .store_io import load_datastore

        directory = Path(directory)
        datastore = load_datastore(directory)
        meta = json.loads((directory / "system.json").read_text())
        kwargs = {
            "total_tokens": meta["total_tokens"],
            "generation": GenerationConfig(**meta["generation"]),
            "dvfs": DVFSPolicy(meta["dvfs"]),
            "config": datastore.config,
            "datastore": datastore,
        }
        kwargs.update(overrides)
        # embeddings are unused when a prebuilt datastore is supplied
        return cls(np.empty((0, 1), dtype=np.float32), **kwargs)

    # -- introspection ----------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Resident size of the real clustered indices."""
        return self.datastore.memory_bytes()

    def describe(self) -> dict:
        """Summary of the deployed configuration (for logs and examples)."""
        return {
            "clusters": self.datastore.n_clusters,
            "documents": self.datastore.ntotal,
            "imbalance": self.datastore.imbalance,
            "total_tokens_modelled": self.scheduler.total_tokens,
            "clusters_to_search": self.config.clusters_to_search,
            "sample_nprobe": self.config.sample_nprobe,
            "deep_nprobe": self.config.deep_nprobe,
            "inference_model": self.inference.model.name,
            "gpu": f"{self.inference.n_gpus}x {self.inference.gpu.name}",
            "dvfs": self.dvfs.value,
        }
