"""Datastore disaggregation: splitting the corpus into per-node indices.

This implements §4.1 of the paper ("Distributed Retrieval Indices"):

1. K-means the corpus embeddings into ``n_clusters`` semantic clusters —
   seeding matters, so several seeds are tried on a 1-2% subset and the seed
   with the lowest cluster-size imbalance (largest/smallest ratio) wins;
2. build a separate IVF index per cluster, each placed on its own node;
3. keep the global-id mapping so per-cluster search results merge back into
   corpus document ids.

The same machinery also builds the *naive equal split* (random sharding, the
"Split" line of Fig. 11 and the distributed-baseline of Fig. 18) so the two
strategies differ only in how documents are assigned to shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ann.distances import as_matrix, pairwise_distance
from ..ann.ivf import IVFIndex
from ..ann.kmeans import KMeansResult, assign_to_centroids, kmeans_seed_sweep
from ..ann.parallel import run_tasks
from ..ann.quantization import make_quantizer
from ..obs.trace import get_tracer
from .config import HermesConfig


@dataclass
class IndexShard:
    """One cluster's search index plus its global-id mapping."""

    shard_id: int
    index: IVFIndex
    global_ids: np.ndarray
    centroid: np.ndarray

    def __post_init__(self) -> None:
        self.global_ids = np.asarray(self.global_ids, dtype=np.int64)
        if len(self.global_ids) != self.index.ntotal:
            raise ValueError(
                f"shard {self.shard_id}: {len(self.global_ids)} ids for "
                f"{self.index.ntotal} indexed vectors"
            )

    def __len__(self) -> int:
        return self.index.ntotal

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k within this shard, with ids translated to global ids."""
        dists, local = self.index.search(queries, k, nprobe=nprobe)
        global_out = np.full_like(local, -1)
        valid = local >= 0
        global_out[valid] = self.global_ids[local[valid]]
        return dists, global_out

    def memory_bytes(self) -> int:
        return self.index.memory_bytes()


def _build_shard(
    shard_id: int,
    embeddings: np.ndarray,
    member_ids: np.ndarray,
    config: HermesConfig,
) -> IndexShard:
    members = embeddings[member_ids]
    dim = embeddings.shape[1]
    nlist = config.nlist
    if nlist is not None:
        # Shards smaller than the requested cell count fall back to sqrt(N).
        nlist = min(nlist, max(1, len(member_ids) // 2)) or None
    index = IVFIndex(
        dim,
        config.metric,
        nlist=nlist,
        nprobe=config.deep_nprobe,
        quantizer=make_quantizer(
            config.quantization,
            dim,
            train_sample=config.quantizer_train_sample,
            train_algorithm=config.kmeans_algorithm,
        ),
        train_seed=shard_id,
        kmeans_algorithm=config.kmeans_algorithm,
        kmeans_batch_size=config.kmeans_batch_size,
    )
    index.train(members)
    index.add(members)
    return IndexShard(
        shard_id=shard_id,
        index=index,
        global_ids=member_ids,
        centroid=members.mean(axis=0).astype(np.float32),
    )


@dataclass
class ClusteredDatastore:
    """The distributed datastore: one IVF shard per K-means cluster."""

    shards: list[IndexShard]
    config: HermesConfig
    clustering: KMeansResult | None = None
    #: per-document shard assignment, length = corpus size
    assignments: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        if len(self.shards) != self.config.n_clusters:
            raise ValueError(
                f"expected {self.config.n_clusters} shards, got {len(self.shards)}"
            )

    @property
    def n_clusters(self) -> int:
        return len(self.shards)

    @property
    def ntotal(self) -> int:
        return sum(len(s) for s in self.shards)

    def sizes(self) -> np.ndarray:
        """Documents per shard."""
        return np.array([len(s) for s in self.shards], dtype=np.int64)

    @property
    def imbalance(self) -> float:
        """Largest/smallest shard-size ratio (§4.1's imbalance proxy)."""
        sizes = self.sizes()
        smallest = int(sizes.min())
        if smallest == 0:
            return float("inf")
        return float(sizes.max()) / float(smallest)

    def centroids(self) -> np.ndarray:
        """Per-shard mean embeddings (used by centroid-only routing)."""
        return np.stack([s.centroid for s in self.shards])

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.shards)

    def add_documents(self, embeddings: np.ndarray) -> np.ndarray:
        """Ingest new documents online (the RAG freshness story, §1).

        The whole point of RAG is a *mutable* datastore that absorbs new
        information without retraining; Hermes must therefore accept inserts
        after the offline split. Each new document goes to the shard with the
        nearest centroid (the same rule queries route by), gets appended to
        that shard's IVF index, and nudges the shard centroid as a running
        mean. Returns the assigned global ids.

        Sustained skewed ingest grows the imbalance the seed sweep minimised;
        callers can watch :attr:`imbalance` and re-split offline when it
        drifts (the paper's offline/online split applies — K-means re-runs
        are an offline maintenance action).
        """
        vecs = as_matrix(embeddings)
        if vecs.shape[1] != self.shards[0].index.dim:
            raise ValueError(
                f"dim {vecs.shape[1]} != datastore dim {self.shards[0].index.dim}"
            )
        targets = assign_to_centroids(vecs, self.centroids(), "l2")
        start = self.ntotal
        new_ids = np.arange(start, start + len(vecs), dtype=np.int64)
        for shard_id in np.unique(targets):
            members = np.flatnonzero(targets == shard_id)
            shard = self.shards[shard_id]
            old_size = len(shard)
            shard.index.add(vecs[members])
            shard.global_ids = np.concatenate([shard.global_ids, new_ids[members]])
            # Running-mean centroid update.
            batch_mean = vecs[members].mean(axis=0)
            total = old_size + len(members)
            shard.centroid = (
                (shard.centroid * old_size + batch_mean * len(members)) / total
            ).astype(np.float32)
        self.assignments = np.concatenate(
            [self.assignments, targets.astype(np.int64)]
        )
        return new_ids

    def reconstruct_vectors(self) -> np.ndarray:
        """Decode every stored vector back into global-id order.

        Returns an ``(ntotal, dim)`` matrix of the *quantized* vectors (lossy
        for non-flat codecs) — the data an exhaustive ground-truth search
        over the deployed datastore actually sees.
        """
        dim = self.shards[0].index.dim
        out = np.empty((self.ntotal, dim), dtype=np.float32)
        for shard in self.shards:
            vecs, local = shard.index.reconstruct()
            out[shard.global_ids[local]] = vecs
        return out

    def shard_token_sizes(self, total_tokens: float) -> list[float]:
        """Map a nominal datastore token size onto shards by document share.

        Used to drive the multi-node performance model with the measured
        shard imbalance of a real clustering.
        """
        sizes = self.sizes().astype(np.float64)
        return list(total_tokens * sizes / sizes.sum())


def cluster_datastore(
    embeddings: np.ndarray, config: HermesConfig | None = None
) -> ClusteredDatastore:
    """Hermes's semantic disaggregation: K-means split + per-cluster IVF.

    Runs the paper's seed sweep on a small subset to pick the K-means seed
    with the least cluster-size imbalance, then builds one IVF index per
    resulting cluster. Shard builds are independent seeded subproblems, so
    they fan out on a thread pool (``config.build_workers``) with bit-exact
    results at any worker count.
    """
    config = config or HermesConfig()
    emb = as_matrix(embeddings)
    tracer = get_tracer()
    with tracer.span(
        "build_datastore", strategy="semantic", docs=len(emb), clusters=config.n_clusters
    ) as build_span:
        with tracer.span(
            "kmeans_seed_sweep",
            seeds=len(tuple(config.kmeans_seeds)),
            subset_fraction=config.kmeans_subset_fraction,
        ):
            result = kmeans_seed_sweep(
                emb,
                config.n_clusters,
                seeds=config.kmeans_seeds,
                subset_fraction=config.kmeans_subset_fraction,
                algorithm=config.kmeans_algorithm,
                batch_size=config.kmeans_batch_size,
                workers=config.build_workers,
            )
        members_per_cluster = []
        for cid in range(config.n_clusters):
            member_ids = np.flatnonzero(result.assignments == cid).astype(np.int64)
            if not len(member_ids):
                raise RuntimeError(
                    f"cluster {cid} is empty after K-means; use fewer clusters"
                )
            members_per_cluster.append(member_ids)
        shards = _build_shards_traced(emb, members_per_cluster, config, build_span)
    return ClusteredDatastore(
        shards=shards, config=config, clustering=result, assignments=result.assignments
    )


def _build_shards_traced(
    emb: np.ndarray,
    members_per_cluster: list,
    config: HermesConfig,
    parent,
) -> list:
    """Fan the per-shard builds out on a pool, one span per shard.

    Shard builds run on pool threads, so their spans take an explicit parent
    (thread-local nesting does not cross the pool boundary) and a distinct
    ``worker`` label — parallel builds legitimately overlap in time.
    """
    tracer = get_tracer()
    with tracer.span(
        "build_shards", parent=parent, shards=len(members_per_cluster)
    ) as fan_span:

        def build_one(cid: int, ids: np.ndarray):
            with tracer.span(
                "build_shard",
                parent=fan_span,
                worker=f"builder{cid}",
                shard=cid,
                docs=len(ids),
            ):
                return _build_shard(cid, emb, ids, config)

        return run_tasks(
            [
                lambda cid=cid, ids=ids: build_one(cid, ids)
                for cid, ids in enumerate(members_per_cluster)
            ],
            workers=config.build_workers,
        )


def split_datastore_evenly(
    embeddings: np.ndarray, config: HermesConfig | None = None, *, seed: int = 0
) -> ClusteredDatastore:
    """Naive random equal split (the paper's "Split" baseline, Fig. 11).

    Documents are shuffled and dealt into ``n_clusters`` equal shards, so no
    shard has topical coherence — every query must search all shards to match
    monolithic accuracy.
    """
    config = config or HermesConfig()
    emb = as_matrix(embeddings)
    n = len(emb)
    if n < config.n_clusters:
        raise ValueError(f"need at least {config.n_clusters} documents, got {n}")
    order = np.random.default_rng(seed).permutation(n)
    assignments = np.empty(n, dtype=np.int64)
    members_per_cluster = []
    for cid, member_ids in enumerate(np.array_split(order, config.n_clusters)):
        member_ids = np.sort(member_ids).astype(np.int64)
        assignments[member_ids] = cid
        members_per_cluster.append(member_ids)
    with get_tracer().span(
        "build_datastore", strategy="split", docs=n, clusters=config.n_clusters
    ) as build_span:
        shards = _build_shards_traced(emb, members_per_cluster, config, build_span)
    return ClusteredDatastore(
        shards=shards, config=config, clustering=None, assignments=assignments
    )


def assign_queries_to_shards(
    datastore: ClusteredDatastore, queries: np.ndarray
) -> np.ndarray:
    """Nearest-centroid shard per query (diagnostics / centroid routing)."""
    dists = pairwise_distance(queries, datastore.centroids(), datastore.config.metric)
    return dists.argmin(axis=1)
