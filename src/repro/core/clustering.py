"""Datastore disaggregation: splitting the corpus into per-node indices.

This implements §4.1 of the paper ("Distributed Retrieval Indices"):

1. K-means the corpus embeddings into ``n_clusters`` semantic clusters —
   seeding matters, so several seeds are tried on a 1-2% subset and the seed
   with the lowest cluster-size imbalance (largest/smallest ratio) wins;
2. build a separate IVF index per cluster, each placed on its own node;
3. keep the global-id mapping so per-cluster search results merge back into
   corpus document ids.

The same machinery also builds the *naive equal split* (random sharding, the
"Split" line of Fig. 11 and the distributed-baseline of Fig. 18) so the two
strategies differ only in how documents are assigned to shards.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field

import numpy as np

from ..ann.delta import DeltaIndex
from ..ann.distances import as_matrix, pairwise_distance, top_k
from ..ann.ivf import IVFIndex
from ..ann.kmeans import KMeansResult, assign_to_centroids, kmeans_seed_sweep
from ..ann.parallel import run_tasks
from ..ann.quantization import make_quantizer
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .config import HermesConfig


@dataclass
class IndexShard:
    """One cluster's search index plus its global-id mapping.

    A shard is *live*: inserts after the offline build land in an
    append-only :class:`~repro.ann.delta.DeltaIndex` memtable searched
    alongside the sealed IVF index, deletes become tombstones filtering both
    sides, and :meth:`compact` folds everything back into a fresh sealed
    index under ``generation``. Local ids are allocated monotonically
    (sealed rows first, then delta rows) and renumber only at compaction,
    when ``global_ids`` is rebuilt to match — so the local→global
    translation is always positional.
    """

    shard_id: int
    index: IVFIndex
    global_ids: np.ndarray
    centroid: np.ndarray
    #: bumped by every compaction — the signal that sealed storage (and
    #: therefore any exported process-pool view of it) has been replaced.
    generation: int = 0
    delta: DeltaIndex | None = None
    #: local ids (spanning sealed + delta rows) deleted since the last
    #: compaction; filtered out of every search, dropped at compaction.
    tombstones: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self.global_ids = np.asarray(self.global_ids, dtype=np.int64)
        delta_rows = self.delta.ntotal if self.delta is not None else 0
        if len(self.global_ids) != self.index.ntotal + delta_rows:
            raise ValueError(
                f"shard {self.shard_id}: {len(self.global_ids)} ids for "
                f"{self.index.ntotal + delta_rows} indexed vectors"
            )
        # ``_lock`` guards attribute snapshots/swaps and is held only for
        # O(state-size) copies, never across a scan or rebuild — searches
        # take it briefly and are otherwise lock-free. ``_mutate_lock``
        # serializes the mutators (insert/delete/compact) against each
        # other so nothing can land inside compaction's rebuild window and
        # be dropped by the swap; searches never touch it, so serving keeps
        # running through a compaction. Order: ``_mutate_lock`` outermost.
        self._lock = threading.Lock()
        self._mutate_lock = threading.Lock()

    def quiesce(self):
        """Context manager blocking mutations (insert/delete/compact).

        Searches proceed normally while it is held. Persistence wraps each
        shard's writes in this so the saved index/ids/delta/tombstones are
        one consistent cut rather than a torn mid-mutation read.
        """
        return self._mutate_lock

    def __len__(self) -> int:
        """Live documents: sealed + delta rows minus tombstones."""
        delta_rows = self.delta.ntotal if self.delta is not None else 0
        return self.index.ntotal + delta_rows - len(self.tombstones)

    @property
    def has_mutations(self) -> bool:
        """True when search must consult the delta or tombstone state."""
        return bool(self.tombstones) or (
            self.delta is not None and self.delta.ntotal > 0
        )

    # -- mutation ------------------------------------------------------------
    def insert(self, vectors: np.ndarray, global_ids: np.ndarray) -> None:
        """Append new rows to the delta memtable (local ids stay monotone)."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if len(vectors) != len(global_ids):
            raise ValueError(f"{len(vectors)} vectors for {len(global_ids)} ids")
        with self._mutate_lock, self._lock:
            if self.delta is None:
                self.delta = DeltaIndex(self.index)
            self.delta.add(vectors)
            self.global_ids = np.concatenate([self.global_ids, global_ids])

    def delete(self, global_ids: np.ndarray) -> int:
        """Tombstone rows by global id; returns the number deleted.

        Raises ``KeyError`` when an id is unknown to this shard or already
        deleted — silent double-deletes would corrupt the live count.
        """
        targets = np.unique(np.asarray(global_ids, dtype=np.int64))
        with self._mutate_lock, self._lock:
            local = np.flatnonzero(np.isin(self.global_ids, targets))
            if len(local) != len(targets):
                known = set(self.global_ids[local].tolist())
                missing = [int(g) for g in targets if int(g) not in known]
                raise KeyError(
                    f"shard {self.shard_id}: unknown global ids {missing[:5]}"
                )
            stale = [int(p) for p in local if int(p) in self.tombstones]
            if stale:
                raise KeyError(
                    f"shard {self.shard_id}: ids already deleted "
                    f"{[int(self.global_ids[p]) for p in stale[:5]]}"
                )
            self.tombstones.update(int(p) for p in local)
        return len(targets)

    def compact(self) -> bool:
        """Fold delta rows and drop tombstones into a fresh sealed index.

        Survivor rows keep their *original codes* (no re-encode) and their
        insert-time cell assignments, ordered sealed-survivors-then-delta —
        exactly the rows an offline rebuild over the live set would install.
        The new index is warmed (CSR + ADC norms + radius-sorted pruning
        state) before the atomic swap, so no search ever observes a cold or
        half-built sealed index. The shard's mutation lock is held for the
        whole rebuild, so a concurrent insert/delete blocks until the swap
        instead of landing in the rebuild window and being dropped by it;
        searches keep serving the old sealed state throughout. Returns True
        when anything changed.
        """
        with self._mutate_lock:
            return self._compact_locked()

    def _compact_locked(self) -> bool:
        with self._lock:
            if not self.has_mutations:
                return False
            sealed = self.index
            delta = self.delta
            tomb = np.array(sorted(self.tombstones), dtype=np.int64)
            gids = self.global_ids
        sealed_n = sealed.ntotal
        delta_n = delta.ntotal if delta is not None else 0
        with get_tracer().span(
            "compact",
            shard=int(self.shard_id),
            sealed=sealed_n,
            delta=delta_n,
            tombstones=len(tomb),
        ):
            sealed.compact()
            # Undo the CSR ordering: row local id -> (code, cell).
            if sealed_n:
                codes_by_local = np.empty_like(sealed._codes)
                codes_by_local[sealed._ids] = sealed._codes
                cells_by_local = np.empty(sealed_n, dtype=np.int64)
                cells_by_local[sealed._ids] = sealed._code_cells
            survivors = np.setdiff1d(
                np.arange(sealed_n + delta_n, dtype=np.int64), tomb,
                assume_unique=True,
            )
            parts_codes = []
            parts_cells = []
            sealed_live = survivors[survivors < sealed_n]
            delta_live = survivors[survivors >= sealed_n] - sealed_n
            if len(sealed_live):
                parts_codes.append(codes_by_local[sealed_live])
                parts_cells.append(cells_by_local[sealed_live])
            if len(delta_live):
                parts_codes.append(delta.codes[delta_live])
                parts_cells.append(delta.cells[delta_live])
            fresh = sealed.fresh_sealed_like()
            if parts_codes:
                fresh.install_rows(
                    np.ascontiguousarray(np.concatenate(parts_codes, axis=0)),
                    np.concatenate(parts_cells),
                )
            fresh.warm_scan_state()
            new_gids = gids[survivors]
            with self._lock:
                self.index = fresh
                self.global_ids = new_gids
                self.delta = None
                self.tombstones = set()
                self.generation += 1
        get_registry().counter(
            "datastore_compactions_total", "shard compaction passes"
        ).inc(shard=str(int(self.shard_id)))
        return True

    # -- search --------------------------------------------------------------
    def _tombstone_globals(self) -> np.ndarray:
        tomb = np.array(sorted(self.tombstones), dtype=np.int64)
        return self.global_ids[tomb] if len(tomb) else tomb

    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        sealed=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k within this shard, with ids translated to global ids.

        ``sealed`` optionally overrides the sealed-index scan with a callable
        ``(queries, k, nprobe) -> (distances, global_ids)`` — the hook the
        hierarchical searcher uses to route the sealed half through the
        process pool or early-termination kernels while the delta/tombstone
        merge below stays identical across worker modes.

        Merge contract: sealed candidates occupy the left columns and delta
        candidates the right, so the stable :func:`top_k` resolves exact
        distance ties sealed-first — matching the insertion order a flat
        rebuild over the live set would produce. Each side over-fetches by
        its own tombstone count so dropping tombstoned rows can never
        surface fewer than ``k`` live candidates.

        Concurrency: the index/ids/delta/tombstone state is snapshotted in
        one locked read — the delta as a frozen :meth:`DeltaIndex.snapshot`
        copy — and the whole search runs against that point-in-time cut.
        Concurrent inserts, deletes, and compaction swaps can therefore
        never mix generations mid-search or grow the delta under the scan.
        """
        with self._lock:
            index = self.index
            gids = self.global_ids
            tomb_local = sorted(self.tombstones)
            delta = (
                self.delta.snapshot()
                if self.delta is not None and self.delta.ntotal
                else None
            )
        sealed_n = index.ntotal
        if sealed is None:

            def sealed(q, kq, probe):
                dists, local = index.search(q, kq, nprobe=probe)
                out = np.full_like(local, -1)
                valid = local >= 0
                out[valid] = gids[local[valid]]
                return dists, out

        if not tomb_local and delta is None:
            return sealed(queries, k, nprobe)
        tomb_global = (
            gids[np.array(tomb_local, dtype=np.int64)]
            if tomb_local
            else np.empty(0, dtype=np.int64)
        )
        t_sealed = sum(1 for t in tomb_local if t < sealed_n)
        t_delta = len(tomb_local) - t_sealed
        d_s, g_s = sealed(queries, k + t_sealed, nprobe)
        if t_sealed:
            dead = np.isin(g_s, tomb_global)
            d_s = np.where(dead, np.inf, d_s)
            g_s = np.where(dead, -1, g_s)
        if delta is not None:
            d_d, pos = delta.search(queries, k + t_delta)
            g_d = np.full_like(pos, -1)
            valid = pos >= 0
            g_d[valid] = gids[sealed_n + pos[valid]]
            if t_delta:
                dead = np.isin(g_d, tomb_global)
                d_d = np.where(dead, np.inf, d_d)
                g_d = np.where(dead, -1, g_d)
            cand_d = np.concatenate([d_s, d_d], axis=1)
            cand_g = np.concatenate([g_s, g_d], axis=1)
        else:
            cand_d, cand_g = d_s, g_s
        out_d, cols = top_k(cand_d, k)
        rows = np.arange(len(out_d))[:, np.newaxis]
        out_g = cand_g[rows, np.clip(cols, 0, cand_d.shape[1] - 1)]
        invalid = ~np.isfinite(out_d)
        if invalid.any():
            out_g = np.where(invalid, -1, out_g)
            out_d = np.where(invalid, np.inf, out_d)
        return out_d.astype(np.float32, copy=False), out_g

    def memory_bytes(self) -> int:
        total = self.index.memory_bytes()
        if self.delta is not None:
            total += self.delta.memory_bytes()
        return total


def _build_shard(
    shard_id: int,
    embeddings: np.ndarray,
    member_ids: np.ndarray,
    config: HermesConfig,
) -> IndexShard:
    members = embeddings[member_ids]
    dim = embeddings.shape[1]
    nlist = config.nlist
    if nlist is not None:
        # Shards smaller than the requested cell count fall back to sqrt(N).
        nlist = min(nlist, max(1, len(member_ids) // 2)) or None
    index = IVFIndex(
        dim,
        config.metric,
        nlist=nlist,
        nprobe=config.deep_nprobe,
        quantizer=make_quantizer(
            config.quantization,
            dim,
            train_sample=config.quantizer_train_sample,
            train_algorithm=config.kmeans_algorithm,
        ),
        train_seed=shard_id,
        kmeans_algorithm=config.kmeans_algorithm,
        kmeans_batch_size=config.kmeans_batch_size,
    )
    index.train(members)
    index.add(members)
    return IndexShard(
        shard_id=shard_id,
        index=index,
        global_ids=member_ids,
        centroid=members.mean(axis=0).astype(np.float32),
    )


@dataclass
class ClusteredDatastore:
    """The distributed datastore: one IVF shard per K-means cluster."""

    shards: list[IndexShard]
    config: HermesConfig
    clustering: KMeansResult | None = None
    #: per-document shard assignment, length = total ids ever allocated
    #: (tombstoned documents keep their row — global ids are never reused)
    assignments: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: datastore-wide mutation counter: bumped by every insert and delete
    #: batch — the events that can change search results. The serving layer
    #: folds this into cache validity (see ``ServingFrontend``), so any
    #: result-changing mutation invalidates stale entries. Compaction is
    #: result-preserving by the mutation-equivalence contract and does NOT
    #: bump it (cached answers stay valid); the per-shard
    #: ``IndexShard.generation`` is what moves on compaction — the signal
    #: that sealed storage (and any exported process-pool view of it) was
    #: replaced.
    mutations: int = 0

    def __post_init__(self) -> None:
        if len(self.shards) != self.config.n_clusters:
            raise ValueError(
                f"expected {self.config.n_clusters} shards, got {len(self.shards)}"
            )

    @property
    def n_clusters(self) -> int:
        return len(self.shards)

    @property
    def ntotal(self) -> int:
        return sum(len(s) for s in self.shards)

    def sizes(self) -> np.ndarray:
        """Documents per shard."""
        return np.array([len(s) for s in self.shards], dtype=np.int64)

    @property
    def imbalance(self) -> float:
        """Largest/smallest shard-size ratio (§4.1's imbalance proxy)."""
        sizes = self.sizes()
        smallest = int(sizes.min())
        if smallest == 0:
            return float("inf")
        return float(sizes.max()) / float(smallest)

    def centroids(self) -> np.ndarray:
        """Per-shard mean embeddings (used by centroid-only routing)."""
        return np.stack([s.centroid for s in self.shards])

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.shards)

    def add_documents(self, embeddings: np.ndarray) -> np.ndarray:
        """Ingest new documents online (the RAG freshness story, §1).

        The whole point of RAG is a *mutable* datastore that absorbs new
        information without retraining; Hermes must therefore accept inserts
        after the offline split. Each new document goes to the shard with the
        nearest centroid (the same rule queries route by), gets appended to
        that shard's IVF index, and nudges the shard centroid as a running
        mean. Returns the assigned global ids.

        Sustained skewed ingest grows the imbalance the seed sweep minimised;
        callers can watch :attr:`imbalance` and re-split offline when it
        drifts (the paper's offline/online split applies — K-means re-runs
        are an offline maintenance action).
        """
        vecs = as_matrix(embeddings)
        if vecs.shape[1] != self.shards[0].index.dim:
            raise ValueError(
                f"dim {vecs.shape[1]} != datastore dim {self.shards[0].index.dim}"
            )
        targets = assign_to_centroids(vecs, self.centroids(), "l2")
        # Ids are allocated from the full id space, not the live count —
        # after deletes the two differ and reusing a tombstoned id would
        # resurrect it.
        start = len(self.assignments)
        new_ids = np.arange(start, start + len(vecs), dtype=np.int64)
        for shard_id in np.unique(targets):
            members = np.flatnonzero(targets == shard_id)
            shard = self.shards[shard_id]
            old_size = len(shard)
            shard.insert(vecs[members], new_ids[members])
            # Running-mean centroid update.
            batch_mean = vecs[members].mean(axis=0)
            total = old_size + len(members)
            shard.centroid = (
                (shard.centroid * old_size + batch_mean * len(members)) / total
            ).astype(np.float32)
        self.assignments = np.concatenate(
            [self.assignments, targets.astype(np.int64)]
        )
        self._record_mutation("datastore_inserts_total", len(vecs))
        return new_ids

    #: legacy alias kept for symmetry with :meth:`delete_documents`.
    insert_documents = add_documents

    def delete_documents(self, global_ids) -> int:
        """Tombstone documents by global id; returns the number deleted.

        Deleted rows vanish from every subsequent search (sealed and delta
        alike) immediately; their storage is reclaimed by :meth:`compact`.
        Unknown or already-deleted ids raise ``KeyError``.
        """
        targets = np.unique(np.asarray(global_ids, dtype=np.int64))
        if not len(targets):
            return 0
        if targets.min() < 0 or targets.max() >= len(self.assignments):
            raise KeyError(f"global id out of range: {int(targets.min())}..."
                           f"{int(targets.max())} vs {len(self.assignments)} allocated")
        owners = self.assignments[targets]
        for shard_id in np.unique(owners):
            self.shards[shard_id].delete(targets[owners == shard_id])
        self._record_mutation("datastore_deletes_total", len(targets))
        return len(targets)

    def compact(self, shard_ids=None) -> int:
        """Compact shards (all by default); returns how many changed.

        Each changed shard's sealed index is rebuilt warmed and swapped
        atomically under its ``generation`` counter; searches running
        concurrently keep using the old sealed state until the swap.
        Compaction is result-preserving (the mutation-equivalence
        contract), so it does *not* bump the datastore-wide ``mutations``
        counter — retrieval-cache entries stay valid across a compaction;
        only the per-shard generations move.
        """
        shards = (
            self.shards
            if shard_ids is None
            else [self.shards[int(s)] for s in shard_ids]
        )
        changed = sum(1 for shard in shards if shard.compact())
        if changed:
            self._update_delta_gauge()
        return changed

    @property
    def generation(self) -> int:
        """Monotone datastore-wide version: changes whenever results could."""
        return self.mutations

    def delta_rows(self) -> int:
        """Rows currently in delta memtables across all shards."""
        return sum(
            s.delta.ntotal for s in self.shards if getattr(s, "delta", None) is not None
        )

    def _record_mutation(self, counter: str, n: int) -> None:
        self.mutations += 1
        get_registry().counter(counter, "live datastore mutations").inc(n)
        self._update_delta_gauge()

    def _update_delta_gauge(self) -> None:
        get_registry().gauge(
            "datastore_delta_size", "rows awaiting compaction in delta memtables"
        ).set(self.delta_rows())

    def reconstruct_vectors(self) -> np.ndarray:
        """Decode every stored vector back into global-id order.

        Returns an ``(n_allocated_ids, dim)`` matrix of the *quantized*
        vectors (lossy for non-flat codecs) — the data an exhaustive
        ground-truth search over the deployed datastore actually sees. Rows
        of tombstoned documents are zero-filled; mutated stores should
        prefer :meth:`live_vectors`, which returns only live rows plus
        their global ids.
        """
        dim = self.shards[0].index.dim
        n = len(self.assignments) if len(self.assignments) else self.ntotal
        out = np.zeros((n, dim), dtype=np.float32)
        for shard in self.shards:
            vecs, local = shard.index.reconstruct()
            out[shard.global_ids[local]] = vecs
            if shard.delta is not None and shard.delta.ntotal:
                out[shard.global_ids[shard.index.ntotal :]] = shard.delta.reconstruct()
            if shard.tombstones:
                out[shard._tombstone_globals()] = 0.0
        return out

    def live_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Decoded live vectors plus their global ids, in global-id order.

        The ground truth a rebuild-from-scratch over the current live set
        would search — what the mutation-equivalence harness compares
        against.
        """
        vecs = self.reconstruct_vectors()
        dead = np.concatenate(
            [s._tombstone_globals() for s in self.shards]
            + [np.empty(0, dtype=np.int64)]
        )
        live = np.setdiff1d(
            np.concatenate([s.global_ids for s in self.shards]), dead,
            assume_unique=False,
        )
        return vecs[live], live

    def shard_token_sizes(self, total_tokens: float) -> list[float]:
        """Map a nominal datastore token size onto shards by document share.

        Used to drive the multi-node performance model with the measured
        shard imbalance of a real clustering.
        """
        sizes = self.sizes().astype(np.float64)
        return list(total_tokens * sizes / sizes.sum())


def cluster_datastore(
    embeddings: np.ndarray, config: HermesConfig | None = None
) -> ClusteredDatastore:
    """Hermes's semantic disaggregation: K-means split + per-cluster IVF.

    Runs the paper's seed sweep on a small subset to pick the K-means seed
    with the least cluster-size imbalance, then builds one IVF index per
    resulting cluster. Shard builds are independent seeded subproblems, so
    they fan out on a thread pool (``config.build_workers``) with bit-exact
    results at any worker count.
    """
    config = config or HermesConfig()
    emb = as_matrix(embeddings)
    tracer = get_tracer()
    with tracer.span(
        "build_datastore", strategy="semantic", docs=len(emb), clusters=config.n_clusters
    ) as build_span:
        with tracer.span(
            "kmeans_seed_sweep",
            seeds=len(tuple(config.kmeans_seeds)),
            subset_fraction=config.kmeans_subset_fraction,
        ):
            result = kmeans_seed_sweep(
                emb,
                config.n_clusters,
                seeds=config.kmeans_seeds,
                subset_fraction=config.kmeans_subset_fraction,
                algorithm=config.kmeans_algorithm,
                batch_size=config.kmeans_batch_size,
                workers=config.build_workers,
            )
        members_per_cluster = []
        for cid in range(config.n_clusters):
            member_ids = np.flatnonzero(result.assignments == cid).astype(np.int64)
            if not len(member_ids):
                raise RuntimeError(
                    f"cluster {cid} is empty after K-means; use fewer clusters"
                )
            members_per_cluster.append(member_ids)
        shards = _build_shards_traced(emb, members_per_cluster, config, build_span)
    return ClusteredDatastore(
        shards=shards, config=config, clustering=result, assignments=result.assignments
    )


def _build_shards_traced(
    emb: np.ndarray,
    members_per_cluster: list,
    config: HermesConfig,
    parent,
) -> list:
    """Fan the per-shard builds out on a pool, one span per shard.

    Shard builds run on pool threads, so their spans take an explicit parent
    (thread-local nesting does not cross the pool boundary) and a distinct
    ``worker`` label — parallel builds legitimately overlap in time.
    """
    tracer = get_tracer()
    with tracer.span(
        "build_shards", parent=parent, shards=len(members_per_cluster)
    ) as fan_span:

        def build_one(cid: int, ids: np.ndarray):
            with tracer.span(
                "build_shard",
                parent=fan_span,
                worker=f"builder{cid}",
                shard=cid,
                docs=len(ids),
            ):
                return _build_shard(cid, emb, ids, config)

        return run_tasks(
            [
                lambda cid=cid, ids=ids: build_one(cid, ids)
                for cid, ids in enumerate(members_per_cluster)
            ],
            workers=config.build_workers,
        )


def split_datastore_evenly(
    embeddings: np.ndarray, config: HermesConfig | None = None, *, seed: int = 0
) -> ClusteredDatastore:
    """Naive random equal split (the paper's "Split" baseline, Fig. 11).

    Documents are shuffled and dealt into ``n_clusters`` equal shards, so no
    shard has topical coherence — every query must search all shards to match
    monolithic accuracy.
    """
    config = config or HermesConfig()
    emb = as_matrix(embeddings)
    n = len(emb)
    if n < config.n_clusters:
        raise ValueError(f"need at least {config.n_clusters} documents, got {n}")
    order = np.random.default_rng(seed).permutation(n)
    assignments = np.empty(n, dtype=np.int64)
    members_per_cluster = []
    for cid, member_ids in enumerate(np.array_split(order, config.n_clusters)):
        member_ids = np.sort(member_ids).astype(np.int64)
        assignments[member_ids] = cid
        members_per_cluster.append(member_ids)
    with get_tracer().span(
        "build_datastore", strategy="split", docs=n, clusters=config.n_clusters
    ) as build_span:
        shards = _build_shards_traced(emb, members_per_cluster, config, build_span)
    return ClusteredDatastore(
        shards=shards, config=config, clustering=None, assignments=assignments
    )


def assign_queries_to_shards(
    datastore: ClusteredDatastore, queries: np.ndarray
) -> np.ndarray:
    """Nearest-centroid shard per query (diagnostics / centroid routing)."""
    dists = pairwise_distance(queries, datastore.centroids(), datastore.config.metric)
    return dists.argmin(axis=1)
