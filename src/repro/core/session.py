"""Token-level strided RAG sessions over a real clustered datastore.

The cost models treat a stride as a fixed-price retrieval; this module runs
the actual §2.2 loop: encode the current context, retrieve, "generate" a
stride of tokens grounded in the retrieved chunks, fold them into the
context, and retrieve again. Because retrieval really re-executes against the
clustered indices with a drifting query, the session measures two quantities
the paper only assumes:

- **stride document overlap** — how often stride *i* re-retrieves stride
  *i-1*'s documents, the quantity behind RAGCache's (assumed ideal) hit rate;
- **routing stability** — whether the Hermes cluster choice stays put as the
  context evolves, which determines how well per-node caches and DVFS
  settings persist across strides.

Both quantities are also *acted on*, not just measured. With
``reuse_routing=True`` the session skips the sample-search fan-out whenever
the last freshly-routed strides agreed (Jaccard ≥
``routing_stability_threshold``), handing the previous stride's
:class:`~repro.core.router.RoutingDecision` back to the searcher; a fresh
re-route every ``max_routing_reuse`` strides bounds staleness as the context
drifts. And passing a :class:`~repro.llm.kvcache.PrefixCache` replays every
stride's retrieved ids through a real LRU cache *during* the run, so the
RAGCache baseline's "ideal 100% hit rate" becomes a measured number on the
session trace (``SessionTrace.prefix_stats``).

Generation is simulated deterministically: each stride emits tokens sampled
from the top retrieved chunk mixed with the query's own tokens (a grounded
"copy mechanism"), which preserves the topical drift real RAG generation
exhibits without needing a language model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datastore.chunkstore import ChunkStore
from ..datastore.encoder import SyntheticEncoder
from ..llm.kvcache import CacheStats, PrefixCache
from ..obs.metrics import get_registry
from .hierarchical import HierarchicalSearcher
from .router import RoutingDecision


def _jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two routed-cluster id rows (ignoring -1)."""
    sa = {int(c) for c in a if c >= 0}
    sb = {int(c) for c in b if c >= 0}
    union = sa | sb
    return len(sa & sb) / len(union) if union else 1.0


@dataclass
class StrideStep:
    """One stride's retrieval + generation record."""

    stride_index: int
    retrieved_ids: np.ndarray
    routed_clusters: np.ndarray
    generated_tokens: np.ndarray
    #: True when this stride reused the previous stride's RoutingDecision
    #: instead of re-running sample search.
    routing_reused: bool = False


@dataclass
class SessionTrace:
    """Full record of one strided generation session."""

    steps: list[StrideStep] = field(default_factory=list)
    #: measured prefix-cache counters when the session ran with one
    #: (the RAGCache "real hit rate", measured instead of assumed)
    prefix_stats: CacheStats | None = None

    @property
    def n_strides(self) -> int:
        return len(self.steps)

    def stride_results(self) -> list[np.ndarray]:
        """Per-stride retrieved-id arrays (input to the RAGCache analyses)."""
        return [s.retrieved_ids for s in self.steps]

    def document_overlap(self) -> float:
        """Mean consecutive-stride retrieval overlap (0..1)."""
        from ..baselines.ragcache import stride_overlap_fraction

        return stride_overlap_fraction(self.stride_results())

    def routing_stability(self) -> float:
        """Mean Jaccard similarity of consecutive strides' routed clusters."""
        if len(self.steps) < 2:
            raise ValueError("need at least two strides")
        scores = [
            _jaccard(prev.routed_clusters, cur.routed_clusters)
            for prev, cur in zip(self.steps, self.steps[1:])
        ]
        return float(np.mean(scores))

    @property
    def routing_reuse_fraction(self) -> float:
        """Fraction of strides that skipped sample search by reusing routing."""
        if not self.steps:
            return 0.0
        return float(np.mean([s.routing_reused for s in self.steps]))

    @property
    def measured_prefix_hit_rate(self) -> float | None:
        """Real cross-stride KV-prefix hit rate, or None if not measured."""
        if self.prefix_stats is None:
            return None
        return self.prefix_stats.hit_rate

    def all_generated_tokens(self) -> np.ndarray:
        if not self.steps:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([s.generated_tokens for s in self.steps])


class StridedRAGSession:
    """Drives the strided retrieve→generate loop for one query.

    Parameters
    ----------
    searcher:
        Hierarchical searcher over the clustered datastore.
    encoder:
        The shared deterministic encoder (query context is re-encoded every
        stride).
    chunk_store:
        Id → chunk lookup for grounding the simulated generation.
    stride_tokens:
        Tokens generated per stride.
    context_window:
        Maximum context tokens kept when re-encoding (oldest dropped first),
        mirroring a fixed input window.
    grounding:
        Fraction of each stride's tokens copied from the top retrieved chunk
        (the rest repeat query-context tokens). Higher grounding drifts the
        query toward the retrieved topic faster.
    reuse_routing:
        Skip the sample-search fan-out on strides whose routing has proven
        stable: once the last two *fresh* routings agree (Jaccard ≥
        ``routing_stability_threshold``), subsequent strides hand the
        previous :class:`RoutingDecision` back to the searcher, re-routing
        freshly every ``max_routing_reuse`` strides to bound staleness.
    prefix_cache:
        Optional :class:`~repro.llm.kvcache.PrefixCache`; every stride's
        retrieved ids are replayed through it live, so the trace reports the
        *measured* RAGCache hit rate instead of the paper's 100% assumption.
    """

    def __init__(
        self,
        searcher: HierarchicalSearcher,
        encoder: SyntheticEncoder,
        chunk_store: ChunkStore,
        *,
        stride_tokens: int = 16,
        context_window: int = 512,
        grounding: float = 0.5,
        k: int = 5,
        seed: int = 0,
        reuse_routing: bool = False,
        routing_stability_threshold: float = 0.6,
        max_routing_reuse: int = 4,
        prefix_cache: PrefixCache | None = None,
    ) -> None:
        if stride_tokens <= 0 or context_window <= 0:
            raise ValueError("stride_tokens and context_window must be positive")
        if not 0.0 <= grounding <= 1.0:
            raise ValueError("grounding must be in [0, 1]")
        if not 0.0 <= routing_stability_threshold <= 1.0:
            raise ValueError("routing_stability_threshold must be in [0, 1]")
        if max_routing_reuse < 1:
            raise ValueError("max_routing_reuse must be >= 1")
        self.searcher = searcher
        self.encoder = encoder
        self.chunk_store = chunk_store
        self.stride_tokens = stride_tokens
        self.context_window = context_window
        self.grounding = grounding
        self.k = k
        self.reuse_routing = reuse_routing
        self.routing_stability_threshold = routing_stability_threshold
        self.max_routing_reuse = max_routing_reuse
        self.prefix_cache = prefix_cache
        self._rng = np.random.default_rng(seed)

    def _generate_stride(
        self, context: np.ndarray, top_chunk_tokens: np.ndarray
    ) -> np.ndarray:
        """Emit one stride of grounded pseudo-generation."""
        n_grounded = int(round(self.stride_tokens * self.grounding))
        n_context = self.stride_tokens - n_grounded
        parts = []
        if n_grounded and len(top_chunk_tokens):
            parts.append(self._rng.choice(top_chunk_tokens, size=n_grounded))
        if n_context and len(context):
            parts.append(self._rng.choice(context, size=n_context))
        if not parts:
            raise ValueError("cannot generate from empty context and chunk")
        return np.concatenate(parts).astype(np.int64)

    def run(self, query_tokens: np.ndarray, *, n_strides: int = 8) -> SessionTrace:
        """Execute *n_strides* of the retrieve→generate loop."""
        if n_strides <= 0:
            raise ValueError("n_strides must be positive")
        context = np.asarray(query_tokens, dtype=np.int64)
        if not len(context):
            raise ValueError("query must be non-empty")
        trace = SessionTrace(
            prefix_stats=self.prefix_cache.stats
            if self.prefix_cache is not None
            else None
        )
        prev_routing: RoutingDecision | None = None
        stable = False  # the last two fresh routings agreed
        reuse_run = 0
        for stride in range(n_strides):
            embedding = self.encoder.encode_tokens(context[-self.context_window:])
            reuse = (
                self.reuse_routing
                and stable
                and prev_routing is not None
                and reuse_run < self.max_routing_reuse
            )
            result = self.searcher.search(
                embedding[np.newaxis, :],
                k=self.k,
                routing=prev_routing if reuse else None,
            )
            if reuse:
                reuse_run += 1
                get_registry().counter(
                    "session_routing_reuses_total",
                    "strides that skipped sample search via stable routing",
                ).inc()
            else:
                if prev_routing is not None:
                    stable = (
                        _jaccard(
                            prev_routing.clusters[0], result.routing.clusters[0]
                        )
                        >= self.routing_stability_threshold
                    )
                reuse_run = 0
            prev_routing = result.routing
            ids = result.ids[0]
            if self.prefix_cache is not None:
                self._replay_prefix_cache(ids)
            top_id = int(ids[0]) if ids[0] >= 0 else -1
            top_tokens = (
                self.chunk_store.get(top_id).tokens
                if top_id >= 0
                else np.empty(0, dtype=np.int64)
            )
            generated = self._generate_stride(context, top_tokens)
            trace.steps.append(
                StrideStep(
                    stride_index=stride,
                    retrieved_ids=ids.copy(),
                    routed_clusters=result.routing.clusters[0].copy(),
                    generated_tokens=generated,
                    routing_reused=reuse,
                )
            )
            context = np.concatenate([context, generated])
        return trace

    def _replay_prefix_cache(self, ids: np.ndarray) -> None:
        """Feed one stride's retrievals to the live KV-prefix cache model."""
        for doc in ids:
            doc = int(doc)
            if doc < 0:
                continue
            if not self.prefix_cache.lookup(doc):
                chunk = self.chunk_store.get(doc)
                self.prefix_cache.insert(doc, max(len(chunk.tokens), 1))
