"""Candidate reranking: the last step before augmentation (§2.2).

The paper: "the retrieved document chunks can be re-ranked for relevance,
using either similarity scores or advanced neural methods, and then
integrated into inference". Two rerankers implement that menu:

- :class:`SimilarityReranker` — orders candidates by exact inner product with
  the query embedding (what the evaluation pipeline uses: "obtained via
  re-ranking using inner-product distance with the query vector", §5);
- :class:`CrossInteractionReranker` — the "advanced neural method" stand-in:
  a token-level interaction scorer over the candidate chunk *text* (IDF-style
  rare-term weighting blended with embedding similarity), behaving like a
  cross-encoder: more expensive per candidate, better at token-precise
  relevance than the bi-encoder score alone.
"""

from __future__ import annotations

import abc
import math
from collections import Counter

import numpy as np

from ..ann.distances import as_matrix, normalize
from ..datastore.chunkstore import ChunkStore


class Reranker(abc.ABC):
    """Reorders one query's candidate document ids, best first."""

    @abc.abstractmethod
    def rerank(
        self, query_embedding: np.ndarray, candidate_ids: np.ndarray
    ) -> np.ndarray:
        """Return candidate ids reordered by relevance (padding -1 last)."""

    def top(self, query_embedding: np.ndarray, candidate_ids: np.ndarray, n: int) -> np.ndarray:
        """The *n* best candidates after reranking."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.rerank(query_embedding, candidate_ids)[:n]


class SimilarityReranker(Reranker):
    """Exact inner-product reranking against full-precision vectors.

    ``vectors`` holds the corpus embeddings in global-id order; unlike the
    quantized index payloads, reranking uses full precision — a cheap
    quality win the paper's pipeline exploits.
    """

    def __init__(self, vectors: np.ndarray) -> None:
        self.vectors = as_matrix(vectors)

    def rerank(
        self, query_embedding: np.ndarray, candidate_ids: np.ndarray
    ) -> np.ndarray:
        ids = np.asarray(candidate_ids, dtype=np.int64).ravel()
        valid = ids[ids >= 0]
        if not len(valid):
            return ids
        query = as_matrix(query_embedding)[0]
        sims = self.vectors[valid] @ query
        order = np.argsort(-sims)
        reordered = valid[order]
        padding = np.full(len(ids) - len(valid), -1, dtype=np.int64)
        return np.concatenate([reordered, padding])


class CrossInteractionReranker(Reranker):
    """Token-interaction reranker over candidate text (cross-encoder stand-in).

    Score = ``alpha * embedding_similarity + (1-alpha) * idf_weighted_token
    overlap``. The token term rewards exact rare-term matches the embedding
    dilutes — the behaviour that makes cross-encoders worth their cost.
    Requires the chunk store (text) and the query's token ids.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        chunk_store: ChunkStore,
        *,
        alpha: float = 0.5,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.vectors = as_matrix(vectors)
        self.chunk_store = chunk_store
        self.alpha = alpha
        # Corpus-wide document frequencies for IDF weighting.
        self._df: Counter = Counter()
        self._n_docs = len(chunk_store)
        for chunk_id in range(self._n_docs):
            tokens = set(int(t) for t in chunk_store.get(chunk_id).tokens)
            self._df.update(tokens)

    def _idf(self, token: int) -> float:
        df = self._df.get(token, 0)
        return math.log((self._n_docs + 1) / (df + 1)) + 1.0

    def _token_score(self, query_tokens: np.ndarray, chunk_tokens: np.ndarray) -> float:
        chunk_set = set(int(t) for t in chunk_tokens)
        q_tokens = [int(t) for t in query_tokens]
        if not q_tokens:
            return 0.0
        gain = sum(self._idf(t) for t in q_tokens if t in chunk_set)
        norm = sum(self._idf(t) for t in q_tokens)
        return gain / norm if norm else 0.0

    def rerank_with_tokens(
        self,
        query_embedding: np.ndarray,
        query_tokens: np.ndarray,
        candidate_ids: np.ndarray,
    ) -> np.ndarray:
        """Full cross-interaction reranking (embedding + token evidence)."""
        ids = np.asarray(candidate_ids, dtype=np.int64).ravel()
        valid = ids[ids >= 0]
        if not len(valid):
            return ids
        query = normalize(as_matrix(query_embedding))[0]
        emb_scores = self.vectors[valid] @ query
        token_scores = np.array(
            [
                self._token_score(query_tokens, self.chunk_store.get(int(doc)).tokens)
                for doc in valid
            ]
        )
        combined = self.alpha * emb_scores + (1 - self.alpha) * token_scores
        order = np.argsort(-combined)
        reordered = valid[order]
        padding = np.full(len(ids) - len(valid), -1, dtype=np.int64)
        return np.concatenate([reordered, padding])

    def rerank(
        self, query_embedding: np.ndarray, candidate_ids: np.ndarray
    ) -> np.ndarray:
        """Embedding-only fallback when query tokens are unavailable."""
        return SimilarityReranker(self.vectors).rerank(query_embedding, candidate_ids)
