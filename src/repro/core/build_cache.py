"""Fingerprinted build cache for the offline index-construction stage.

At the paper's scales index construction is the expensive offline step
(hours to weeks, §4.1); at repro scale it is still the dominant cost of
every experiment run. Most runs rebuild the exact same datastore — same
embeddings, same build knobs — so this module memoises built deployments on
disk, keyed by a content fingerprint:

- a blake2b hash of the raw embedding bytes (and shape/dtype), and
- the *build-relevant* subset of :class:`~repro.core.config.HermesConfig`,
- the index serialization format version (format bumps invalidate entries).

Search-time knobs (nProbe of the sampling pass, ``clusters_to_search``,
``k``, ...) and ``build_workers`` (bit-exact at any worker count) are
deliberately excluded, so tuning the online side never forces a rebuild.

Entries are stored atomically: the datastore is saved into a temp directory
next to the cache and ``os.replace``\\ d into place, so a crashed or
concurrent build can never publish a half-written entry.

Environment switches:

- ``HERMES_BUILD_CACHE=0`` disables the cache entirely;
- ``HERMES_BUILD_CACHE_DIR`` relocates it (default
  ``~/.cache/hermes-repro/builds``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ann.distances import as_matrix
from ..ann.persistence import FORMAT_VERSION
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .clustering import ClusteredDatastore, cluster_datastore
from .config import HermesConfig
from .store_io import load_datastore, save_datastore

logger = logging.getLogger(__name__)

#: Config fields that change the built artifact. ``deep_nprobe`` is listed
#: because it is baked into each shard index as the default probe depth.
BUILD_FIELDS = (
    "n_clusters",
    "nlist",
    "quantization",
    "metric",
    "deep_nprobe",
    "kmeans_seeds",
    "kmeans_subset_fraction",
    "kmeans_algorithm",
    "kmeans_batch_size",
    "quantizer_train_sample",
)


@dataclass
class CacheStats:
    """Hit/miss/store counters, reported in experiment run logs."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        return (
            f"build-cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s)"
        )


#: Process-wide counters; experiment runners report these after a run.
GLOBAL_STATS = CacheStats()


def cache_enabled() -> bool:
    """True unless ``HERMES_BUILD_CACHE`` is set to an off value."""
    return os.environ.get("HERMES_BUILD_CACHE", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def default_cache_dir() -> Path:
    env = os.environ.get("HERMES_BUILD_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "hermes-repro" / "builds"


def build_fingerprint(embeddings: np.ndarray, config: HermesConfig) -> str:
    """Content hash identifying one (embeddings, build-config) artifact."""
    emb = as_matrix(embeddings)
    h = hashlib.blake2b(digest_size=16)
    h.update(f"shape={emb.shape} dtype={emb.dtype}".encode())
    h.update(np.ascontiguousarray(emb).tobytes())
    build_config = {name: getattr(config, name) for name in BUILD_FIELDS}
    build_config["format"] = FORMAT_VERSION
    h.update(json.dumps(build_config, sort_keys=True, default=list).encode())
    return h.hexdigest()


class BuildCache:
    """Directory of built datastores, one subdirectory per fingerprint."""

    def __init__(
        self, directory: "str | Path | None" = None, *, stats: CacheStats | None = None
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = stats if stats is not None else GLOBAL_STATS

    def entry_path(self, key: str) -> Path:
        return self.directory / key

    def has(self, key: str) -> bool:
        return (self.entry_path(key) / "manifest.json").exists()

    def load(self, key: str) -> ClusteredDatastore | None:
        """Return the cached datastore for *key*, or ``None`` on a miss."""
        if not self.has(key):
            return None
        return load_datastore(self.entry_path(key))

    def store(self, key: str, datastore: ClusteredDatastore) -> None:
        """Atomically publish *datastore* under *key* (last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.entry_path(key)
        tmp = Path(tempfile.mkdtemp(prefix=f".{key}-", dir=self.directory))
        try:
            save_datastore(datastore, tmp)
            if final.exists():
                shutil.rmtree(final)
            os.replace(tmp, final)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.stats.stores += 1

    def clear(self) -> None:
        if self.directory.exists():
            shutil.rmtree(self.directory)


def cached_cluster_datastore(
    embeddings: np.ndarray,
    config: HermesConfig | None = None,
    *,
    cache: BuildCache | None = None,
    use_cache: bool | None = None,
) -> ClusteredDatastore:
    """:func:`~repro.core.clustering.cluster_datastore` with memoisation.

    On a hit the datastore is loaded from disk and its config swapped for the
    *requested* one — the two can only differ in search-time fields, which
    the fingerprint ignores on purpose.
    """
    config = config or HermesConfig()
    if use_cache is None:
        use_cache = cache_enabled()
    if not use_cache:
        return cluster_datastore(embeddings, config)
    if cache is None:
        cache = BuildCache()
    lookups = get_registry().counter(
        "build_cache_lookups_total", "fingerprinted build-cache lookups by result"
    )
    key = build_fingerprint(embeddings, config)
    with get_tracer().span("build_cache_lookup", key=key) as span:
        datastore = cache.load(key)
        if datastore is not None:
            span.set(result="hit")
            lookups.inc(result="hit")
            cache.stats.hits += 1
            logger.info("build-cache hit %s (%s)", key, cache.entry_path(key))
            datastore.config = config
            return datastore
        span.set(result="miss")
        lookups.inc(result="miss")
        cache.stats.misses += 1
    logger.info("build-cache miss %s; building", key)
    datastore = cluster_datastore(embeddings, config)
    with get_tracer().span("build_cache_store", key=key):
        cache.store(key, datastore)
        get_registry().counter(
            "build_cache_stores_total", "datastores published into the build cache"
        ).inc()
    return datastore
