"""Hermes framework configuration (the paper's Table 2).

One dataclass gathers every tunable the paper exposes:

========================  =================================================
Configuration aspect      Tuning options (Table 2)
========================  =================================================
Latency & accuracy        sample search depth (``sample_nprobe``),
                          deep search depth (``deep_nprobe``),
                          number of clusters to search (``clusters_to_search``),
                          number of documents to retrieve (``k``)
Node scaling              number of search indices (``n_clusters``)
Memory efficiency         size of search indices (via ``n_clusters`` and the
                          quantization scheme)
========================  =================================================

The defaults are the paper's evaluated operating point: 10 clusters, sample
nProbe 8, deep nProbe 128, 3 clusters deep-searched, 5 documents retrieved
with the best 1 prepended after reranking (§5, §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HermesConfig:
    """All Hermes tunables, with the paper's defaults."""

    #: Number of datastore clusters / search indices / retrieval nodes.
    n_clusters: int = 10
    #: nProbe of the cheap sampling search into every cluster.
    sample_nprobe: int = 8
    #: nProbe of the in-depth search into the routed clusters.
    deep_nprobe: int = 128
    #: How many top-ranked clusters receive the in-depth search.
    clusters_to_search: int = 3
    #: Documents retrieved per query by the deep search.
    k: int = 5
    #: Documents kept after reranking and prepended to the prompt.
    rerank_top: int = 1
    #: Documents sampled per cluster during the sampling phase.
    sample_k: int = 1
    #: Inverted lists per cluster index; ``None`` uses the paper's
    #: ``nlist ≈ sqrt(N)`` heuristic at build time.
    nlist: int | None = None
    #: Quantization scheme of every cluster index (Table 1 pick).
    quantization: str = "sq8"
    #: Similarity metric (the paper reranks by inner product).
    metric: str = "ip"
    #: K-means seeds swept to minimise cluster-size imbalance (§4.1).
    kmeans_seeds: tuple[int, ...] = field(default=(0, 1, 2, 3, 4, 5, 6, 7))
    #: Subset fraction for the cheap imbalance-estimation runs (§4.1: 1-2%).
    kmeans_subset_fraction: float = 0.02
    #: Threads for shard builds / seed-sweep trials (None = one per task up
    #: to the host CPUs). Does not change results, only wall-clock.
    build_workers: int | None = None
    #: K-means variant for the split and the per-shard coarse centroids:
    #: "auto" (mini-batch for large inputs), "lloyd", "minibatch", or the
    #: retained pre-optimisation "reference" path.
    kmeans_algorithm: str = "auto"
    #: Mini-batch size when the mini-batch K-means path is taken.
    kmeans_batch_size: int = 4096
    #: Training-row cap for codebook quantizers (PQ/OPQ); None trains on the
    #: full shard. Scalar quantizers always see every row.
    quantizer_train_sample: int | None = 16_384
    #: Deep-search fan-out backend: "thread" scans routed shards on a thread
    #: pool in-process; "process" ships each shard search to a persistent
    #: worker-process pool over shared-memory shard views (results are
    #: bit-identical either way; a crashed worker degrades the query like a
    #: crashed replica instead of hanging it).
    search_workers_mode: str = "thread"

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if not 1 <= self.clusters_to_search <= self.n_clusters:
            raise ValueError(
                f"clusters_to_search must be in [1, {self.n_clusters}], "
                f"got {self.clusters_to_search}"
            )
        if self.sample_nprobe <= 0 or self.deep_nprobe <= 0:
            raise ValueError("nProbe values must be positive")
        if self.k <= 0 or self.sample_k <= 0:
            raise ValueError("k and sample_k must be positive")
        if not 1 <= self.rerank_top <= self.k:
            raise ValueError(f"rerank_top must be in [1, {self.k}]")
        if not self.kmeans_seeds:
            raise ValueError("kmeans_seeds must be non-empty")
        if not 0 < self.kmeans_subset_fraction <= 1:
            raise ValueError("kmeans_subset_fraction must be in (0, 1]")
        if self.build_workers is not None and self.build_workers <= 0:
            raise ValueError("build_workers must be positive (or None for auto)")
        from ..ann.kmeans import ALGORITHMS

        if self.kmeans_algorithm not in ALGORITHMS:
            raise ValueError(
                f"kmeans_algorithm must be one of {ALGORITHMS}, got {self.kmeans_algorithm!r}"
            )
        if self.kmeans_batch_size <= 0:
            raise ValueError("kmeans_batch_size must be positive")
        if self.quantizer_train_sample is not None and self.quantizer_train_sample <= 0:
            raise ValueError("quantizer_train_sample must be positive (or None)")
        if self.search_workers_mode not in ("thread", "process"):
            raise ValueError(
                "search_workers_mode must be 'thread' or 'process', "
                f"got {self.search_workers_mode!r}"
            )
