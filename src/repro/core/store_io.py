"""Clustered-datastore persistence: one directory per deployment.

Layout::

    <dir>/manifest.json        # config + shard inventory (+ mutation state)
    <dir>/shard_<i>.npz        # one IVF index per cluster (ann.persistence)
    <dir>/mutation_<i>.npz     # delta codes/cells + tombstones (live shards)
    <dir>/assignments.npy      # per-document shard assignment
    <dir>/clustering.npz       # K-means split result (semantic splits only)

Mirrors the paper artifact's offline index-construction outputs so a built
deployment can be constructed once and served many times. Format 5 adds the
live-mutation state: shards with a delta memtable or tombstones persist them
in a per-shard sidecar plus per-shard ``generation`` and the datastore-wide
``mutations`` counter in the manifest; directories written by older formats
simply load with no mutation state.

Every file is written via a temp file in the same directory followed by
``os.replace``, so a writer crash mid-save never corrupts an existing store:
readers see either the old complete file or the new complete file. Saving a
*live* datastore quiesces one shard at a time (``IndexShard.quiesce``):
mutations on that shard block while its files are written, so the persisted
index/ids/delta/tombstones are a consistent cut; searches are unaffected.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from ..ann.delta import DeltaIndex
from ..ann.kmeans import KMeansResult
from ..ann.persistence import load_index, save_ivf
from .clustering import ClusteredDatastore, IndexShard
from .config import HermesConfig


def _atomic_write(path: Path, write) -> None:
    """Run ``write(file_obj)`` against a temp file, then rename into place.

    The temp file lives next to *path* so ``os.replace`` is an atomic rename
    on the same filesystem. On any failure the temp file is removed and the
    previous *path* contents (if any) are left untouched.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            write(f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _atomic_save_array(path: Path, array: np.ndarray) -> None:
    _atomic_write(path, lambda f: np.save(f, array))


def save_datastore(datastore: ClusteredDatastore, directory: "str | Path") -> None:
    """Persist a clustered datastore to *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "config": dataclasses.asdict(datastore.config),
        "n_clusters": datastore.n_clusters,
        "mutations": int(getattr(datastore, "mutations", 0)),
        "shards": [],
    }
    for shard in datastore.shards:
        # Quiesce the shard (mutations block, searches proceed) so the
        # index/ids/delta/tombstones written below are one consistent cut —
        # an unquiesced save could persist e.g. an ids array longer than
        # sealed+delta rows, which IndexShard.__post_init__ rejects at load.
        with shard.quiesce():
            filename = f"shard_{shard.shard_id}.npz"
            _atomic_write(
                directory / filename, lambda f, s=shard: save_ivf(s.index, f)
            )
            _atomic_save_array(
                directory / f"ids_{shard.shard_id}.npy", shard.global_ids
            )
            _atomic_save_array(
                directory / f"centroid_{shard.shard_id}.npy", shard.centroid
            )
            entry = {
                "shard_id": shard.shard_id,
                "file": filename,
                "size": len(shard),
                "generation": int(getattr(shard, "generation", 0)),
            }
            if getattr(shard, "has_mutations", False):
                mutation_file = f"mutation_{shard.shard_id}.npz"
                delta = shard.delta
                _atomic_write(
                    directory / mutation_file,
                    lambda f, d=delta, s=shard: np.savez_compressed(
                        f,
                        delta_codes=(
                            d.codes
                            if d is not None
                            else np.empty((0, 0), dtype=np.uint8)
                        ),
                        delta_cells=(
                            d.cells if d is not None else np.empty(0, dtype=np.int64)
                        ),
                        tombstones=np.array(sorted(s.tombstones), dtype=np.int64),
                    ),
                )
                entry["mutation_file"] = mutation_file
        manifest["shards"].append(entry)
    _atomic_save_array(directory / "assignments.npy", datastore.assignments)
    if datastore.clustering is not None:
        _atomic_write(
            directory / "clustering.npz",
            lambda f: np.savez_compressed(
                f,
                centroids=datastore.clustering.centroids,
                assignments=datastore.clustering.assignments,
                inertia=np.float64(datastore.clustering.inertia),
                n_iter=np.int64(datastore.clustering.n_iter),
                seed=np.int64(datastore.clustering.seed),
            ),
        )
    _atomic_write(
        directory / "manifest.json",
        lambda f: f.write(json.dumps(manifest, indent=2).encode()),
    )


def load_datastore(directory: "str | Path") -> ClusteredDatastore:
    """Load a datastore saved by :func:`save_datastore`."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json in {directory}")
    manifest = json.loads(manifest_path.read_text())
    config_dict = dict(manifest["config"])
    config_dict["kmeans_seeds"] = tuple(config_dict["kmeans_seeds"])
    config = HermesConfig(**config_dict)
    shards = []
    for entry in manifest["shards"]:
        shard_id = entry["shard_id"]
        index = load_index(directory / entry["file"])
        delta = None
        tombstones: set = set()
        # Format-5 mutation sidecar; absent for frozen shards and for
        # directories written by older format versions.
        mutation_file = entry.get("mutation_file")
        if mutation_file is not None:
            with np.load(directory / mutation_file, allow_pickle=False) as data:
                if len(data["delta_codes"]):
                    delta = DeltaIndex.restore(
                        index, data["delta_codes"], data["delta_cells"]
                    )
                tombstones = {int(t) for t in data["tombstones"]}
        shards.append(
            IndexShard(
                shard_id=shard_id,
                index=index,
                global_ids=np.load(directory / f"ids_{shard_id}.npy"),
                centroid=np.load(directory / f"centroid_{shard_id}.npy"),
                generation=int(entry.get("generation", 0)),
                delta=delta,
                tombstones=tombstones,
            )
        )
    assignments = np.load(directory / "assignments.npy")
    clustering = None
    clustering_path = directory / "clustering.npz"
    if clustering_path.exists():
        with np.load(clustering_path, allow_pickle=False) as data:
            clustering = KMeansResult(
                centroids=data["centroids"],
                assignments=data["assignments"],
                inertia=float(data["inertia"]),
                n_iter=int(data["n_iter"]),
                seed=int(data["seed"]),
            )
    return ClusteredDatastore(
        shards=shards,
        config=config,
        clustering=clustering,
        assignments=assignments,
        mutations=int(manifest.get("mutations", 0)),
    )
