"""Clustered-datastore persistence: one directory per deployment.

Layout::

    <dir>/manifest.json        # config + shard inventory
    <dir>/shard_<i>.npz        # one IVF index per cluster (ann.persistence)
    <dir>/assignments.npy      # per-document shard assignment
    <dir>/clustering.npz       # K-means split result (semantic splits only)

Mirrors the paper artifact's offline index-construction outputs so a built
deployment can be constructed once and served many times.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..ann.kmeans import KMeansResult
from ..ann.persistence import load_index, save_ivf
from .clustering import ClusteredDatastore, IndexShard
from .config import HermesConfig


def save_datastore(datastore: ClusteredDatastore, directory: "str | Path") -> None:
    """Persist a clustered datastore to *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "config": dataclasses.asdict(datastore.config),
        "n_clusters": datastore.n_clusters,
        "shards": [],
    }
    for shard in datastore.shards:
        filename = f"shard_{shard.shard_id}.npz"
        save_ivf(shard.index, directory / filename)
        np.save(directory / f"ids_{shard.shard_id}.npy", shard.global_ids)
        np.save(directory / f"centroid_{shard.shard_id}.npy", shard.centroid)
        manifest["shards"].append(
            {"shard_id": shard.shard_id, "file": filename, "size": len(shard)}
        )
    np.save(directory / "assignments.npy", datastore.assignments)
    if datastore.clustering is not None:
        np.savez_compressed(
            directory / "clustering.npz",
            centroids=datastore.clustering.centroids,
            assignments=datastore.clustering.assignments,
            inertia=np.float64(datastore.clustering.inertia),
            n_iter=np.int64(datastore.clustering.n_iter),
            seed=np.int64(datastore.clustering.seed),
        )
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))


def load_datastore(directory: "str | Path") -> ClusteredDatastore:
    """Load a datastore saved by :func:`save_datastore`."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json in {directory}")
    manifest = json.loads(manifest_path.read_text())
    config_dict = dict(manifest["config"])
    config_dict["kmeans_seeds"] = tuple(config_dict["kmeans_seeds"])
    config = HermesConfig(**config_dict)
    shards = []
    for entry in manifest["shards"]:
        shard_id = entry["shard_id"]
        index = load_index(directory / entry["file"])
        shards.append(
            IndexShard(
                shard_id=shard_id,
                index=index,
                global_ids=np.load(directory / f"ids_{shard_id}.npy"),
                centroid=np.load(directory / f"centroid_{shard_id}.npy"),
            )
        )
    assignments = np.load(directory / "assignments.npy")
    clustering = None
    clustering_path = directory / "clustering.npz"
    if clustering_path.exists():
        with np.load(clustering_path, allow_pickle=False) as data:
            clustering = KMeansResult(
                centroids=data["centroids"],
                assignments=data["assignments"],
                inertia=float(data["inertia"]),
                n_iter=int(data["n_iter"]),
                seed=int(data["seed"]),
            )
    return ClusteredDatastore(
        shards=shards, config=config, clustering=clustering, assignments=assignments
    )
