"""Hermes hierarchical search: sample → rank → deep search → rerank (§4.2).

The full online retrieval path over a :class:`ClusteredDatastore`:

1. **Sample**: the router probes every cluster cheaply (low nProbe, one
   document each) and ranks clusters per query;
2. **Deep search**: only the top ``clusters_to_search`` clusters run the
   expensive high-nProbe search for ``k`` documents each;
3. **Merge + rerank**: per-query candidates from the searched clusters merge
   into a global top-k by distance (equivalently, inner-product reranking for
   the paper's normalised embeddings).

The search result carries the routing matrix so schedulers and the
performance model can account per-node load, and the number of
shard-queries issued, the work metric behind Fig. 18's throughput/energy
curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ann.distances import as_matrix
from .clustering import ClusteredDatastore
from .config import HermesConfig
from .router import AllRouter, ClusterRouter, RoutingDecision, SampledRouter


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hierarchical (or exhaustive-split) search batch."""

    distances: np.ndarray
    ids: np.ndarray
    routing: RoutingDecision
    #: total (query, shard) deep-search pairs issued — the work measure
    shard_queries: int

    @property
    def batch_size(self) -> int:
        return len(self.ids)


class HierarchicalSearcher:
    """Search driver combining a router with per-shard deep searches."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        router: ClusterRouter | None = None,
        config: HermesConfig | None = None,
    ) -> None:
        self.datastore = datastore
        self.config = config or datastore.config
        self.router = router if router is not None else SampledRouter()

    def search(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
        exclude_clusters: "frozenset | set | None" = None,
        deep_patience: int | None = None,
    ) -> SearchResult:
        """Route then deep-search a query batch; returns global top-k.

        ``exclude_clusters`` marks failed/unreachable nodes: their shards are
        neither sampled nor deep-searched, so the system degrades to the
        surviving clusters' coverage instead of erroring (node-failure
        handling for the distributed deployment).

        ``deep_patience`` enables adaptive early termination inside each
        shard's deep search (the §7 complementary optimisation): probing
        stops once the shard-local top-k has not improved for that many
        consecutive cells.
        """
        q = as_matrix(queries)
        k = k or self.config.k
        m = clusters_to_search or self.config.clusters_to_search
        nprobe = deep_nprobe or self.config.deep_nprobe
        exclude = frozenset(exclude_clusters or ())

        routing = self.router.route(q, self.datastore, m, exclude=exclude)
        fanout = routing.fanout
        nq = len(q)

        # Candidate pool: k results from each of the query's routed shards.
        cand_d = np.full((nq, fanout * k), np.inf, dtype=np.float32)
        cand_i = np.full((nq, fanout * k), -1, dtype=np.int64)
        shard_queries = 0

        # Batch by shard: all queries routed to shard s search it together,
        # exactly how per-node batches form in the distributed system.
        for shard in self.datastore.shards:
            hit_q, hit_slot = np.nonzero(routing.clusters == shard.shard_id)
            if not len(hit_q):
                continue
            shard_queries += len(hit_q)
            if deep_patience is not None:
                from ..ann.early_termination import search_with_early_termination

                result = search_with_early_termination(
                    shard.index,
                    q[hit_q],
                    k,
                    max_nprobe=nprobe,
                    patience=deep_patience,
                )
                dists = result.distances
                ids = np.full_like(result.ids, -1)
                valid = result.ids >= 0
                ids[valid] = shard.global_ids[result.ids[valid]]
            else:
                dists, ids = shard.search(q[hit_q], k, nprobe=nprobe)
            for row, slot, d_row, i_row in zip(hit_q, hit_slot, dists, ids):
                cand_d[row, slot * k : (slot + 1) * k] = d_row
                cand_i[row, slot * k : (slot + 1) * k] = i_row

        # Merge: global top-k by distance (the rerank step; for normalised
        # embeddings this is the paper's inner-product rerank).
        order = np.argsort(cand_d, axis=1)[:, :k]
        rows = np.arange(nq)[:, np.newaxis]
        return SearchResult(
            distances=cand_d[rows, order],
            ids=cand_i[rows, order],
            routing=routing,
            shard_queries=shard_queries,
        )


class HermesSearcher(HierarchicalSearcher):
    """The paper's configuration: document-sampling router over all shards."""

    def __init__(
        self, datastore: ClusteredDatastore, *, config: HermesConfig | None = None
    ) -> None:
        cfg = config or datastore.config
        super().__init__(
            datastore,
            router=SampledRouter(
                sample_nprobe=cfg.sample_nprobe, sample_k=cfg.sample_k
            ),
            config=cfg,
        )


class ExhaustiveSplitSearcher(HierarchicalSearcher):
    """Naive distributed baseline: deep-search every shard, aggregate all."""

    def __init__(
        self, datastore: ClusteredDatastore, *, config: HermesConfig | None = None
    ) -> None:
        super().__init__(datastore, router=AllRouter(), config=config)

    def search(self, queries: np.ndarray, *, k: int | None = None, **kwargs) -> SearchResult:
        kwargs.setdefault("clusters_to_search", self.datastore.n_clusters)
        return super().search(queries, k=k, **kwargs)
