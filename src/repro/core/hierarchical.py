"""Hermes hierarchical search: sample → rank → deep search → rerank (§4.2).

The full online retrieval path over a :class:`ClusteredDatastore`:

1. **Sample**: the router probes every cluster cheaply (low nProbe, one
   document each) and ranks clusters per query;
2. **Deep search**: only the top ``clusters_to_search`` clusters run the
   expensive high-nProbe search for ``k`` documents each;
3. **Merge + rerank**: per-query candidates from the searched clusters merge
   into a global top-k by distance (equivalently, inner-product reranking for
   the paper's normalised embeddings).

The search result carries the routing matrix so schedulers and the
performance model can account per-node load, and the number of
shard-queries issued, the work metric behind Fig. 18's throughput/energy
curves.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..ann.distances import as_matrix
from .clustering import ClusteredDatastore
from .config import HermesConfig
from .router import AllRouter, ClusterRouter, RoutingDecision, SampledRouter


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hierarchical (or exhaustive-split) search batch."""

    distances: np.ndarray
    ids: np.ndarray
    routing: RoutingDecision
    #: total (query, shard) deep-search pairs issued — the work measure
    shard_queries: int

    @property
    def batch_size(self) -> int:
        return len(self.ids)


class HierarchicalSearcher:
    """Search driver combining a router with per-shard deep searches."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        router: ClusterRouter | None = None,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.datastore = datastore
        self.config = config or datastore.config
        self.router = router if router is not None else SampledRouter()
        self.max_workers = max_workers

    def search(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
        exclude_clusters: "frozenset | set | None" = None,
        deep_patience: int | None = None,
        parallel: bool | None = None,
    ) -> SearchResult:
        """Route then deep-search a query batch; returns global top-k.

        ``exclude_clusters`` marks failed/unreachable nodes: their shards are
        neither sampled nor deep-searched, so the system degrades to the
        surviving clusters' coverage instead of erroring (node-failure
        handling for the distributed deployment).

        ``deep_patience`` enables adaptive early termination inside each
        shard's deep search (the §7 complementary optimisation): probing
        stops once the shard-local top-k has not improved for that many
        consecutive cells.

        ``parallel`` fans the per-shard deep searches out over a thread pool
        (numpy's BLAS kernels release the GIL), mirroring the paper's
        one-index-per-node parallelism in wall-clock terms. ``None`` enables
        threading iff the searcher was built with ``max_workers``.
        """
        q = as_matrix(queries)
        k = self.config.k if k is None else int(k)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        m = (
            self.config.clusters_to_search
            if clusters_to_search is None
            else int(clusters_to_search)
        )
        if m <= 0:
            raise ValueError(f"clusters_to_search must be positive, got {m}")
        nprobe = self.config.deep_nprobe if deep_nprobe is None else int(deep_nprobe)
        if nprobe <= 0:
            raise ValueError(f"deep_nprobe must be positive, got {nprobe}")
        exclude = frozenset(exclude_clusters or ())

        routing = self.router.route(q, self.datastore, m, exclude=exclude)
        fanout = routing.fanout
        nq = len(q)

        # Candidate pool: k results from each of the query's routed shards.
        cand_d = np.full((nq, fanout * k), np.inf, dtype=np.float32)
        cand_i = np.full((nq, fanout * k), -1, dtype=np.int64)

        # Batch by shard: all queries routed to shard s search it together,
        # exactly how per-node batches form in the distributed system.
        tasks = []
        for shard in self.datastore.shards:
            hit_q, hit_slot = np.nonzero(routing.clusters == shard.shard_id)
            if len(hit_q):
                tasks.append((shard, hit_q, hit_slot))
        shard_queries = sum(len(hit_q) for _, hit_q, _ in tasks)

        def deep_search(task):
            shard, hit_q, hit_slot = task
            if deep_patience is not None:
                from ..ann.early_termination import search_with_early_termination

                result = search_with_early_termination(
                    shard.index,
                    q[hit_q],
                    k,
                    max_nprobe=nprobe,
                    patience=deep_patience,
                )
                dists = result.distances
                ids = np.full_like(result.ids, -1)
                valid = result.ids >= 0
                ids[valid] = shard.global_ids[result.ids[valid]]
            else:
                dists, ids = shard.search(q[hit_q], k, nprobe=nprobe)
            return hit_q, hit_slot, dists, ids

        use_threads = (self.max_workers is not None) if parallel is None else bool(parallel)
        if use_threads and len(tasks) > 1:
            workers = min(self.max_workers or len(tasks), len(tasks))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(deep_search, tasks))
        else:
            results = [deep_search(task) for task in tasks]

        kcols = np.arange(k)
        for hit_q, hit_slot, dists, ids in results:
            cols = hit_slot[:, np.newaxis] * k + kcols[np.newaxis, :]
            cand_d[hit_q[:, np.newaxis], cols] = dists
            cand_i[hit_q[:, np.newaxis], cols] = ids

        # Merge: global top-k by distance (the rerank step; for normalised
        # embeddings this is the paper's inner-product rerank).
        order = np.argsort(cand_d, axis=1)[:, :k]
        rows = np.arange(nq)[:, np.newaxis]
        return SearchResult(
            distances=cand_d[rows, order],
            ids=cand_i[rows, order],
            routing=routing,
            shard_queries=shard_queries,
        )


class HermesSearcher(HierarchicalSearcher):
    """The paper's configuration: document-sampling router over all shards."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
    ) -> None:
        cfg = config or datastore.config
        super().__init__(
            datastore,
            router=SampledRouter(
                sample_nprobe=cfg.sample_nprobe, sample_k=cfg.sample_k
            ),
            config=cfg,
            max_workers=max_workers,
        )


class ExhaustiveSplitSearcher(HierarchicalSearcher):
    """Naive distributed baseline: deep-search every shard, aggregate all."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
    ) -> None:
        super().__init__(
            datastore, router=AllRouter(), config=config, max_workers=max_workers
        )

    def search(self, queries: np.ndarray, *, k: int | None = None, **kwargs) -> SearchResult:
        kwargs.setdefault("clusters_to_search", self.datastore.n_clusters)
        return super().search(queries, k=k, **kwargs)
