"""Hermes hierarchical search: sample → rank → deep search → rerank (§4.2).

The full online retrieval path over a :class:`ClusteredDatastore`:

1. **Sample**: the router probes every cluster cheaply (low nProbe, one
   document each) and ranks clusters per query;
2. **Deep search**: only the top ``clusters_to_search`` clusters run the
   expensive high-nProbe search for ``k`` documents each;
3. **Merge + rerank**: per-query candidates from the searched clusters merge
   into a global top-k by distance (equivalently, inner-product reranking for
   the paper's normalised embeddings).

The search result carries the routing matrix so schedulers and the
performance model can account per-node load, and the number of
shard-queries issued, the work metric behind Fig. 18's throughput/energy
curves.

Fault tolerance
---------------
One index per node (§4/§6) puts every retrieval node on the TTFT critical
path, so the searcher ships a fleet-survival layer governed by a
:class:`RetrievalPolicy`:

- **per-shard deadlines** bound how long one shard may stall the batch;
- **bounded retries with exponential backoff** absorb transient errors;
- **hedged duplicate requests** cut straggler tails (a second identical
  request is issued after ``hedge_delay_s``; first answer wins);
- a **circuit breaker** (:class:`ShardHealth`) trips after consecutive
  failures and feeds the router's ``exclude`` set automatically, so dead
  nodes stop being probed until a cooldown expires.

A shard that still fails yields its candidate slots as ``(+inf, -1)``
instead of raising — the batch *degrades* to the surviving clusters'
coverage (the semantic-clustering availability argument: losing one cluster
loses one topic, not a slice of every query). :class:`SearchResult` records
``failed_shards``, ``degraded``, and per-shard latency/attempt stats so
schedulers and the perfmodel can charge for retries and hedges.

Without a policy the searcher is fail-fast: an unexpected shard exception
propagates wrapped in :class:`~repro.core.errors.ShardSearchError` carrying
the shard id and routed query count.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

import numpy as np

from ..ann.distances import as_matrix
from ..obs.metrics import get_registry
from ..obs.trace import Span, Tracer, get_tracer
from .clustering import ClusteredDatastore
from .config import HermesConfig
from .errors import (
    DeadlineExceededError,
    RetrievalUnavailableError,
    ShardCrashedError,
    ShardError,
    ShardSearchError,
    ShardTimeoutError,
    TransientShardError,
)
from .router import AllRouter, ClusterRouter, RoutingDecision, SampledRouter


class RetryBudget:
    """Fleet-wide token bucket bounding the *total* retry volume.

    Per-shard retry policies multiply during a correlated outage: with 10
    shards each allowed 2 retries, one bad window turns every batch into up
    to 30 shard calls — a retry storm that keeps the fleet saturated long
    after the fault clears. The classic fix (Finagle/SRE "retry budgets") is
    a shared bucket: every *primary* attempt deposits ``fill_rate`` tokens
    (capped at ``capacity``) and every retry withdraws one, so sustained
    retry traffic is bounded to ``fill_rate`` of primary traffic while short
    bursts can still spend the accumulated capacity.

    Thread-safe — the deep-search fan-out spends from pool threads. Share
    one instance across every :class:`RetrievalPolicy` of a fleet (it is
    deliberately *not* created per policy).
    """

    def __init__(self, capacity: float = 10.0, fill_rate: float = 0.1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= fill_rate <= 1.0:
            raise ValueError(f"fill_rate must be in [0, 1], got {fill_rate}")
        self.capacity = float(capacity)
        self.fill_rate = float(fill_rate)
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self.exhausted = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Credit one primary attempt's worth of retry allowance."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.fill_rate)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False (and counted) when the bucket is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.exhausted += 1
        get_registry().counter(
            "retry_budget_exhausted_total",
            "retries suppressed because the fleet-wide retry budget ran dry",
        ).inc()
        return False

    def reset(self) -> None:
        with self._lock:
            self._tokens = self.capacity
            self.exhausted = 0


@dataclass(frozen=True)
class RetrievalPolicy:
    """Fleet-survival knobs for the deep-search fan-out.

    ``deadline_s`` bounds each *attempt* (hedges share the primary's
    deadline); ``max_attempts`` counts the primary plus transient-error
    retries; ``backoff_s`` doubles per retry. ``hedge_delay_s`` launches one
    duplicate request if the primary has not answered in time — the
    tail-tolerance mechanism, distinct from retries which handle *errors*.
    ``breaker_threshold`` consecutive shard failures open the circuit for
    ``breaker_cooldown`` subsequent search batches. ``retry_budget`` is an
    optional *shared* :class:`RetryBudget`: when its bucket is dry, a shard
    fails after its primary attempt instead of retrying, so per-shard retry
    allowances cannot multiply into a fleet-wide retry storm.
    """

    deadline_s: float | None = None
    max_attempts: int = 1
    backoff_s: float = 0.0
    hedge_delay_s: float | None = None
    breaker_threshold: int | None = None
    breaker_cooldown: int = 2
    retry_budget: "RetryBudget | None" = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be non-negative, got {self.backoff_s}")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ValueError(f"hedge_delay_s must be non-negative, got {self.hedge_delay_s}")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 1:
            raise ValueError(f"breaker_cooldown must be >= 1, got {self.breaker_cooldown}")

    @property
    def needs_executor(self) -> bool:
        """Deadlines and hedges need attempts running on their own threads."""
        return self.deadline_s is not None or self.hedge_delay_s is not None


class ShardHealth:
    """Consecutive-failure circuit breaker over the shard fleet.

    ``record_failure`` past ``threshold`` opens the shard's circuit for
    ``cooldown`` search batches (:meth:`tick` advances the clock once per
    batch). An open shard is auto-excluded from routing. When the cooldown
    expires the shard is *half-open*: it is probed again, one success closes
    the circuit, one failure re-opens it immediately.

    Thread-safe: deep searches record outcomes from pool threads.
    """

    def __init__(self, n_shards: int, *, threshold: int = 3, cooldown: int = 2) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.n_shards = n_shards
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._consecutive = np.zeros(n_shards, dtype=np.int64)
        self._open_for = np.zeros(n_shards, dtype=np.int64)

    def _check(self, shard_id: int) -> int:
        shard_id = int(shard_id)
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard id {shard_id} out of range [0, {self.n_shards})")
        return shard_id

    def record_success(self, shard_id: int) -> None:
        shard_id = self._check(shard_id)
        with self._lock:
            self._consecutive[shard_id] = 0
            self._open_for[shard_id] = 0

    def record_failure(self, shard_id: int) -> None:
        shard_id = self._check(shard_id)
        with self._lock:
            self._consecutive[shard_id] += 1
            if self._consecutive[shard_id] >= self.threshold:
                newly_open = self._open_for[shard_id] == 0
                self._open_for[shard_id] = self.cooldown
                if newly_open:
                    get_registry().counter(
                        "retrieval_breaker_trips_total",
                        "circuit-breaker open transitions",
                    ).inc(shard=shard_id)

    def trip(self, shard_id: int) -> None:
        """Open the circuit immediately (crash-stop: no point counting up)."""
        shard_id = self._check(shard_id)
        with self._lock:
            self._consecutive[shard_id] = max(
                self.threshold, int(self._consecutive[shard_id]) + 1
            )
            newly_open = self._open_for[shard_id] == 0
            self._open_for[shard_id] = self.cooldown
        if newly_open:
            get_registry().counter(
                "retrieval_breaker_trips_total",
                "circuit-breaker open transitions",
            ).inc(shard=shard_id)

    def consecutive_failures(self, shard_id: int) -> int:
        return int(self._consecutive[self._check(shard_id)])

    def is_open(self, shard_id: int) -> bool:
        return bool(self._open_for[self._check(shard_id)] > 0)

    def open_shards(self) -> frozenset:
        """Shards whose circuit is currently open (auto-excluded)."""
        with self._lock:
            return frozenset(int(s) for s in np.flatnonzero(self._open_for > 0))

    def tick(self) -> None:
        """Advance the breaker clock by one search batch."""
        with self._lock:
            np.maximum(self._open_for - 1, 0, out=self._open_for)

    def reset(self) -> None:
        with self._lock:
            self._consecutive[:] = 0
            self._open_for[:] = 0


@dataclass(frozen=True)
class ShardCallStats:
    """Accounting for one shard's deep-search participation in a batch.

    ``attempts`` counts issued requests including hedges, so
    ``queries * attempts`` is the work the perfmodel should charge; a
    healthy un-hedged shard has ``attempts == 1``.

    ``latency_s`` is *attempt* time — the time requests to this shard were
    actually in flight, summed across retries — and deliberately excludes
    retry backoff sleeps; ``wall_s`` is the full wall-clock window from
    first attempt to final outcome, backoffs included. The two are equal
    for a shard that succeeded on its first attempt.
    """

    shard_id: int
    queries: int
    attempts: int
    latency_s: float
    hedged: bool = False
    outcome: str = "ok"
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hierarchical (or exhaustive-split) search batch."""

    distances: np.ndarray
    ids: np.ndarray
    routing: RoutingDecision
    #: total (query, shard) deep-search pairs issued — the work measure
    shard_queries: int
    #: shards that contributed nothing: sampling failure, deep-search
    #: failure/timeout, or an open circuit breaker (user excludes are not
    #: failures — the caller asked for them)
    failed_shards: tuple = ()
    #: per-shard latency / attempt / outcome accounting
    shard_stats: tuple = ()
    #: root :class:`~repro.obs.trace.Span` of this batch's trace, populated
    #: when the search ran under an enabled tracer (``trace=True`` or a
    #: process-wide tracer via :func:`repro.obs.enable_tracing`)
    trace: "Span | None" = None

    @property
    def batch_size(self) -> int:
        return len(self.ids)

    @property
    def degraded(self) -> bool:
        """True when any shard's candidates are missing from the merge."""
        return bool(self.failed_shards)

    @property
    def shard_queries_attempted(self) -> int:
        """Work actually issued, counting retries and hedges (perfmodel cost)."""
        if not self.shard_stats:
            return self.shard_queries
        return int(sum(s.queries * s.attempts for s in self.shard_stats))

    @property
    def hedged_shards(self) -> tuple:
        return tuple(s.shard_id for s in self.shard_stats if s.hedged)


class HierarchicalSearcher:
    """Search driver combining a router with per-shard deep searches."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        router: ClusterRouter | None = None,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
        workers_mode: str | None = None,
        policy: RetrievalPolicy | None = None,
        health: ShardHealth | None = None,
        tracer: "Tracer | None" = None,
        clock=None,
        sleep=None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.datastore = datastore
        self.config = config or datastore.config
        self.router = router if router is not None else SampledRouter()
        self.max_workers = max_workers
        if workers_mode is None:
            workers_mode = self.config.search_workers_mode
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', got {workers_mode!r}"
            )
        self.workers_mode = workers_mode
        #: lazily started process pool (``workers_mode="process"`` only)
        self._shard_pool = None
        #: per-shard compaction generations the pool's arrays were exported
        #: at — a mismatch means the sealed storage changed under the pool
        self._pool_generations: tuple = ()
        self.policy = policy
        if health is None and policy is not None and policy.breaker_threshold is not None:
            health = ShardHealth(
                datastore.n_clusters,
                threshold=policy.breaker_threshold,
                cooldown=policy.breaker_cooldown,
            )
        self.health = health
        #: explicit tracer override; ``None`` defers to the process-wide one
        self.tracer = tracer
        # Injectable time sources (deterministic latency-accounting tests);
        # production uses the monotonic wall clock and real sleeps.
        self._clock = clock if clock is not None else time.perf_counter
        self._sleep = sleep if sleep is not None else time.sleep

    # -- exclude validation -------------------------------------------------
    def _validated_exclude(self, exclude_clusters) -> frozenset:
        """Check user excludes up front (satellite: fail clearly, not deep
        inside the router)."""
        n = self.datastore.n_clusters
        exclude = frozenset(int(c) for c in (exclude_clusters or ()))
        unknown = sorted(c for c in exclude if c < 0 or c >= n)
        if unknown:
            raise ValueError(
                f"exclude_clusters contains unknown shard ids {unknown}; "
                f"datastore has shards 0..{n - 1}"
            )
        if len(exclude) >= n:
            raise RetrievalUnavailableError(
                f"exclude_clusters covers all {n} shards; no shard left to search"
            )
        return exclude

    # -- process-mode shard pool -------------------------------------------
    def _ensure_shard_pool(self):
        """Start (once) the worker-process pool backing process-mode search.

        Startup warms every shard and copies its arrays into shared memory;
        amortised over the searcher's lifetime, per-search traffic is then
        just the query batch and the top-k block.

        The exported arrays snapshot each shard's *sealed* storage, which
        compaction replaces wholesale — so a stale pool (any shard's
        ``generation`` moved since export) is torn down and rebuilt here.
        Delta inserts and tombstones do not invalidate the pool: they are
        merged parent-side by ``IndexShard.search``.
        """
        generations = tuple(
            int(getattr(s, "generation", 0)) for s in self.datastore.shards
        )
        if self._shard_pool is not None and generations != self._pool_generations:
            get_registry().counter(
                "retrieval_pool_rebuilds_total",
                "process shard pools rebuilt after a compaction generation change",
            ).inc()
            self.close()
        if self._shard_pool is None:
            from ..ann.parallel import ProcessShardPool

            self._shard_pool = ProcessShardPool(
                self.datastore.shards, workers=self.max_workers
            )
            self._pool_generations = generations
        return self._shard_pool

    def close(self) -> None:
        """Release the process pool (no-op in thread mode / if never started)."""
        pool, self._shard_pool = self._shard_pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "HierarchicalSearcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- policy-governed execution -----------------------------------------
    def _attempt_with_deadline(
        self,
        shard_id: int,
        attempt,
        policy: RetrievalPolicy,
        executor: ThreadPoolExecutor,
        meta: dict,
    ):
        """One attempt under a deadline, with an optional hedged duplicate.

        Returns the attempt's value; raises its failure (a
        :class:`ShardTimeoutError` if the deadline elapsed first). A
        launched hedge is recorded in ``meta["hedges"]`` immediately so the
        duplicate work is charged even when the attempt ultimately fails.
        """
        start = time.perf_counter()
        deadline = policy.deadline_s

        def remaining() -> float | None:
            if deadline is None:
                return None
            return deadline - (time.perf_counter() - start)

        futures = [executor.submit(attempt)]
        if policy.hedge_delay_s is not None:
            hedge_wait = policy.hedge_delay_s
            if deadline is not None:
                hedge_wait = min(hedge_wait, deadline)
            done, _ = wait(futures, timeout=hedge_wait)
            if not done:
                futures.append(executor.submit(attempt))
                meta["hedges"] += 1

        pending = set(futures)
        failure: BaseException | None = None
        while pending:
            left = remaining()
            if left is not None and left <= 0:
                break
            done, pending = wait(pending, timeout=left, return_when=FIRST_COMPLETED)
            if not done:
                break  # deadline elapsed with requests still in flight
            for fut in done:
                exc = fut.exception()
                if exc is None:
                    return fut.result()
                failure = exc
        if pending:
            raise ShardTimeoutError(shard_id, deadline)
        assert failure is not None
        raise failure

    def _run_with_policy(
        self,
        shard_id: int,
        n_queries: int,
        attempt,
        policy: RetrievalPolicy,
        executor: ThreadPoolExecutor | None,
        tracer: "Tracer | None" = None,
    ):
        """Run one shard's deep search under the retry/deadline/hedge policy.

        Returns ``(value_or_None, ShardCallStats)``; never raises — a
        failed shard degrades the batch instead of aborting it.

        Each attempt is timed individually *inside* the retry loop, so the
        reported ``latency_s`` is time requests were in flight — retry
        backoff sleeps land only in ``wall_s``. (Timing the whole loop with
        one clock-pair straddles the sleeps and inflates shard latencies by
        the full backoff schedule.)
        """
        clock = self._clock
        tracer = tracer if tracer is not None else get_tracer()
        t0 = clock()
        busy = 0.0
        attempts = 0
        hedges = 0
        outcome = "ok"
        backoff = policy.backoff_s
        budget = policy.retry_budget
        if budget is not None:
            budget.deposit()
        value = None
        while True:
            attempts += 1
            meta = {"hedges": 0}
            attempt_start = clock()
            try:
                # Inner try/finally times exactly the in-flight attempt: the
                # backoff sleep below runs in the except handler, after the
                # finally has already banked this attempt's interval.
                try:
                    with tracer.span("attempt", try_index=attempts):
                        if executor is None:
                            value = attempt()
                        else:
                            value = self._attempt_with_deadline(
                                shard_id, attempt, policy, executor, meta
                            )
                    break
                finally:
                    busy += clock() - attempt_start
                    hedges += meta["hedges"]
            except TransientShardError:
                if attempts >= policy.max_attempts:
                    outcome = "transient-exhausted"
                    break
                if budget is not None and not budget.try_spend():
                    # Fleet-wide budget dry: degrade now rather than join a
                    # retry storm already in progress.
                    outcome = "retry-budget-exhausted"
                    break
                if backoff > 0:
                    with tracer.span("backoff", seconds=backoff):
                        self._sleep(backoff)
                    backoff *= 2
            except ShardTimeoutError:
                outcome = "timeout"
                break
            except ShardCrashedError:
                outcome = "crashed"
                break
            except FutureTimeoutError:
                outcome = "timeout"
                break
            except Exception:  # noqa: BLE001 — degrade, never abort the batch
                outcome = "error"
                break
        stats = ShardCallStats(
            shard_id=shard_id,
            queries=n_queries,
            # hedged duplicates are issued requests: charge them as attempts
            attempts=attempts + hedges,
            latency_s=busy,
            hedged=hedges > 0,
            outcome=outcome,
            wall_s=clock() - t0,
        )
        registry = get_registry()
        if attempts > 1:
            registry.counter(
                "retrieval_retries_total",
                "transient-error retries issued by the deep-search fan-out",
            ).inc(attempts - 1)
        if hedges:
            registry.counter(
                "retrieval_hedges_total", "hedged duplicate shard requests"
            ).inc(hedges)
        registry.histogram(
            "retrieval_shard_latency_seconds",
            "per-shard in-flight deep-search time (excludes backoff sleeps)",
        ).observe(stats.latency_s, outcome=outcome)
        return (value if outcome == "ok" else None), stats

    # -- the search itself --------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
        exclude_clusters: "frozenset | set | None" = None,
        deep_patience: int | None = None,
        parallel: bool | None = None,
        trace: bool = False,
        routing: "RoutingDecision | None" = None,
        deadline_s: float | None = None,
    ) -> SearchResult:
        """Route then deep-search a query batch; returns global top-k.

        ``deadline_s`` is the request's *remaining end-to-end budget* at call
        time (seconds). It is accounted against this searcher's clock: after
        routing, the per-attempt deadline of the deep-search policy is
        clamped to what is left of the budget, so a 50 ms request never
        launches a deep search allowed to run 200 ms. A budget that is
        already spent (or runs out before the deep phase starts) raises
        :class:`~repro.core.errors.DeadlineExceededError` and counts on
        ``retrieval_deadline_exceeded_total`` — callers under admission
        control shed the request instead of serving it late.

        ``routing`` reuses a prior batch's :class:`RoutingDecision` instead
        of re-running the sample-search fan-out — the serve-time hook behind
        the routing cache tier and stride-aware sessions (near-duplicate
        queries route identically, so the cheap probes are pure overhead).
        The decision must cover this batch (same ``batch_size``) and have
        been produced against this datastore. Reuse is an optimisation, not
        a contract: if the reused decision routes to a shard that is now
        excluded (caller exclude or open breaker), it is discarded and the
        batch re-routes freshly, counted on
        ``retrieval_route_reuse_invalidated_total``.

        ``trace=True`` opts this batch into span tracing even when no
        process-wide tracer is enabled: the returned
        :attr:`SearchResult.trace` carries the batch's span tree
        (``retrieval`` → ``route`` / ``deep_search`` / ``merge``, with
        per-shard children). When a tracer is already active (searcher
        ``tracer=`` or :func:`repro.obs.enable_tracing`), spans are always
        recorded there and ``trace`` is implied.

        ``exclude_clusters`` marks failed/unreachable nodes: their shards are
        neither sampled nor deep-searched, so the system degrades to the
        surviving clusters' coverage instead of erroring (node-failure
        handling for the distributed deployment). Unknown ids raise
        ``ValueError``; excluding every shard raises
        :class:`RetrievalUnavailableError`. Shards whose circuit breaker is
        open (see :class:`ShardHealth`) are excluded automatically.

        ``deep_patience`` enables adaptive early termination inside each
        shard's deep search (the §7 complementary optimisation): probing
        stops once the shard-local top-k has not improved for that many
        consecutive cells.

        ``parallel`` fans the per-shard deep searches out over a thread pool
        (numpy's BLAS kernels release the GIL), mirroring the paper's
        one-index-per-node parallelism in wall-clock terms. ``None`` enables
        threading iff the searcher was built with ``max_workers``.
        """
        q = as_matrix(queries)
        k = self.config.k if k is None else int(k)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        deadline_at = None
        if deadline_s is not None:
            if deadline_s <= 0:
                get_registry().counter(
                    "retrieval_deadline_exceeded_total",
                    "searches refused or cut short by an exhausted request budget",
                ).inc(stage="submit")
                raise DeadlineExceededError(deadline_s, stage="submit")
            deadline_at = self._clock() + float(deadline_s)
        m = (
            self.config.clusters_to_search
            if clusters_to_search is None
            else int(clusters_to_search)
        )
        if m <= 0:
            raise ValueError(f"clusters_to_search must be positive, got {m}")
        nprobe = self.config.deep_nprobe if deep_nprobe is None else int(deep_nprobe)
        if nprobe <= 0:
            raise ValueError(f"deep_nprobe must be positive, got {nprobe}")
        n_shards = self.datastore.n_clusters
        user_exclude = self._validated_exclude(exclude_clusters)
        nq = len(q)
        if routing is not None:
            if routing.batch_size != nq:
                raise ValueError(
                    f"reused routing covers {routing.batch_size} queries, "
                    f"batch has {nq}"
                )
            routed_ids = routing.clusters
            if routed_ids.size and int(routed_ids.max()) >= n_shards:
                raise ValueError(
                    f"reused routing references shard {int(routed_ids.max())}; "
                    f"datastore has shards 0..{n_shards - 1}"
                )

        tracer = self.tracer if self.tracer is not None else get_tracer()
        if trace and not tracer.enabled:
            # Per-call opt-in: a private tracer so the caller gets a span
            # tree on the result without turning on process-wide tracing.
            tracer = Tracer(clock=self._clock)
        registry = get_registry()
        clock = self._clock
        batch_start = clock()
        latency = registry.histogram(
            "retrieval_latency_seconds",
            "hierarchical search phase latency (route/deep/merge/total)",
        )

        if self.health is not None:
            self.health.tick()
            breaker_open = self.health.open_shards()
            registry.gauge(
                "retrieval_breaker_open_shards",
                "shards currently auto-excluded by their circuit breaker",
            ).set(len(breaker_open))
        else:
            breaker_open = frozenset()
        exclude = user_exclude | breaker_open
        if len(exclude) >= n_shards:
            raise RetrievalUnavailableError(
                f"all {n_shards} shards excluded ({len(user_exclude)} by caller, "
                f"{len(breaker_open)} by open circuit breakers)"
            )
        if routing is not None and exclude:
            used = {int(c) for c in np.unique(routing.clusters) if c >= 0}
            if used & exclude:
                # Stale decision routes to a dead/excluded shard: re-route.
                registry.counter(
                    "retrieval_route_reuse_invalidated_total",
                    "reused routing decisions discarded for touching excluded shards",
                ).inc()
                routing = None

        root = tracer.start_span(
            "retrieval",
            batch=nq,
            k=k,
            clusters_to_search=m,
            deep_nprobe=nprobe,
        )
        try:
            return self._traced_search(
                q,
                k,
                m,
                nprobe,
                exclude,
                breaker_open,
                deep_patience,
                parallel,
                tracer,
                root,
                registry,
                latency,
                batch_start,
                reuse=routing,
                deadline_at=deadline_at,
            )
        finally:
            if root.end_s is None:
                root.finish(tracer.clock() if tracer.enabled else 0.0)
            latency.observe(clock() - batch_start, phase="total")
            registry.counter(
                "retrieval_batches_total", "hierarchical search batches served"
            ).inc()

    def _traced_search(
        self,
        q: np.ndarray,
        k: int,
        m: int,
        nprobe: int,
        exclude: frozenset,
        breaker_open: frozenset,
        deep_patience: int | None,
        parallel: bool | None,
        tracer: Tracer,
        root,
        registry,
        latency,
        batch_start: float,
        reuse: "RoutingDecision | None" = None,
        deadline_at: float | None = None,
    ) -> SearchResult:
        """The sample → route → deep → merge body, under the batch's spans."""
        n_shards = self.datastore.n_clusters
        clock = self._clock
        nq = len(q)

        phase_start = clock()
        with tracer.span(
            "route", parent=root, router=type(self.router).__name__
        ) as route_span:
            if reuse is not None:
                routing = reuse
                route_span.set(reused=True)
                registry.counter(
                    "retrieval_route_reused_total",
                    "sample-search phases skipped by reusing a prior RoutingDecision",
                ).inc()
            else:
                routing = self.router.route(q, self.datastore, m, exclude=exclude)
            route_span.set(
                fanout=routing.fanout, failed_clusters=len(routing.failed_clusters)
            )
        latency.observe(clock() - phase_start, phase="route")
        if self.health is not None and reuse is None:
            # A reused decision's failed_clusters describe a *past* batch;
            # re-penalising them would double-count old failures.
            for sid in routing.failed_clusters:
                self.health.record_failure(sid)
        if len(exclude | routing.failed_clusters) >= n_shards:
            raise RetrievalUnavailableError(
                f"no live shard left: {sorted(exclude)} excluded and "
                f"{sorted(routing.failed_clusters)} failed during sampling"
            )
        fanout = routing.fanout

        # Candidate pool: k results from each of the query's routed shards.
        # Slots of failed shards keep their (+inf, -1) fill — graceful
        # degradation is "those candidates simply don't exist".
        cand_d = np.full((nq, fanout * k), np.inf, dtype=np.float32)
        cand_i = np.full((nq, fanout * k), -1, dtype=np.int64)

        # Batch by shard: all queries routed to shard s search it together,
        # exactly how per-node batches form in the distributed system.
        tasks = []
        for shard in self.datastore.shards:
            hit_q, hit_slot = np.nonzero(routing.clusters == shard.shard_id)
            if len(hit_q):
                tasks.append((shard, hit_q, hit_slot))
        shard_queries = sum(len(hit_q) for _, hit_q, _ in tasks)

        # Early termination needs the adaptive probe loop in-process; only
        # plain deep searches fan out to the worker-process pool.
        shard_pool = (
            self._ensure_shard_pool()
            if self.workers_mode == "process" and deep_patience is None and tasks
            else None
        )

        def deep_search_once(shard, hit_q):
            # The sealed-half kernel for this worker mode; ``None`` means the
            # shard's own in-process scan. Either way it returns global ids,
            # so a live shard can merge its delta/tombstone state parent-side
            # (IndexShard.search's ``sealed=`` hook) and thread and process
            # modes stay bit-identical after mutation.
            sealed = None
            if shard_pool is not None:
                sid = int(shard.shard_id)
                sealed = lambda qq, kk, npb: shard_pool.search(sid, qq, kk, nprobe=npb)
            elif deep_patience is not None:
                from ..ann.early_termination import search_with_early_termination

                def sealed(qq, kk, npb):
                    result = search_with_early_termination(
                        shard.index, qq, kk, max_nprobe=npb, patience=deep_patience
                    )
                    ids = np.full_like(result.ids, -1)
                    valid = result.ids >= 0
                    ids[valid] = shard.global_ids[result.ids[valid]]
                    return result.distances, ids

            if sealed is None:
                return shard.search(q[hit_q], k, nprobe=nprobe)
            if getattr(shard, "has_mutations", False):
                return shard.search(q[hit_q], k, nprobe=nprobe, sealed=sealed)
            return sealed(q[hit_q], k, nprobe)

        policy = self.policy
        if deadline_at is not None:
            # Deadline propagation: the per-attempt deep-search deadline is
            # whatever is left of the request budget after routing. An
            # exhausted budget sheds here, before any deep search launches.
            remaining = deadline_at - clock()
            if remaining <= 0:
                registry.counter(
                    "retrieval_deadline_exceeded_total",
                    "searches refused or cut short by an exhausted request budget",
                ).inc(stage="route")
                raise DeadlineExceededError(remaining, stage="route")
            root.set(budget_s=round(remaining, 6))
            if policy is None:
                policy = RetrievalPolicy(deadline_s=remaining)
            elif policy.deadline_s is None or policy.deadline_s > remaining:
                policy = replace(policy, deadline_s=remaining)
        attempt_pool: ThreadPoolExecutor | None = None
        if policy is not None and policy.needs_executor and tasks:
            # Attempts need own threads so deadlines can abandon stragglers;
            # 2x head-room covers one hedge per in-flight shard.
            attempt_pool = ThreadPoolExecutor(
                max_workers=max(2, 2 * len(tasks)),
                thread_name_prefix="shard-attempt",
            )

        phase_start = clock()
        with tracer.span(
            "deep_search", parent=root, shards=len(tasks), nprobe=nprobe
        ) as deep_span:

            def run_task(task):
                shard, hit_q, hit_slot = task
                sid = int(shard.shard_id)
                with tracer.span(
                    "shard_search",
                    parent=deep_span,
                    worker=f"shard{sid}",
                    shard=sid,
                    queries=len(hit_q),
                ) as shard_span:
                    if policy is None:
                        t0 = clock()
                        try:
                            dists, ids = deep_search_once(shard, hit_q)
                        except ShardError:
                            raise  # already carries the shard id
                        except Exception as exc:
                            raise ShardSearchError(sid, len(hit_q), exc) from exc
                        elapsed = clock() - t0
                        stats = ShardCallStats(
                            shard_id=sid,
                            queries=len(hit_q),
                            attempts=1,
                            latency_s=elapsed,
                            wall_s=elapsed,
                        )
                        shard_span.set(attempts=1, outcome="ok")
                        return hit_q, hit_slot, dists, ids, stats
                    if attempt_pool is None:
                        attempt = lambda: deep_search_once(shard, hit_q)
                    else:
                        # Pool attempts may outlive their deadline (abandoned
                        # hedges/stragglers); suppress their nested spans so
                        # no orphan escapes into the tree after it closes.
                        def attempt():
                            with tracer.suppressed():
                                return deep_search_once(shard, hit_q)

                    value, stats = self._run_with_policy(
                        sid, len(hit_q), attempt, policy, attempt_pool, tracer
                    )
                    shard_span.set(
                        attempts=stats.attempts,
                        outcome=stats.outcome,
                        hedged=stats.hedged,
                    )
                    if self.health is not None:
                        if stats.ok:
                            self.health.record_success(sid)
                        else:
                            self.health.record_failure(sid)
                    if value is None:
                        return hit_q, hit_slot, None, None, stats
                    dists, ids = value
                    return hit_q, hit_slot, dists, ids, stats

            try:
                use_threads = (
                    (self.max_workers is not None) if parallel is None else bool(parallel)
                )
                # Process mode always fans out from threads: submissions to
                # the worker pool are thread-safe and each blocks until its
                # shard's result ships back, so threads overlap the shards.
                use_threads = use_threads or shard_pool is not None
                if use_threads and len(tasks) > 1:
                    workers = min(self.max_workers or len(tasks), len(tasks))
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        results = list(pool.map(run_task, tasks))
                else:
                    results = [run_task(task) for task in tasks]
            finally:
                if attempt_pool is not None:
                    # Abandoned hedges/stragglers finish on their own; don't wait.
                    attempt_pool.shutdown(wait=False)
        latency.observe(clock() - phase_start, phase="deep")

        phase_start = clock()
        with tracer.span("merge", parent=root, k=k):
            kcols = np.arange(k)
            all_stats = []
            deep_failed = []
            for hit_q, hit_slot, dists, ids, stats in results:
                all_stats.append(stats)
                if dists is None:
                    deep_failed.append(stats.shard_id)
                    continue
                cols = hit_slot[:, np.newaxis] * k + kcols[np.newaxis, :]
                cand_d[hit_q[:, np.newaxis], cols] = dists
                cand_i[hit_q[:, np.newaxis], cols] = ids

            failed = sorted(
                set(deep_failed) | set(routing.failed_clusters) | breaker_open
            )

            # Merge: global top-k by distance (the rerank step; for normalised
            # embeddings this is the paper's inner-product rerank).
            order = np.argsort(cand_d, axis=1)[:, :k]
            rows = np.arange(nq)[:, np.newaxis]
        latency.observe(clock() - phase_start, phase="merge")

        registry.counter(
            "retrieval_shard_queries_total",
            "deep-search (query, shard) pairs issued",
        ).inc(shard_queries)
        if failed:
            registry.counter(
                "retrieval_degraded_batches_total",
                "batches merged without at least one shard's candidates",
            ).inc()
            root.set(failed_shards=list(failed))
        return SearchResult(
            distances=cand_d[rows, order],
            ids=cand_i[rows, order],
            routing=routing,
            shard_queries=shard_queries,
            failed_shards=tuple(failed),
            shard_stats=tuple(all_stats),
            trace=root if tracer.enabled else None,
        )


class HermesSearcher(HierarchicalSearcher):
    """The paper's configuration: document-sampling router over all shards."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
        policy: RetrievalPolicy | None = None,
        health: ShardHealth | None = None,
        **kwargs,
    ) -> None:
        cfg = config or datastore.config
        super().__init__(
            datastore,
            router=SampledRouter(
                sample_nprobe=cfg.sample_nprobe, sample_k=cfg.sample_k
            ),
            config=cfg,
            max_workers=max_workers,
            policy=policy,
            health=health,
            **kwargs,
        )


class ExhaustiveSplitSearcher(HierarchicalSearcher):
    """Naive distributed baseline: deep-search every shard, aggregate all."""

    def __init__(
        self,
        datastore: ClusteredDatastore,
        *,
        config: HermesConfig | None = None,
        max_workers: int | None = None,
        policy: RetrievalPolicy | None = None,
        health: ShardHealth | None = None,
        **kwargs,
    ) -> None:
        super().__init__(
            datastore,
            router=AllRouter(),
            config=config,
            max_workers=max_workers,
            policy=policy,
            health=health,
            **kwargs,
        )

    def search(self, queries: np.ndarray, *, k: int | None = None, **kwargs) -> SearchResult:
        kwargs.setdefault("clusters_to_search", self.datastore.n_clusters)
        return super().search(queries, k=k, **kwargs)
