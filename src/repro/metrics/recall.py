"""Recall@k against brute-force ground truth (the Table 1 metric)."""

from __future__ import annotations

import numpy as np


def recall_at_k(retrieved_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """Fraction of true top-k ids present anywhere in the retrieved top-k.

    Both arguments are ``(nq, k)`` id matrices; ``-1`` entries in the
    retrieved matrix (padding for short result lists) never match.
    """
    retrieved = np.atleast_2d(np.asarray(retrieved_ids))
    truth = np.atleast_2d(np.asarray(truth_ids))
    if retrieved.shape[0] != truth.shape[0]:
        raise ValueError(
            f"batch sizes differ: retrieved {retrieved.shape[0]} vs truth {truth.shape[0]}"
        )
    hits = 0
    total = 0
    for r_row, t_row in zip(retrieved, truth):
        valid = t_row[t_row >= 0]
        found = set(int(x) for x in r_row if x >= 0)
        hits += sum(1 for doc in valid if int(doc) in found)
        total += len(valid)
    if total == 0:
        raise ValueError("ground truth contains no valid ids")
    return hits / total


def recall_curve(
    retrieved_ids: np.ndarray, truth_ids: np.ndarray, ks: tuple[int, ...]
) -> dict[int, float]:
    """Recall@k for several cutoffs at once (truncating both rankings)."""
    out = {}
    for k in ks:
        if k <= 0:
            raise ValueError(f"cutoffs must be positive, got {k}")
        out[k] = recall_at_k(
            np.atleast_2d(retrieved_ids)[:, :k], np.atleast_2d(truth_ids)[:, :k]
        )
    return out
