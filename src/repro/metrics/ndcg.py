"""Normalized Discounted Cumulative Gain (NDCG) against brute-force truth.

The paper's retrieval-quality metric (§5): ground truth is the ranked result
of an exhaustive Flat search; a candidate system's ranked ids are scored by
graded relevance with log2 position discounting, normalised by the ideal
ordering. A system that returns exactly the brute-force top-k in order scores
1.0; missing or misordered documents lower the score.

Relevance grading follows the standard convention for ANN evaluation: the
ground-truth rank-``r`` document (0-indexed) has relevance ``k - r`` and
anything outside the true top-k has relevance 0.
"""

from __future__ import annotations

import numpy as np


def dcg(relevances: np.ndarray) -> float:
    """Discounted cumulative gain of a relevance sequence (best first)."""
    rel = np.asarray(relevances, dtype=np.float64)
    if rel.ndim != 1:
        raise ValueError(f"relevances must be 1-D, got shape {rel.shape}")
    discounts = 1.0 / np.log2(np.arange(2, len(rel) + 2))
    return float((rel * discounts).sum())


def ndcg_single(retrieved_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """NDCG of one ranked retrieval against one ranked ground truth.

    Both inputs are id sequences ordered best-first; ``-1`` padding in the
    retrieved list is treated as a miss.
    """
    retrieved = np.asarray(retrieved_ids).ravel()
    truth = np.asarray(truth_ids).ravel()
    k = len(truth)
    if k == 0:
        raise ValueError("ground truth must be non-empty")
    relevance_of = {int(doc): k - rank for rank, doc in enumerate(truth)}
    gains = np.array(
        [relevance_of.get(int(doc), 0) if doc >= 0 else 0 for doc in retrieved],
        dtype=np.float64,
    )
    ideal = dcg(np.arange(k, 0, -1, dtype=np.float64))
    if ideal <= 0:
        return 0.0
    return dcg(gains) / ideal


def ndcg(retrieved_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """Mean NDCG over a batch: both args are ``(nq, k)`` ranked id matrices."""
    retrieved = np.atleast_2d(np.asarray(retrieved_ids))
    truth = np.atleast_2d(np.asarray(truth_ids))
    if len(retrieved) != len(truth):
        raise ValueError(
            f"batch sizes differ: retrieved {len(retrieved)} vs truth {len(truth)}"
        )
    scores = [ndcg_single(r, t) for r, t in zip(retrieved, truth)]
    return float(np.mean(scores))
