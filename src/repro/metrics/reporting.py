"""Plain-text tables and series for experiment output.

Every experiment module renders its result through these helpers so the
benchmark harness prints rows/series in the same shape as the paper's tables
and figures (EXPERIMENTS.md records the side-by-side values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One named (x, y) series of a figure."""

    name: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")


@dataclass
class FigureResult:
    """All the series of one reproduced figure, with provenance."""

    figure_id: str
    description: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(Series(name=name, x=list(x), y=list(y)))

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.figure_id}")

    def render(self) -> str:
        """Render the figure's data as aligned text blocks."""
        lines = [f"== {self.figure_id}: {self.description} =="]
        for s in self.series:
            lines.append(f"-- {s.name}")
            lines.append(
                format_table(["x", "y"], list(zip(s.x, s.y)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def latency_breakdown(
    roots,
    *,
    title: str | None = "latency breakdown",
    float_fmt: str = "{:.4g}",
) -> str:
    """Aggregate a span tree (or forest) into a per-stage latency table.

    Accepts anything shaped like :class:`repro.obs.trace.Span` — duck-typed
    on ``walk()``/``name``/``duration_s`` so this module needs no dependency
    on the tracer. Spans are grouped by name; the share column is relative to
    the summed root durations, so nested stages can exceed 100% only when a
    name repeats along one path (e.g. per-stride phases).
    """
    if hasattr(roots, "walk"):
        roots = [roots]
    else:
        roots = list(roots)
    if not roots:
        return "(no finished spans)"
    root_total = sum(r.duration_s for r in roots)
    order: list[str] = []
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for root in roots:
        for span in root.walk():
            if span.name not in totals:
                order.append(span.name)
                totals[span.name] = 0.0
                counts[span.name] = 0
            totals[span.name] += span.duration_s
            counts[span.name] += 1
    rows = []
    for name in sorted(order, key=lambda n: -totals[n]):
        total = totals[name]
        count = counts[name]
        share = (total / root_total * 100.0) if root_total > 0 else 0.0
        rows.append((name, count, total, total / count, f"{share:.1f}%"))
    return format_table(
        ["stage", "spans", "total (s)", "mean (s)", "share"],
        rows,
        title=title,
        float_fmt=float_fmt,
    )


def speedup(baseline: float, improved: float) -> float:
    """Ratio ``baseline / improved`` (>1 means *improved* is better/lower)."""
    if improved <= 0:
        raise ValueError(f"improved value must be positive, got {improved}")
    return baseline / improved


def normalize_to_baseline(values: Sequence[float], baseline: float) -> list[float]:
    """Scale a series so the baseline maps to 1.0 (paper's normalised plots)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return [v / baseline for v in values]
