"""Evaluation metrics: NDCG, recall, and report formatting."""

from .ndcg import dcg, ndcg, ndcg_single
from .recall import recall_at_k, recall_curve
from .reporting import (
    FigureResult,
    Series,
    format_table,
    normalize_to_baseline,
    speedup,
)

__all__ = [
    "dcg",
    "ndcg",
    "ndcg_single",
    "recall_at_k",
    "recall_curve",
    "FigureResult",
    "Series",
    "format_table",
    "normalize_to_baseline",
    "speedup",
]
