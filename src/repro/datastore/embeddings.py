"""Synthetic topic-structured embedding generation.

The Hermes accuracy results depend on one property of real web corpora: the
embedding space has *topical cluster structure* that K-means can discover, so
that routing a query to a few clusters retrieves nearly everything an
exhaustive search would. This module generates corpora with that property and
with controllable knobs:

- ``n_topics``: how many latent topics exist (Hermes typically splits into 10
  clusters, so corpora default to 10+ topics);
- ``topic_spread``: intra-topic noise vs. inter-topic distance — sweeping it
  moves the corpus from perfectly clusterable to structureless;
- ``topic_weights``: relative topic sizes, which produce the cluster-size
  imbalance of the paper's Fig. 13 (their measured largest/smallest ≈ 2x).

Embeddings are L2-normalised, matching the BGE-style inner-product retrieval
setup of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ann.distances import normalize

#: Embedding dimensionality used across the reproduction. The paper's
#: BGE-Large vectors are 768-/1024-dim; we default smaller so accuracy
#: experiments run quickly, and the dimension is a free parameter everywhere.
DEFAULT_DIM = 64


def zipf_weights(n: int, *, exponent: float = 0.3) -> np.ndarray:
    """Zipf-like normalized weights: ``w_i ∝ (i+1)^-exponent``.

    With the default exponent the largest/smallest topic ratio for ``n=10``
    is ≈ 2x, matching the cluster-size imbalance the paper measures after
    its K-means seed sweep (§4.1, Fig. 13).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


@dataclass
class TopicModel:
    """Latent topic geometry shared by documents and queries.

    Attributes
    ----------
    centers:
        ``(n_topics, dim)`` unit-norm topic centroids.
    weights:
        Relative topic probabilities (sum to 1).
    spread:
        Standard deviation of isotropic intra-topic noise, relative to the
        unit-norm centers.
    """

    centers: np.ndarray
    weights: np.ndarray
    spread: float
    rng_seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=np.float32)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if len(self.centers) != len(self.weights):
            raise ValueError("centers and weights must have matching length")
        if not np.isclose(self.weights.sum(), 1.0):
            raise ValueError("weights must sum to 1")
        if self.spread < 0:
            raise ValueError("spread must be non-negative")
        self._rng = np.random.default_rng(self.rng_seed)

    @property
    def n_topics(self) -> int:
        return len(self.centers)

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    @classmethod
    def create(
        cls,
        n_topics: int = 10,
        dim: int = DEFAULT_DIM,
        *,
        spread: float = 0.35,
        weight_exponent: float = 0.3,
        seed: int = 0,
    ) -> "TopicModel":
        """Sample well-separated unit-norm topic centers.

        Centers are drawn isotropically then normalised; in high dimension
        random unit vectors are nearly orthogonal, so inter-topic distance is
        ≈ sqrt(2) while intra-topic noise is ``spread``.
        """
        if n_topics <= 0:
            raise ValueError(f"n_topics must be positive, got {n_topics}")
        rng = np.random.default_rng(seed)
        centers = normalize(rng.normal(size=(n_topics, dim)))
        weights = zipf_weights(n_topics, exponent=weight_exponent)
        return cls(centers=centers, weights=weights, spread=spread, rng_seed=seed + 1)

    # -- sampling ----------------------------------------------------------
    def sample_documents(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw *n* document embeddings; returns ``(embeddings, topic_ids)``."""
        topics = self._rng.choice(self.n_topics, size=n, p=self.weights)
        noise = self._rng.normal(scale=self.spread, size=(n, self.dim))
        emb = normalize(self.centers[topics] + noise.astype(np.float32))
        return emb, topics.astype(np.int64)

    def sample_queries(
        self, n: int, *, query_spread: float | None = None, topic_weights: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw *n* query embeddings near topic modes.

        Queries default to the document topic distribution; workloads with a
        different popularity skew (e.g. Natural-Questions-style hot topics,
        Fig. 13) pass their own ``topic_weights``.
        """
        weights = self.weights if topic_weights is None else np.asarray(topic_weights)
        if not np.isclose(weights.sum(), 1.0):
            raise ValueError("topic_weights must sum to 1")
        spread = self.spread if query_spread is None else query_spread
        topics = self._rng.choice(self.n_topics, size=n, p=weights)
        noise = self._rng.normal(scale=spread, size=(n, self.dim))
        emb = normalize(self.centers[topics] + noise.astype(np.float32))
        return emb, topics.astype(np.int64)


@dataclass(frozen=True)
class SyntheticCorpus:
    """A generated document corpus: embeddings plus latent topic labels."""

    embeddings: np.ndarray
    topics: np.ndarray
    topic_model: TopicModel

    def __len__(self) -> int:
        return len(self.embeddings)

    @property
    def dim(self) -> int:
        return self.embeddings.shape[1]


def make_corpus(
    n_docs: int = 20_000,
    *,
    n_topics: int = 10,
    dim: int = DEFAULT_DIM,
    spread: float = 0.35,
    weight_exponent: float = 0.3,
    seed: int = 0,
) -> SyntheticCorpus:
    """One-call corpus factory used by tests, examples, and experiments."""
    model = TopicModel.create(
        n_topics=n_topics, dim=dim, spread=spread, weight_exponent=weight_exponent, seed=seed
    )
    embeddings, topics = model.sample_documents(n_docs)
    return SyntheticCorpus(embeddings=embeddings, topics=topics, topic_model=model)
