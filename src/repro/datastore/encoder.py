"""Deterministic text encoder standing in for BGE-Large.

The paper encodes queries and document chunks with the BGE-Large embedding
model. Offline we replace it with a *hash-projection bag-of-tokens* encoder:
every token id maps to a fixed pseudo-random unit vector (seeded by the token
id, so the mapping is global and deterministic), and a text's embedding is
the L2-normalised mean of its token vectors.

Because :class:`repro.datastore.corpus.CorpusGenerator` gives documents
topic-specific token pools, documents about the same topic share many token
vectors and therefore land close together — topical cluster structure emerges
from the encode path itself rather than being injected directly, which is the
property Hermes's clustering exploits.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..ann.distances import normalize
from .corpus import Chunk
from .embeddings import DEFAULT_DIM

#: Unknown (non-``tok<i>``) words hash into token ids at or above this
#: offset, far outside any corpus vocabulary's ``tok<i>`` id range, so a
#: free-form word can never collide with (or shadow) a real vocabulary token.
OOV_TOKEN_OFFSET = 1 << 61


def _stable_word_id(word: str) -> int:
    """Process-stable token id for an out-of-vocabulary word.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
    would make free-form query embeddings differ across restarts — breaking
    exact-cache digest replay and thread/process parity. blake2b is keyed by
    nothing, so the mapping is a pure function of the word.
    """
    digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
    return OOV_TOKEN_OFFSET | int.from_bytes(digest, "big") % OOV_TOKEN_OFFSET


class SyntheticEncoder:
    """Hash-projection bag-of-tokens encoder.

    Parameters
    ----------
    dim:
        Output embedding dimensionality.
    seed:
        Global seed mixed into every token hash; two encoders with the same
        ``(dim, seed)`` are bit-identical functions.
    semantic_vocab / semantic_weight:
        Optional distributional-similarity structure: tokens belonging to the
        same topic pool of the given
        :class:`~repro.datastore.corpus.TokenVocabulary` share a topic
        direction blended into their hash vector with weight
        ``semantic_weight``. This is what lets dense retrieval match
        *synonymous* (same-topic, non-overlapping) text the way trained
        embeddings do — used by the sparse-vs-dense background experiments.
        Common and out-of-vocabulary tokens stay pure hash noise.
    """

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        *,
        seed: int = 0,
        semantic_vocab=None,
        semantic_weight: float = 0.0,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 0.0 <= semantic_weight < 1.0:
            raise ValueError("semantic_weight must be in [0, 1)")
        if semantic_weight > 0 and semantic_vocab is None:
            raise ValueError("semantic_weight requires a semantic_vocab")
        self.dim = dim
        self.seed = seed
        self.semantic_vocab = semantic_vocab
        self.semantic_weight = semantic_weight
        self._cache: dict[int, np.ndarray] = {}
        self._topic_cache: dict[int, np.ndarray] = {}

    # -- token-level --------------------------------------------------------
    def _topic_direction(self, topic: int) -> np.ndarray:
        vec = self._topic_cache.get(topic)
        if vec is None:
            rng = np.random.default_rng((self.seed << 16) ^ 0xA11CE ^ topic)
            vec = normalize(rng.normal(size=self.dim))[0].astype(np.float32)
            self._topic_cache[topic] = vec
        return vec

    def token_vector(self, token: int) -> np.ndarray:
        """Fixed unit vector for a token id (memoised)."""
        vec = self._cache.get(token)
        if vec is None:
            rng = np.random.default_rng((self.seed << 32) ^ (int(token) + 1))
            vec = normalize(rng.normal(size=self.dim))[0].astype(np.float32)
            if self.semantic_weight > 0 and token < self.semantic_vocab.size:
                topic = self.semantic_vocab.topic_of_token(int(token))
                if topic >= 0:
                    blended = (
                        self.semantic_weight * self._topic_direction(topic)
                        + (1.0 - self.semantic_weight) * vec
                    )
                    vec = normalize(blended)[0].astype(np.float32)
            self._cache[token] = vec
        return vec

    def encode_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Embed one token sequence as the normalised mean token vector."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if len(tokens) == 0:
            raise ValueError("cannot encode an empty token sequence")
        acc = np.zeros(self.dim, dtype=np.float32)
        for token in tokens:
            acc += self.token_vector(int(token))
        return normalize(acc / len(tokens))[0]

    # -- text-level -----------------------------------------------------------
    @staticmethod
    def tokenize(text: str) -> np.ndarray:
        """Inverse of :meth:`Chunk.text`: parse ``tok<i>`` words to token ids.

        Unknown words hash into a *process-stable* token id (blake2b, offset
        above :data:`OOV_TOKEN_OFFSET` to stay clear of the ``tok<i>`` id
        namespace) so free-form query text is also encodable and encodes
        bit-identically across processes and hash seeds.
        """
        ids = []
        for word in text.split():
            if word.startswith("tok") and word[3:].isdigit():
                ids.append(int(word[3:]))
            else:
                ids.append(_stable_word_id(word))
        if not ids:
            raise ValueError("cannot tokenize empty text")
        return np.asarray(ids, dtype=np.int64)

    def encode_text(self, text: str) -> np.ndarray:
        """Embed free-form text."""
        return self.encode_tokens(self.tokenize(text))

    def encode_chunks(self, chunks: list[Chunk]) -> np.ndarray:
        """Embed a chunk list into an ``(n, dim)`` matrix."""
        if not chunks:
            return np.empty((0, self.dim), dtype=np.float32)
        return np.stack([self.encode_tokens(c.tokens) for c in chunks])

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a batch of texts into an ``(n, dim)`` matrix."""
        if not texts:
            return np.empty((0, self.dim), dtype=np.float32)
        return np.stack([self.encode_text(t) for t in texts])
