"""Query workload generators modelled on the paper's evaluation sets.

The paper evaluates retrieval quality and cluster-access behaviour with two
public QA datasets:

- **TriviaQA** (accuracy + deep-search traces): factoid questions, each
  strongly about one topic — queries concentrate near topic modes.
- **Natural Questions** (Fig. 13 access-frequency analysis): real-user
  queries with a skewed topic popularity, producing >2x variation in
  cluster access frequency.

Both are replaced by parameterised synthetic generators over the same
:class:`~repro.datastore.embeddings.TopicModel` as the corpus, so queries and
documents share latent geometry exactly as encoded QA sets share it with
Common Crawl.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .embeddings import TopicModel, zipf_weights


@dataclass(frozen=True)
class QuerySet:
    """A generated query workload."""

    name: str
    embeddings: np.ndarray
    topics: np.ndarray

    def __len__(self) -> int:
        return len(self.embeddings)

    def batches(self, batch_size: int) -> list[np.ndarray]:
        """Split embeddings into contiguous batches (last may be short)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return [
            self.embeddings[i : i + batch_size]
            for i in range(0, len(self.embeddings), batch_size)
        ]


def trivia_queries(
    model: TopicModel,
    n_queries: int = 512,
    *,
    query_spread: float = 0.25,
    seed: int = 100,
) -> QuerySet:
    """TriviaQA-like workload: topically focused queries, uniform popularity."""
    local = TopicModel(
        centers=model.centers,
        weights=model.weights,
        spread=model.spread,
        rng_seed=seed,
    )
    uniform = np.full(model.n_topics, 1.0 / model.n_topics)
    emb, topics = local.sample_queries(
        n_queries, query_spread=query_spread, topic_weights=uniform
    )
    return QuerySet(name="triviaqa-like", embeddings=emb, topics=topics)


def natural_questions_queries(
    model: TopicModel,
    n_queries: int = 512,
    *,
    query_spread: float = 0.3,
    popularity_exponent: float = 0.6,
    seed: int = 200,
) -> QuerySet:
    """NQ-like workload: Zipf-skewed topic popularity (hot/cold clusters).

    The default exponent makes the hottest topic >2x more frequent than the
    coldest, reproducing the access-frequency imbalance of Fig. 13 that
    motivates Hermes's DVFS load balancing.
    """
    local = TopicModel(
        centers=model.centers,
        weights=model.weights,
        spread=model.spread,
        rng_seed=seed,
    )
    # Shuffle which topics are popular so popularity is independent of size.
    popularity = zipf_weights(model.n_topics, exponent=popularity_exponent)
    perm = np.random.default_rng(seed + 1).permutation(model.n_topics)
    popularity = popularity[perm]
    emb, topics = local.sample_queries(
        n_queries, query_spread=query_spread, topic_weights=popularity
    )
    return QuerySet(name="nq-like", embeddings=emb, topics=topics)


def uniform_random_queries(
    dim: int, n_queries: int = 512, *, seed: int = 300
) -> QuerySet:
    """Structure-free control workload (no topic alignment).

    Useful for adversarial tests: hierarchical routing should degrade
    gracefully, not catastrophically, when queries carry no topic signal.
    """
    rng = np.random.default_rng(seed)
    emb = rng.normal(size=(n_queries, dim)).astype(np.float32)
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)
    return QuerySet(
        name="uniform-random",
        embeddings=emb,
        topics=np.full(n_queries, -1, dtype=np.int64),
    )
