"""Chunk datastore: the id → document-chunk lookup of the online pipeline.

In the paper's online flow (its Fig. 3) the vector search returns document
*ids*; a separate chunk datastore maps ids to text, which is then prepended
to the LLM prompt. This module is that lookup plus the augmentation step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .corpus import Chunk


class ChunkStore:
    """Immutable id-addressed store of document chunks."""

    def __init__(self, chunks: list[Chunk]) -> None:
        self._chunks = list(chunks)
        for expected, chunk in enumerate(self._chunks):
            if chunk.chunk_id != expected:
                raise ValueError(
                    f"chunk ids must be contiguous from 0; got {chunk.chunk_id} at {expected}"
                )

    def __len__(self) -> int:
        return len(self._chunks)

    def get(self, chunk_id: int) -> Chunk:
        """Fetch one chunk; raises ``KeyError`` for unknown or padded (-1) ids."""
        if not 0 <= chunk_id < len(self._chunks):
            raise KeyError(f"unknown chunk id {chunk_id}")
        return self._chunks[chunk_id]

    def get_many(self, chunk_ids: np.ndarray) -> list[Chunk]:
        """Fetch several chunks, silently skipping ``-1`` padding ids."""
        return [self.get(int(cid)) for cid in np.asarray(chunk_ids).ravel() if cid >= 0]

    def texts(self, chunk_ids: np.ndarray) -> list[str]:
        """Render several chunks to text."""
        return [chunk.text() for chunk in self.get_many(chunk_ids)]


@dataclass(frozen=True)
class AugmentedQuery:
    """A query with retrieved context prepended, ready for LLM inference."""

    query_text: str
    context_texts: tuple[str, ...]

    def prompt(self) -> str:
        """Render the enhanced prompt (contexts first, then the question)."""
        parts = list(self.context_texts) + [self.query_text]
        return "\n".join(parts)


def augment_query(
    query_text: str, store: ChunkStore, chunk_ids: np.ndarray, *, top_n: int = 1
) -> AugmentedQuery:
    """Prepend the *top_n* retrieved chunks to the query (paper §5 uses 1).

    ``chunk_ids`` must already be relevance-ordered (the pipeline reranks by
    inner product before augmentation).
    """
    if top_n <= 0:
        raise ValueError(f"top_n must be positive, got {top_n}")
    texts = store.texts(np.asarray(chunk_ids).ravel()[:top_n])
    return AugmentedQuery(query_text=query_text, context_texts=tuple(texts))
