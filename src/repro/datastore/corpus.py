"""Synthetic token corpus and document chunking.

The paper's offline pipeline (its Fig. 2) partitions raw documents into
fixed-length token *chunks* before encoding; chunk token counts are also the
unit of the "datastore size in tokens" axis used throughout the evaluation
(10B, 100B, 1T tokens). This module provides:

- a deterministic token-level document generator whose vocabulary is split
  into per-topic token pools (so the text itself carries topic structure the
  encoder can recover);
- the chunking transform from documents to fixed-size chunks; and
- the token-count accounting that converts between "number of chunks" and
  "datastore tokens" for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper-scale default: chunks of 64 tokens (the paper leaves this a knob;
#: MassiveDS-style stores use 64–256-token passages).
DEFAULT_CHUNK_TOKENS = 64


@dataclass(frozen=True)
class Document:
    """A raw synthetic document: token ids plus its latent topic."""

    doc_id: int
    tokens: np.ndarray
    topic: int

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class Chunk:
    """A fixed-length slice of a document — the retrieval unit."""

    chunk_id: int
    doc_id: int
    topic: int
    tokens: np.ndarray

    def __len__(self) -> int:
        return len(self.tokens)

    def text(self) -> str:
        """Render the chunk as whitespace-joined pseudo-words.

        Token ``t`` renders as ``tok<t>``; deterministic, so text round-trips
        through the encoder reproducibly.
        """
        return " ".join(f"tok{t}" for t in self.tokens)


class TokenVocabulary:
    """Vocabulary whose token ids are partitioned into topic pools.

    Tokens ``[0, common_size)`` are topic-neutral; the rest is split evenly
    into ``n_topics`` pools of topic-characteristic tokens. A document about
    topic *t* mixes its pool with common tokens, which is what lets a
    bag-of-tokens encoder recover topical cluster structure end to end.
    """

    def __init__(self, n_topics: int, *, pool_size: int = 500, common_size: int = 1000) -> None:
        if n_topics <= 0:
            raise ValueError(f"n_topics must be positive, got {n_topics}")
        if pool_size <= 0 or common_size < 0:
            raise ValueError("pool_size must be positive and common_size non-negative")
        self.n_topics = n_topics
        self.pool_size = pool_size
        self.common_size = common_size

    @property
    def size(self) -> int:
        return self.common_size + self.n_topics * self.pool_size

    def topic_pool(self, topic: int) -> np.ndarray:
        """Token ids characteristic of *topic*."""
        if not 0 <= topic < self.n_topics:
            raise ValueError(f"topic {topic} out of range [0, {self.n_topics})")
        start = self.common_size + topic * self.pool_size
        return np.arange(start, start + self.pool_size)

    def topic_of_token(self, token: int) -> int:
        """Latent topic of a token id, or ``-1`` for common tokens."""
        if token < self.common_size:
            return -1
        return (token - self.common_size) // self.pool_size


class CorpusGenerator:
    """Deterministic generator of topic-structured token documents."""

    def __init__(
        self,
        vocabulary: TokenVocabulary,
        *,
        topic_weights: np.ndarray | None = None,
        doc_tokens: int = 256,
        topical_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= topical_fraction <= 1.0:
            raise ValueError("topical_fraction must be in [0, 1]")
        self.vocabulary = vocabulary
        if topic_weights is None:
            topic_weights = np.full(vocabulary.n_topics, 1.0 / vocabulary.n_topics)
        self.topic_weights = np.asarray(topic_weights, dtype=np.float64)
        if not np.isclose(self.topic_weights.sum(), 1.0):
            raise ValueError("topic_weights must sum to 1")
        self.doc_tokens = doc_tokens
        self.topical_fraction = topical_fraction
        self._rng = np.random.default_rng(seed)

    def generate(self, n_docs: int) -> list[Document]:
        """Sample *n_docs* documents."""
        docs = []
        vocab = self.vocabulary
        for doc_id in range(n_docs):
            topic = int(self._rng.choice(vocab.n_topics, p=self.topic_weights))
            n_topical = int(round(self.doc_tokens * self.topical_fraction))
            topical = self._rng.choice(vocab.topic_pool(topic), size=n_topical)
            common = self._rng.integers(0, max(vocab.common_size, 1), size=self.doc_tokens - n_topical)
            tokens = np.concatenate([topical, common])
            self._rng.shuffle(tokens)
            docs.append(Document(doc_id=doc_id, tokens=tokens.astype(np.int64), topic=topic))
        return docs


def chunk_documents(
    documents: list[Document], *, chunk_tokens: int = DEFAULT_CHUNK_TOKENS
) -> list[Chunk]:
    """Split documents into fixed-length chunks (final partial chunk kept).

    Chunk ids are assigned contiguously in document order, matching how the
    paper's index construction maps retrieved ids back to text chunks.
    """
    if chunk_tokens <= 0:
        raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
    chunks: list[Chunk] = []
    next_id = 0
    for doc in documents:
        for start in range(0, len(doc.tokens), chunk_tokens):
            piece = doc.tokens[start : start + chunk_tokens]
            chunks.append(
                Chunk(chunk_id=next_id, doc_id=doc.doc_id, topic=doc.topic, tokens=piece)
            )
            next_id += 1
    return chunks


def datastore_tokens(chunks: list[Chunk]) -> int:
    """Total token count of a chunked datastore (the paper's size axis)."""
    return int(sum(len(c) for c in chunks))


def tokens_to_vectors(n_tokens: float, *, chunk_tokens: int = DEFAULT_CHUNK_TOKENS) -> float:
    """Convert a datastore size in tokens to its vector (chunk) count."""
    if chunk_tokens <= 0:
        raise ValueError(f"chunk_tokens must be positive, got {chunk_tokens}")
    return n_tokens / chunk_tokens
