"""Non-parametric datastore substrate: corpora, embeddings, encoder, queries.

Replaces the paper's SPHERE/Common-Crawl embeddings, BGE-Large encoder, and
TriviaQA / Natural Questions query sets with deterministic synthetic
equivalents that preserve the topical cluster structure Hermes exploits (see
DESIGN.md, "Substitutions").
"""

from .chunkstore import AugmentedQuery, ChunkStore, augment_query
from .corpus import (
    DEFAULT_CHUNK_TOKENS,
    Chunk,
    CorpusGenerator,
    Document,
    TokenVocabulary,
    chunk_documents,
    datastore_tokens,
    tokens_to_vectors,
)
from .embeddings import (
    DEFAULT_DIM,
    SyntheticCorpus,
    TopicModel,
    make_corpus,
    zipf_weights,
)
from .encoder import SyntheticEncoder
from .queries import (
    QuerySet,
    natural_questions_queries,
    trivia_queries,
    uniform_random_queries,
)

__all__ = [
    "AugmentedQuery",
    "ChunkStore",
    "augment_query",
    "DEFAULT_CHUNK_TOKENS",
    "Chunk",
    "CorpusGenerator",
    "Document",
    "TokenVocabulary",
    "chunk_documents",
    "datastore_tokens",
    "tokens_to_vectors",
    "DEFAULT_DIM",
    "SyntheticCorpus",
    "TopicModel",
    "make_corpus",
    "zipf_weights",
    "SyntheticEncoder",
    "QuerySet",
    "natural_questions_queries",
    "trivia_queries",
    "uniform_random_queries",
]
