"""Vector quantization codecs: scalar (SQ8/SQ4), product (PQ), and OPQ.

Table 1 of the paper compares IVF quantization schemes by recall and encoded
vector size; the production configuration throughout the paper is IVF with
8-bit scalar quantization (SQ8). Each codec here implements the
train / encode / decode triple used by :class:`repro.ann.ivf.IVFIndex` to
store compressed vectors in its inverted lists.

Code sizes follow the paper's Table 1 accounting for 768-dimensional BGE
embeddings: Flat = 3072 B (fp32), SQ8 = 768 B, SQ4 = 384 B, PQ with 256
subquantizers = 256 B, PQ/OPQ with 384 subquantizers = 384 B.
"""

from __future__ import annotations

import abc

import numpy as np

from .distances import as_matrix, validate_metric
from .kmeans import train_kmeans
from .parallel import run_tasks


class Quantizer(abc.ABC):
    """Lossy codec mapping float32 vectors to compact codes and back.

    Besides the ``train`` / ``encode`` / ``decode`` triple, codecs may expose
    **asymmetric distance computation** (ADC): distances are evaluated
    directly between a float query and stored codes, without materialising the
    decoded vectors.  ``adc_table`` precomputes per-query state (for PQ/OPQ a
    genuine ``(nq, m, ksub)`` lookup table; for scalar quantizers the
    closed-form affine equivalent of the per-dimension table) and
    ``adc_distances`` evaluates it against a block of codes.
    """

    #: short name used in reports (e.g. the rows of Table 1)
    name: str = "quantizer"

    #: how much cheaper one big ADC kernel is per element than many small
    #: per-cell kernels. GEMM-based codecs amortise well (one large matmul
    #: beats hundreds of small ones ~4x per element); gather-based codecs
    #: (PQ/OPQ lookup tables) cost the same per element either way. The IVF
    #: scan switches to its dense full-corpus strategy once
    #: ``advantage * probed_work >= batch * corpus``.
    adc_dense_advantage: float = 4.0

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.is_trained = False

    def train(self, vectors: np.ndarray) -> None:
        self._train(as_matrix(vectors))
        self.is_trained = True

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before encode()")
        return self._encode(as_matrix(vectors))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before decode()")
        return self._decode(np.asarray(codes))

    # -- asymmetric distance computation ----------------------------------
    def supports_adc(self, metric: str) -> bool:
        """Whether :meth:`adc_distances` is implemented for *metric*."""
        del metric
        return False

    def needs_code_sqnorms(self, metric: str) -> bool:
        """Whether ADC for *metric* wants precomputed ``|decode(code)|^2``.

        Callers that store codes long-term (e.g. the IVF index) can compute
        these once via :meth:`code_sqnorms` and pass slices back into
        :meth:`adc_distances`, amortising the reconstruction norm term.
        """
        del metric
        return False

    def adc_table(self, queries: np.ndarray, metric: str, *, ws=None):
        """Precompute per-query ADC state for a batch of float queries.

        The returned mapping may carry a ``"bias"`` vector: a per-query
        constant that does not affect per-query top-k ordering. Scan loops
        can request ``shifted=True`` distances (bias omitted) from
        :meth:`adc_distances` and add the bias back once after selection,
        keeping the per-cell inner loop minimal.

        ``ws`` is an optional :class:`repro.ann.workspace.Workspace`: bulky
        table state (the PQ ``(nq, m, ksub)`` lookup tables) is carved from
        the arena instead of freshly allocated, and stays valid until the
        next ``adc_table`` call against the same workspace.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support ADC")

    def adc_distances(
        self,
        table,
        codes: np.ndarray,
        *,
        rows: np.ndarray | None = None,
        code_sqnorms: np.ndarray | None = None,
        shifted: bool = False,
        ws=None,
    ) -> np.ndarray:
        """Distance matrix between table queries and *codes* (smaller=closer).

        ``rows`` restricts evaluation to a subset of the table's queries (the
        cell-major IVF scan evaluates each probed cell only for the queries
        that actually probe it). With ``shifted=True`` the per-query
        ``table["bias"]`` term is left out (and L2 results are not clamped at
        zero); callers must add it back after top-k selection.

        With ``ws`` the result (and intermediates) live in arena buffers: the
        returned array is only valid until the next ``adc_distances`` call on
        the same workspace — scan loops must scatter/copy it out before the
        next cell.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support ADC")

    def code_sqnorms(self, codes: np.ndarray) -> np.ndarray:
        """``|decode(code)|^2`` per code, chunked to bound peak memory."""
        codes = np.asarray(codes)
        out = np.empty(len(codes), dtype=np.float32)
        step = 16384
        for s in range(0, len(codes), step):
            dec = self.decode(codes[s : s + step])
            out[s : s + step] = np.einsum("ij,ij->i", dec, dec)
        return out

    @abc.abstractmethod
    def code_size(self) -> int:
        """Bytes per encoded vector."""

    @abc.abstractmethod
    def _train(self, vectors: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _encode(self, vectors: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def _decode(self, codes: np.ndarray) -> np.ndarray: ...


class IdentityQuantizer(Quantizer):
    """No-op codec storing raw float32 — the ``Flat`` row of Table 1."""

    name = "flat"

    def code_size(self) -> int:
        return self.dim * 4

    def _train(self, vectors: np.ndarray) -> None:
        del vectors

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return vectors.astype(np.float32, copy=True)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float32, copy=True)

    # Identity "ADC" degenerates to the plain kernel on the raw payload; it
    # exists so IVF's fast path is uniform across quantizers. Precomputed
    # code norms plus the shifted form still save the per-cell norm terms.
    def supports_adc(self, metric: str) -> bool:
        return metric in ("l2", "ip")

    def needs_code_sqnorms(self, metric: str) -> bool:
        return metric == "l2"

    def adc_table(self, queries: np.ndarray, metric: str, *, ws=None):
        del ws  # raw-payload tables carry only references; nothing bulky
        validate_metric(metric)
        q = as_matrix(queries)
        table = {"metric": metric, "q": q}
        if metric == "l2":
            table["bias"] = np.einsum("ij,ij->i", q, q).astype(np.float32)
        return table

    def adc_distances(self, table, codes, *, rows=None, code_sqnorms=None, shifted=False, ws=None):
        q = table["q"] if rows is None else table["q"][rows]
        codes = as_matrix(codes)
        out = None if ws is None else ws.take("adc_dists", (len(q), len(codes)))
        if table["metric"] == "ip":
            if out is not None:
                np.matmul(q, codes.T, out=out)
                return np.negative(out, out=out)
            return -(q @ codes.T)
        if code_sqnorms is None:
            code_sqnorms = np.einsum("ij,ij->i", codes, codes)
        if out is not None:
            np.matmul(q, codes.T, out=out)
            out *= -2.0
            out += code_sqnorms[np.newaxis, :]
            dists = out
        else:
            dists = code_sqnorms[np.newaxis, :] - 2.0 * (q @ codes.T)
        if not shifted:
            bias = table["bias"] if rows is None else table["bias"][rows]
            dists += bias[:, np.newaxis]
            np.maximum(dists, 0.0, out=dists)
        return dists


class ScalarQuantizer(Quantizer):
    """Uniform per-dimension scalar quantization to *bits* bits (SQ8 / SQ4).

    Training learns per-dimension ``(vmin, vmax)`` ranges; encoding maps each
    component to an integer level in ``[0, 2^bits - 1]``. 4-bit codes are
    packed two-per-byte, so code sizes match Table 1 (SQ8 = d bytes,
    SQ4 = d/2 bytes).
    """

    def __init__(self, dim: int, bits: int = 8) -> None:
        super().__init__(dim)
        if bits not in (4, 8):
            raise ValueError(f"bits must be 4 or 8, got {bits}")
        self.bits = bits
        self.name = f"sq{bits}"
        self._levels = (1 << bits) - 1
        self._vmin: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def code_size(self) -> int:
        if self.bits == 8:
            return self.dim
        return (self.dim + 1) // 2

    def _train(self, vectors: np.ndarray) -> None:
        self._vmin = vectors.min(axis=0)
        vmax = vectors.max(axis=0)
        span = np.maximum(vmax - self._vmin, 1e-12)
        self._scale = span / self._levels

    def _quantize_levels(self, vectors: np.ndarray) -> np.ndarray:
        levels = np.rint((vectors - self._vmin) / self._scale)
        return np.clip(levels, 0, self._levels).astype(np.uint8)

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        levels = self._quantize_levels(vectors)
        if self.bits == 8:
            return levels
        # Pack pairs of 4-bit levels into single bytes (low nibble first).
        if levels.shape[1] % 2:
            levels = np.concatenate(
                [levels, np.zeros((len(levels), 1), dtype=np.uint8)], axis=1
            )
        low = levels[:, 0::2]
        high = levels[:, 1::2]
        return (low | (high << 4)).astype(np.uint8)

    def _unpack_levels(self, codes: np.ndarray) -> np.ndarray:
        """Integer levels as float32 ``(n, dim)`` (unpacking nibbles for SQ4)."""
        if self.bits == 8:
            return codes.astype(np.float32)
        low = (codes & 0x0F).astype(np.float32)
        high = ((codes >> 4) & 0x0F).astype(np.float32)
        levels = np.empty((len(codes), low.shape[1] * 2), dtype=np.float32)
        levels[:, 0::2] = low
        levels[:, 1::2] = high
        return levels[:, : self.dim]

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return self._unpack_levels(codes) * self._scale + self._vmin

    # -- ADC ----------------------------------------------------------------
    # decode(code) = L * scale + vmin is affine in the integer levels L, so
    # the per-dimension lookup table T[d, v] collapses to a closed form:
    #   q . decode = (q * scale) . L + q . vmin
    # One GEMM against the raw levels replaces reconstruct-then-GEMM; for L2
    # the ``|decode|^2`` term is the caller-precomputed ``code_sqnorms``.
    def supports_adc(self, metric: str) -> bool:
        return metric in ("l2", "ip")

    def needs_code_sqnorms(self, metric: str) -> bool:
        return metric == "l2"

    def adc_table(self, queries: np.ndarray, metric: str, *, ws=None):
        del ws  # the affine table (w, bias) is batch-sized, not corpus-sized
        validate_metric(metric)
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before adc_table()")
        q = as_matrix(queries)
        w = (q * self._scale).astype(np.float32)
        b = (q @ self._vmin).astype(np.float32)
        if metric == "ip":
            # dist = -(q . dec) = -(w . L) - b
            return {"metric": metric, "w": w, "bias": -b}
        # dist = |q|^2 - 2 (w . L + b) + |dec|^2
        #      = (|dec|^2 - 2 w . L) + (|q|^2 - 2 b)
        qnorm = np.einsum("ij,ij->i", q, q).astype(np.float32)
        return {"metric": metric, "w": w, "bias": qnorm - 2.0 * b}

    def adc_distances(self, table, codes, *, rows=None, code_sqnorms=None, shifted=False, ws=None):
        levels = self._unpack_levels(np.asarray(codes))
        w = table["w"] if rows is None else table["w"][rows]
        sim = (
            w @ levels.T
            if ws is None
            else np.matmul(w, levels.T, out=ws.take("adc_dists", (len(w), len(levels))))
        )  # = (q * scale) . L
        if table["metric"] == "ip":
            dists = np.negative(sim, out=sim) if ws is not None else -sim
        else:
            if code_sqnorms is None:
                code_sqnorms = self.code_sqnorms(codes)
            if ws is not None:
                sim *= -2.0
                sim += code_sqnorms[np.newaxis, :]
                dists = sim
            else:
                dists = code_sqnorms[np.newaxis, :] - 2.0 * sim
        if not shifted:
            bias = table["bias"] if rows is None else table["bias"][rows]
            dists += bias[:, np.newaxis]
            if table["metric"] == "l2":
                np.maximum(dists, 0.0, out=dists)
        return dists


class ProductQuantizer(Quantizer):
    """Product quantization [Jegou et al. 2010].

    The vector is split into *m* subspaces, each quantized against its own
    codebook of ``2^nbits`` centroids; codes are ``m`` bytes (``nbits=8``).
    The paper's PQ256 / PQ384 rows correspond to ``m=256`` / ``m=384`` on
    768-dim vectors.
    """

    # Lookup-table ADC is a gather, not a GEMM: no batching advantage, so
    # the dense IVF scan only pays off at full probe coverage.
    adc_dense_advantage = 1.0

    def __init__(
        self,
        dim: int,
        m: int = 8,
        nbits: int = 8,
        *,
        train_seed: int = 0,
        train_sample: "int | None" = None,
        train_workers: "int | None" = 1,
        train_algorithm: str = "auto",
    ) -> None:
        super().__init__(dim)
        if m <= 0 or dim % m:
            raise ValueError(f"m={m} must evenly divide dim={dim}")
        if nbits != 8:
            raise ValueError("only nbits=8 (byte codes) is supported")
        if train_sample is not None and train_sample <= 0:
            raise ValueError(f"train_sample must be positive, got {train_sample}")
        self.m = m
        self.nbits = nbits
        self.ksub = 1 << nbits
        self.dsub = dim // m
        self.name = f"pq{m}"
        self.train_seed = train_seed
        #: cap on training rows; codebook k-means sees a deterministic random
        #: sample of this size instead of the full corpus (None = all rows)
        self.train_sample = train_sample
        #: threads for the per-subspace codebook fits (independent problems,
        #: so the result is bit-identical for any worker count)
        self.train_workers = train_workers
        #: k-means variant for the codebook fits (see ann.kmeans.ALGORITHMS)
        self.train_algorithm = train_algorithm
        self._codebooks: np.ndarray | None = None  # (m, ksub, dsub)

    def code_size(self) -> int:
        return self.m

    def _sample_rows(self, vectors: np.ndarray) -> np.ndarray:
        if self.train_sample is None or len(vectors) <= self.train_sample:
            return vectors
        rng = np.random.default_rng(self.train_seed)
        idx = rng.choice(len(vectors), size=self.train_sample, replace=False)
        return vectors[idx]

    def _train(self, vectors: np.ndarray) -> None:
        vectors = self._sample_rows(vectors)
        ksub = min(self.ksub, len(vectors))
        codebooks = np.zeros((self.m, self.ksub, self.dsub), dtype=np.float32)

        def fit_subspace(j: int) -> None:
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            result = train_kmeans(
                sub, ksub, seed=self.train_seed + j, max_iter=12,
                algorithm=self.train_algorithm,
            )
            codebooks[j, :ksub] = result.centroids
            if ksub < self.ksub:
                codebooks[j, ksub:] = result.centroids[0]

        # Each subspace writes a disjoint codebook slice, so the fits run
        # concurrently (the inner k-means is GEMM-bound and releases the GIL).
        run_tasks([lambda j=j: fit_subspace(j) for j in range(self.m)], self.train_workers)
        self._codebooks = codebooks

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            book = self._codebooks[j]
            # Assign each subvector to its nearest codeword.
            d = (
                np.einsum("ij,ij->i", sub, sub)[:, np.newaxis]
                - 2.0 * sub @ book.T
                + np.einsum("ij,ij->i", book, book)[np.newaxis, :]
            )
            codes[:, j] = d.argmin(axis=1)
        return codes

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self._codebooks[j][codes[:, j]]
        return out

    # -- ADC ----------------------------------------------------------------
    # The classic PQ trick [Jegou et al. 2010]: per query, precompute the
    # distance from each query subvector to every codeword — an
    # ``(nq, m, ksub)`` table — then the distance to a stored code is m table
    # lookups summed, never touching the reconstructed vector.
    def supports_adc(self, metric: str) -> bool:
        return metric in ("l2", "ip")

    def adc_table(self, queries: np.ndarray, metric: str, *, ws=None):
        validate_metric(metric)
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before adc_table()")
        q = as_matrix(queries)
        shape = (len(q), self.m, self.ksub)
        tables = np.empty(shape, dtype=np.float32) if ws is None else ws.take("pq_tables", shape)
        table = {"metric": metric, "tables": tables}
        for j in range(self.m):
            sub = q[:, j * self.dsub : (j + 1) * self.dsub]
            book = self._codebooks[j]
            if metric == "ip":
                tables[:, j, :] = -(sub @ book.T)
            else:
                # The per-subspace |q_sub|^2 terms are query constants: keep
                # them out of the lookup tables so each code lookup only sums
                # |book|^2 - 2 q_sub . book, and fold them into the bias.
                tables[:, j, :] = (
                    np.einsum("ij,ij->i", book, book)[np.newaxis, :]
                    - 2.0 * sub @ book.T
                )
        if metric == "l2":
            table["bias"] = np.einsum("ij,ij->i", q, q).astype(np.float32)
        return table

    def adc_distances(self, table, codes, *, rows=None, code_sqnorms=None, shifted=False, ws=None):
        del code_sqnorms
        tables = table["tables"]
        if rows is not None:
            if ws is not None:
                sub = ws.take("pq_row_tables", (len(rows),) + tables.shape[1:])
                np.take(tables, rows, axis=0, out=sub)
                tables = sub
            else:
                tables = tables[rows]
        codes = np.asarray(codes)
        shape = (len(tables), len(codes))
        if ws is None:
            acc = np.zeros(shape, dtype=np.float32)
            for j in range(self.m):
                acc += tables[:, j, codes[:, j]]
        else:
            # Fused gather + accumulate over arena tiles: each subquantizer's
            # lookup lands directly in a scratch tile (``np.take(..., out=)``)
            # and is summed in place — no per-subspace temporary allocations.
            acc = ws.take("pq_acc", shape)
            tile = ws.take("pq_tile", shape)
            np.take(tables[:, 0, :], codes[:, 0], axis=1, out=acc)
            for j in range(1, self.m):
                np.take(tables[:, j, :], codes[:, j], axis=1, out=tile)
                acc += tile
        if not shifted and table["metric"] == "l2":
            bias = table["bias"] if rows is None else table["bias"][rows]
            acc += bias[:, np.newaxis]
            np.maximum(acc, 0.0, out=acc)
        return acc


class OPQQuantizer(Quantizer):
    """Optimized Product Quantization: learned rotation + PQ.

    Alternates between (a) fitting a PQ on rotated data and (b) solving the
    orthogonal Procrustes problem aligning the data with its reconstruction,
    as in Ge et al. 2013. Matches the paper's OPQ256 / OPQ384 rows.
    """

    adc_dense_advantage = ProductQuantizer.adc_dense_advantage

    def __init__(
        self,
        dim: int,
        m: int = 8,
        nbits: int = 8,
        *,
        opq_iters: int = 5,
        train_seed: int = 0,
        train_sample: "int | None" = None,
        train_workers: "int | None" = 1,
        train_algorithm: str = "auto",
    ) -> None:
        super().__init__(dim)
        # OPQ samples its own training rows once (the rotation and the PQ must
        # see the same subset), so the inner PQ keeps train_sample=None.
        self.pq = ProductQuantizer(
            dim, m=m, nbits=nbits, train_seed=train_seed,
            train_workers=train_workers, train_algorithm=train_algorithm,
        )
        if train_sample is not None and train_sample <= 0:
            raise ValueError(f"train_sample must be positive, got {train_sample}")
        self.m = m
        self.opq_iters = opq_iters
        self.name = f"opq{m}"
        self.train_seed = train_seed
        self.train_sample = train_sample
        self._rotation: np.ndarray | None = None

    def code_size(self) -> int:
        return self.pq.code_size()

    def _train(self, vectors: np.ndarray) -> None:
        if self.train_sample is not None and len(vectors) > self.train_sample:
            rng = np.random.default_rng(self.train_seed)
            vectors = vectors[rng.choice(len(vectors), size=self.train_sample, replace=False)]
        rotation = np.eye(self.dim, dtype=np.float32)
        for _ in range(self.opq_iters):
            rotated = vectors @ rotation
            self.pq._train(rotated)
            self.pq.is_trained = True
            recon = self.pq._decode(self.pq._encode(rotated))
            # Procrustes: R = U V^T for X^T Xhat = U S V^T.
            u, _, vt = np.linalg.svd(vectors.T @ recon)
            rotation = (u @ vt).astype(np.float32)
        self._rotation = rotation
        rotated = vectors @ rotation
        self.pq._train(rotated)
        self.pq.is_trained = True

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return self.pq._encode(vectors @ self._rotation)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return self.pq._decode(codes) @ self._rotation.T

    # The rotation is orthogonal, so |q - dec R^T|^2 = |q R - dec|^2 and
    # q . (dec R^T) = (q R) . dec: rotating the query reduces OPQ ADC to PQ
    # ADC on the rotated query — the asymmetry does all the work.
    def supports_adc(self, metric: str) -> bool:
        return metric in ("l2", "ip")

    def adc_table(self, queries: np.ndarray, metric: str, *, ws=None):
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before adc_table()")
        return self.pq.adc_table(as_matrix(queries) @ self._rotation, metric, ws=ws)

    def adc_distances(self, table, codes, *, rows=None, code_sqnorms=None, shifted=False, ws=None):
        return self.pq.adc_distances(
            table, codes, rows=rows, code_sqnorms=code_sqnorms, shifted=shifted, ws=ws
        )


def make_quantizer(
    scheme: str,
    dim: int,
    *,
    train_seed: int = 0,
    train_sample: "int | None" = None,
    train_workers: "int | None" = 1,
    train_algorithm: str = "auto",
) -> Quantizer:
    """Build a codec from a Table 1 row name.

    Recognised schemes: ``flat``, ``sq8``, ``sq4``, ``pqM``, ``opqM`` where
    ``M`` is the subquantizer count (must divide *dim*). The ``train_*``
    knobs apply to the codebook-learning codecs (PQ/OPQ): a deterministic
    training-row sample, subspace-fit thread count, and k-means variant.
    Scalar codecs ignore them — their min/max training must see every row.
    """
    key = scheme.lower()
    if key == "flat":
        return IdentityQuantizer(dim)
    if key == "sq8":
        return ScalarQuantizer(dim, bits=8)
    if key == "sq4":
        return ScalarQuantizer(dim, bits=4)
    if key.startswith("opq"):
        return OPQQuantizer(
            dim, m=int(key[3:]), train_seed=train_seed, train_sample=train_sample,
            train_workers=train_workers, train_algorithm=train_algorithm,
        )
    if key.startswith("pq"):
        return ProductQuantizer(
            dim, m=int(key[2:]), train_seed=train_seed, train_sample=train_sample,
            train_workers=train_workers, train_algorithm=train_algorithm,
        )
    raise ValueError(f"unknown quantization scheme {scheme!r}")
