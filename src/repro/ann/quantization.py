"""Vector quantization codecs: scalar (SQ8/SQ4), product (PQ), and OPQ.

Table 1 of the paper compares IVF quantization schemes by recall and encoded
vector size; the production configuration throughout the paper is IVF with
8-bit scalar quantization (SQ8). Each codec here implements the
train / encode / decode triple used by :class:`repro.ann.ivf.IVFIndex` to
store compressed vectors in its inverted lists.

Code sizes follow the paper's Table 1 accounting for 768-dimensional BGE
embeddings: Flat = 3072 B (fp32), SQ8 = 768 B, SQ4 = 384 B, PQ with 256
subquantizers = 256 B, PQ/OPQ with 384 subquantizers = 384 B.
"""

from __future__ import annotations

import abc

import numpy as np

from .distances import as_matrix
from .kmeans import kmeans


class Quantizer(abc.ABC):
    """Lossy codec mapping float32 vectors to compact codes and back."""

    #: short name used in reports (e.g. the rows of Table 1)
    name: str = "quantizer"

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.is_trained = False

    def train(self, vectors: np.ndarray) -> None:
        self._train(as_matrix(vectors))
        self.is_trained = True

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before encode()")
        return self._encode(as_matrix(vectors))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before decode()")
        return self._decode(np.asarray(codes))

    @abc.abstractmethod
    def code_size(self) -> int:
        """Bytes per encoded vector."""

    @abc.abstractmethod
    def _train(self, vectors: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _encode(self, vectors: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def _decode(self, codes: np.ndarray) -> np.ndarray: ...


class IdentityQuantizer(Quantizer):
    """No-op codec storing raw float32 — the ``Flat`` row of Table 1."""

    name = "flat"

    def code_size(self) -> int:
        return self.dim * 4

    def _train(self, vectors: np.ndarray) -> None:
        del vectors

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return vectors.astype(np.float32, copy=True)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float32, copy=True)


class ScalarQuantizer(Quantizer):
    """Uniform per-dimension scalar quantization to *bits* bits (SQ8 / SQ4).

    Training learns per-dimension ``(vmin, vmax)`` ranges; encoding maps each
    component to an integer level in ``[0, 2^bits - 1]``. 4-bit codes are
    packed two-per-byte, so code sizes match Table 1 (SQ8 = d bytes,
    SQ4 = d/2 bytes).
    """

    def __init__(self, dim: int, bits: int = 8) -> None:
        super().__init__(dim)
        if bits not in (4, 8):
            raise ValueError(f"bits must be 4 or 8, got {bits}")
        self.bits = bits
        self.name = f"sq{bits}"
        self._levels = (1 << bits) - 1
        self._vmin: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def code_size(self) -> int:
        if self.bits == 8:
            return self.dim
        return (self.dim + 1) // 2

    def _train(self, vectors: np.ndarray) -> None:
        self._vmin = vectors.min(axis=0)
        vmax = vectors.max(axis=0)
        span = np.maximum(vmax - self._vmin, 1e-12)
        self._scale = span / self._levels

    def _quantize_levels(self, vectors: np.ndarray) -> np.ndarray:
        levels = np.rint((vectors - self._vmin) / self._scale)
        return np.clip(levels, 0, self._levels).astype(np.uint8)

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        levels = self._quantize_levels(vectors)
        if self.bits == 8:
            return levels
        # Pack pairs of 4-bit levels into single bytes (low nibble first).
        if levels.shape[1] % 2:
            levels = np.concatenate(
                [levels, np.zeros((len(levels), 1), dtype=np.uint8)], axis=1
            )
        low = levels[:, 0::2]
        high = levels[:, 1::2]
        return (low | (high << 4)).astype(np.uint8)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        if self.bits == 8:
            levels = codes.astype(np.float32)
        else:
            low = (codes & 0x0F).astype(np.float32)
            high = ((codes >> 4) & 0x0F).astype(np.float32)
            levels = np.empty((len(codes), low.shape[1] * 2), dtype=np.float32)
            levels[:, 0::2] = low
            levels[:, 1::2] = high
            levels = levels[:, : self.dim]
        return levels * self._scale + self._vmin


class ProductQuantizer(Quantizer):
    """Product quantization [Jegou et al. 2010].

    The vector is split into *m* subspaces, each quantized against its own
    codebook of ``2^nbits`` centroids; codes are ``m`` bytes (``nbits=8``).
    The paper's PQ256 / PQ384 rows correspond to ``m=256`` / ``m=384`` on
    768-dim vectors.
    """

    def __init__(self, dim: int, m: int = 8, nbits: int = 8, *, train_seed: int = 0) -> None:
        super().__init__(dim)
        if m <= 0 or dim % m:
            raise ValueError(f"m={m} must evenly divide dim={dim}")
        if nbits != 8:
            raise ValueError("only nbits=8 (byte codes) is supported")
        self.m = m
        self.nbits = nbits
        self.ksub = 1 << nbits
        self.dsub = dim // m
        self.name = f"pq{m}"
        self.train_seed = train_seed
        self._codebooks: np.ndarray | None = None  # (m, ksub, dsub)

    def code_size(self) -> int:
        return self.m

    def _train(self, vectors: np.ndarray) -> None:
        ksub = min(self.ksub, len(vectors))
        codebooks = np.zeros((self.m, self.ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            result = kmeans(sub, ksub, seed=self.train_seed + j, max_iter=12)
            codebooks[j, :ksub] = result.centroids
            if ksub < self.ksub:
                codebooks[j, ksub:] = result.centroids[0]
        self._codebooks = codebooks

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            book = self._codebooks[j]
            # Assign each subvector to its nearest codeword.
            d = (
                np.einsum("ij,ij->i", sub, sub)[:, np.newaxis]
                - 2.0 * sub @ book.T
                + np.einsum("ij,ij->i", book, book)[np.newaxis, :]
            )
            codes[:, j] = d.argmin(axis=1)
        return codes

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self._codebooks[j][codes[:, j]]
        return out


class OPQQuantizer(Quantizer):
    """Optimized Product Quantization: learned rotation + PQ.

    Alternates between (a) fitting a PQ on rotated data and (b) solving the
    orthogonal Procrustes problem aligning the data with its reconstruction,
    as in Ge et al. 2013. Matches the paper's OPQ256 / OPQ384 rows.
    """

    def __init__(
        self, dim: int, m: int = 8, nbits: int = 8, *, opq_iters: int = 5, train_seed: int = 0
    ) -> None:
        super().__init__(dim)
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, train_seed=train_seed)
        self.m = m
        self.opq_iters = opq_iters
        self.name = f"opq{m}"
        self._rotation: np.ndarray | None = None

    def code_size(self) -> int:
        return self.pq.code_size()

    def _train(self, vectors: np.ndarray) -> None:
        rotation = np.eye(self.dim, dtype=np.float32)
        for _ in range(self.opq_iters):
            rotated = vectors @ rotation
            self.pq._train(rotated)
            self.pq.is_trained = True
            recon = self.pq._decode(self.pq._encode(rotated))
            # Procrustes: R = U V^T for X^T Xhat = U S V^T.
            u, _, vt = np.linalg.svd(vectors.T @ recon)
            rotation = (u @ vt).astype(np.float32)
        self._rotation = rotation
        rotated = vectors @ rotation
        self.pq._train(rotated)
        self.pq.is_trained = True

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return self.pq._encode(vectors @ self._rotation)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return self.pq._decode(codes) @ self._rotation.T


def make_quantizer(scheme: str, dim: int, *, train_seed: int = 0) -> Quantizer:
    """Build a codec from a Table 1 row name.

    Recognised schemes: ``flat``, ``sq8``, ``sq4``, ``pqM``, ``opqM`` where
    ``M`` is the subquantizer count (must divide *dim*).
    """
    key = scheme.lower()
    if key == "flat":
        return IdentityQuantizer(dim)
    if key == "sq8":
        return ScalarQuantizer(dim, bits=8)
    if key == "sq4":
        return ScalarQuantizer(dim, bits=4)
    if key.startswith("opq"):
        return OPQQuantizer(dim, m=int(key[3:]), train_seed=train_seed)
    if key.startswith("pq"):
        return ProductQuantizer(dim, m=int(key[2:]), train_seed=train_seed)
    raise ValueError(f"unknown quantization scheme {scheme!r}")
