"""Dense vector search substrate (pure-numpy FAISS replacement).

Provides the index families the Hermes paper builds on: exact Flat search,
IVF with scalar/product quantization, and HNSW, plus the K-means machinery
shared by IVF training and Hermes's datastore disaggregation.
"""

from .base import INDEX_REGISTRY, VectorIndex, build_index, register_index
from .early_termination import (
    EarlyTerminationResult,
    search_with_early_termination,
)
from .distances import (
    VALID_METRICS,
    inner_product,
    normalize,
    pairwise_distance,
    squared_l2,
    top_k,
)
from .flat import FlatIndex
from .persistence import load_index, save_flat, save_ivf
from .hnsw import HNSWIndex
from .ivf import IVFIndex, default_nlist
from .kmeans import KMeansResult, assign_to_centroids, kmeans, kmeans_seed_sweep
from .sparse import (
    BM25Index,
    HybridRetriever,
    SparseSearchResult,
    reciprocal_rank_fusion,
    zscore_fusion,
)
from .quantization import (
    IdentityQuantizer,
    OPQQuantizer,
    ProductQuantizer,
    Quantizer,
    ScalarQuantizer,
    make_quantizer,
)

__all__ = [
    "INDEX_REGISTRY",
    "VectorIndex",
    "build_index",
    "register_index",
    "VALID_METRICS",
    "inner_product",
    "normalize",
    "pairwise_distance",
    "squared_l2",
    "top_k",
    "FlatIndex",
    "load_index",
    "save_flat",
    "save_ivf",
    "EarlyTerminationResult",
    "search_with_early_termination",
    "HNSWIndex",
    "IVFIndex",
    "default_nlist",
    "KMeansResult",
    "assign_to_centroids",
    "kmeans",
    "kmeans_seed_sweep",
    "BM25Index",
    "HybridRetriever",
    "SparseSearchResult",
    "reciprocal_rank_fusion",
    "zscore_fusion",
    "IdentityQuantizer",
    "OPQQuantizer",
    "ProductQuantizer",
    "Quantizer",
    "ScalarQuantizer",
    "make_quantizer",
]
