"""Scratch-buffer arena for the query hot path.

Steady-state searches should do **zero large allocations**: every scan of the
same index with the same batch shape needs the same scratch arrays (ADC
lookup tables, per-cell distance tiles, top-k merge buffers), yet allocating
them per call costs page faults and allocator churn right on the latency
critical path. :class:`Workspace` is a grow-only arena keyed by buffer role:
``take(key, shape, dtype)`` returns a view of a cached backing buffer,
reallocating (geometrically) only when the request outgrows the cache.

Contract for callers:

- A view handed out by :meth:`take` is valid until the *next* ``take`` with
  the same key — never store it, and never return it to user code (copy
  final outputs out of the arena).
- Buffers come back **uninitialised** unless ``fill=`` is given; callers
  overwrite what they read.
- A workspace is single-threaded scratch. Concurrent searchers each get
  their own instance (the IVF index keeps one per thread).

Hit/miss counts accumulate locally and are drained into the process metrics
registry (``workspace_hits_total`` / ``workspace_misses_total``) once per
search, keeping the per-``take`` cost to a dict lookup.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.metrics import get_registry


class Workspace:
    """Grow-only keyed scratch arena handing out sized array views."""

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(
        self,
        key: str,
        shape: "tuple[int, ...]",
        dtype=np.float32,
        *,
        fill=None,
    ) -> np.ndarray:
        """A ``shape``-shaped view of the cached buffer for *key*.

        Grows the backing buffer geometrically on a miss so repeated
        slightly-larger requests (e.g. the widest cell of each probe chunk)
        converge to zero reallocations instead of reallocating every call.
        """
        dtype = np.dtype(dtype)
        n = int(math.prod(shape)) if shape else 1
        buf = self._buffers.get(key)
        if buf is None or buf.dtype != dtype or buf.size < n:
            grow = n if buf is None or buf.dtype != dtype else max(n, 2 * buf.size)
            buf = np.empty(max(grow, 1), dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        view = buf[:n].reshape(shape)
        if fill is not None:
            view[...] = fill
        return view

    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Drop every cached buffer (tests / memory-pressure hook)."""
        self._buffers.clear()

    def flush_stats(self) -> None:
        """Drain accumulated hit/miss counts into the metrics registry."""
        if not (self.hits or self.misses):
            return
        registry = get_registry()
        if self.hits:
            registry.counter(
                "workspace_hits_total", "scratch-arena buffer reuses"
            ).inc(self.hits)
            self.hits = 0
        if self.misses:
            registry.counter(
                "workspace_misses_total", "scratch-arena buffer (re)allocations"
            ).inc(self.misses)
            self.misses = 0
