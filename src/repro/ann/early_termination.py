"""Adaptive early termination for IVF search (related-work extension).

The paper's §7 cites IVF optimisations that "use input/intermediate results
to learn to predict search extent and terminate search early" [Li et al.
2020, Zhang et al. 2023] and SPANN's query-time cluster pruning — noting they
are complementary to Hermes ("need to be used in conjunction with our
distributed system"). This module implements both ideas over our IVF index:

- **patience termination**: stop probing further cells once the top-k result
  set has not improved for ``patience`` consecutive cells;
- **distance-ratio pruning** (SPANN-style): skip any cell whose centroid is
  more than ``prune_ratio`` times farther than the nearest centroid.

Both trade a bounded recall loss for probing fewer cells; the ablation bench
(``benchmarks/test_ablation_early_termination.py``) measures that trade-off
and shows it composes with Hermes's hierarchical search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import as_matrix, pairwise_distance, top_k
from .ivf import IVFIndex


@dataclass(frozen=True)
class EarlyTerminationResult:
    """Search output plus the probing effort actually spent."""

    distances: np.ndarray
    ids: np.ndarray
    cells_probed: np.ndarray

    @property
    def mean_cells_probed(self) -> float:
        return float(self.cells_probed.mean())


def search_with_early_termination(
    index: IVFIndex,
    queries: np.ndarray,
    k: int,
    *,
    max_nprobe: int | None = None,
    patience: int = 4,
    prune_ratio: float | None = None,
) -> EarlyTerminationResult:
    """Top-k IVF search that stops probing when progress stalls.

    Parameters
    ----------
    max_nprobe:
        Upper bound on cells probed per query (defaults to the index's
        ``nprobe``).
    patience:
        Consecutive cells allowed to leave the running top-k unchanged before
        the query terminates.
    prune_ratio:
        Optional SPANN-style cutoff: cells whose centroid distance exceeds
        ``prune_ratio x`` the nearest centroid's distance are never probed.
        Uses L2 centroid distances (matching IVF cell assignment).
    """
    if not index.is_trained:
        raise RuntimeError("index must be trained")
    if patience <= 0:
        raise ValueError("patience must be positive")
    if prune_ratio is not None and prune_ratio < 1.0:
        raise ValueError("prune_ratio must be >= 1")
    q = as_matrix(queries)
    limit = min(max_nprobe or index.nprobe, index.nlist)

    cell_d = pairwise_distance(q, index.centroids, "l2")
    _, cell_order = top_k(cell_d, limit)

    nq = len(q)
    out_d = np.full((nq, k), np.inf, dtype=np.float32)
    out_i = np.full((nq, k), -1, dtype=np.int64)
    probed = np.zeros(nq, dtype=np.int64)

    decoded: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def cell_payload(cell: int):
        if cell not in decoded:
            decoded[cell] = index.cell_vectors(cell)
        return decoded[cell]

    for qi in range(nq):
        best_d = np.full(k, np.inf, dtype=np.float32)
        best_i = np.full(k, -1, dtype=np.int64)
        stall = 0
        nearest_cell_d = float(cell_d[qi, cell_order[qi, 0]])
        for rank in range(limit):
            cell = int(cell_order[qi, rank])
            if cell < 0:
                break
            if (
                prune_ratio is not None
                and rank > 0
                and float(cell_d[qi, cell]) > prune_ratio * max(nearest_cell_d, 1e-30)
            ):
                break
            vecs, ids = cell_payload(cell)
            probed[qi] += 1
            if len(ids):
                dists = pairwise_distance(q[qi : qi + 1], vecs, index.metric)[0]
                merged_d = np.concatenate([best_d, dists.astype(np.float32)])
                merged_i = np.concatenate([best_i, ids])
                order = np.argsort(merged_d)[:k]
                new_d, new_i = merged_d[order], merged_i[order]
                improved = not np.array_equal(new_i, best_i)
                best_d, best_i = new_d, new_i
            else:
                improved = False
            stall = 0 if improved else stall + 1
            if stall >= patience and rank >= patience:
                break
        out_d[qi] = best_d
        out_i[qi] = best_i
    return EarlyTerminationResult(distances=out_d, ids=out_i, cells_probed=probed)
