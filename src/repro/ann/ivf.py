"""Inverted File (IVF) index with optional quantization.

IVF is the index family Hermes is built on (§2.1): K-means partitions the
vectors into ``nlist`` cells; a query is compared against the cell centroids
and only the ``nProbe`` nearest cells are scanned. ``nProbe`` is the paper's
central latency/accuracy knob — Hermes's hierarchical search runs the same
index once with a *small* nProbe (sampling) and again with a *large* nProbe
(deep search) on the winning clusters.

The default ``nlist`` follows the paper's rule of thumb ``nlist ≈ sqrt(N)``.
"""

from __future__ import annotations

import math

import numpy as np

from .base import VectorIndex, register_index
from .distances import pairwise_distance, top_k
from .kmeans import kmeans
from .quantization import IdentityQuantizer, Quantizer, make_quantizer


def default_nlist(n_vectors: int) -> int:
    """Paper heuristic: ``nlist ≈ sqrt(N)``, at least 1."""
    return max(1, int(round(math.sqrt(max(n_vectors, 1)))))


class IVFIndex(VectorIndex):
    """Cluster-probed approximate k-NN search.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"l2"`` or ``"ip"``; cell assignment always uses L2 on centroids,
        matching FAISS's ``IndexIVF`` coarse quantizer behaviour.
    nlist:
        Number of inverted lists (cells). ``None`` defers to
        ``sqrt(len(train_set))`` at train time.
    nprobe:
        Default number of cells scanned per query; overridable per search.
    quantizer:
        Codec used to store list payloads (``IdentityQuantizer`` keeps raw
        float32, i.e. ``IVFFlat``).
    """

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        *,
        nlist: int | None = None,
        nprobe: int = 1,
        quantizer: Quantizer | None = None,
        train_seed: int = 0,
    ) -> None:
        super().__init__(dim, metric)
        if nlist is not None and nlist <= 0:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self.nlist = nlist
        self.nprobe = nprobe
        self.quantizer = quantizer if quantizer is not None else IdentityQuantizer(dim)
        self.train_seed = train_seed
        self.centroids: np.ndarray | None = None
        self._list_codes: list[list[np.ndarray]] = []
        self._list_ids: list[list[np.ndarray]] = []

    # -- training ----------------------------------------------------------
    def _train(self, vectors: np.ndarray) -> None:
        if self.nlist is None:
            self.nlist = default_nlist(len(vectors))
        if len(vectors) < self.nlist:
            raise ValueError(
                f"training set of {len(vectors)} vectors is smaller than nlist={self.nlist}"
            )
        result = kmeans(vectors, self.nlist, seed=self.train_seed, max_iter=20)
        self.centroids = result.centroids
        if not self.quantizer.is_trained:
            self.quantizer.train(vectors)
        self._list_codes = [[] for _ in range(self.nlist)]
        self._list_ids = [[] for _ in range(self.nlist)]

    # -- population ---------------------------------------------------------
    def _add(self, vectors: np.ndarray) -> None:
        cells = pairwise_distance(vectors, self.centroids, "l2").argmin(axis=1)
        codes = self.quantizer.encode(vectors)
        base = self.ntotal
        for cell in np.unique(cells):
            members = np.flatnonzero(cells == cell)
            self._list_codes[cell].append(codes[members])
            self._list_ids[cell].append((base + members).astype(np.int64))

    def list_sizes(self) -> np.ndarray:
        """Number of stored vectors per inverted list."""
        return np.array(
            [sum(len(ids) for ids in lst) for lst in self._list_ids], dtype=np.int64
        )

    # -- search --------------------------------------------------------------
    def _search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        probe = min(self.nprobe if nprobe is None else int(nprobe), self.nlist)
        if probe <= 0:
            raise ValueError(f"nprobe must be positive, got {probe}")
        cell_d = pairwise_distance(queries, self.centroids, "l2")
        _, probe_cells = top_k(cell_d, probe)

        nq = len(queries)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)

        # Group queries by identical probe sets so each decode batch is shared.
        # For simplicity (and since probe sets rarely coincide across queries),
        # scan per query but decode each touched cell once per call.
        decoded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for qi in range(nq):
            cand_vecs: list[np.ndarray] = []
            cand_ids: list[np.ndarray] = []
            for cell in probe_cells[qi]:
                cell = int(cell)
                if cell < 0:
                    continue
                if cell not in decoded:
                    ids_parts = self._list_ids[cell]
                    if not ids_parts:
                        decoded[cell] = (
                            np.empty((0, self.dim), dtype=np.float32),
                            np.empty(0, dtype=np.int64),
                        )
                    else:
                        codes = np.concatenate(self._list_codes[cell], axis=0)
                        ids = np.concatenate(ids_parts)
                        decoded[cell] = (self.quantizer.decode(codes), ids)
                vecs, ids = decoded[cell]
                if len(ids):
                    cand_vecs.append(vecs)
                    cand_ids.append(ids)
            if not cand_vecs:
                continue
            vecs = np.concatenate(cand_vecs, axis=0)
            ids = np.concatenate(cand_ids)
            dists = pairwise_distance(queries[qi : qi + 1], vecs, self.metric)
            d_row, order = top_k(dists, k)
            out_d[qi] = d_row[0]
            valid = order[0] >= 0
            out_i[qi, valid] = ids[order[0][valid]]
        return out_d, out_i

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search, optionally overriding the index's default nProbe."""
        if not self.is_trained:
            raise RuntimeError("IVFIndex must be trained before search()")
        if self.ntotal == 0:
            return super().search(queries, k)
        from .distances import as_matrix

        q = as_matrix(queries)
        self._check_dim(q)
        return self._search(q, int(k), nprobe=nprobe)

    def memory_bytes(self) -> int:
        payload = int(self.ntotal) * self.quantizer.code_size()
        ids = int(self.ntotal) * 8
        cents = 0 if self.centroids is None else self.centroids.size * 4
        return payload + ids + cents


@register_index("ivf_flat")
def ivf_flat(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with raw float32 payloads (``IVFFlat``)."""
    return IVFIndex(dim, metric, quantizer=IdentityQuantizer(dim), **kwargs)


@register_index("ivf_sq8")
def ivf_sq8(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with 8-bit scalar quantization — the paper's production index."""
    return IVFIndex(dim, metric, quantizer=make_quantizer("sq8", dim), **kwargs)


@register_index("ivf_sq4")
def ivf_sq4(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with 4-bit scalar quantization."""
    return IVFIndex(dim, metric, quantizer=make_quantizer("sq4", dim), **kwargs)


@register_index("ivf_pq")
def ivf_pq(dim: int, metric: str = "l2", *, m: int = 8, **kwargs) -> IVFIndex:
    """IVF with product quantization (``m`` byte codes)."""
    return IVFIndex(dim, metric, quantizer=make_quantizer(f"pq{m}", dim), **kwargs)
