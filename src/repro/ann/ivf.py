"""Inverted File (IVF) index with optional quantization.

IVF is the index family Hermes is built on (§2.1): K-means partitions the
vectors into ``nlist`` cells; a query is compared against the cell centroids
and only the ``nProbe`` nearest cells are scanned. ``nProbe`` is the paper's
central latency/accuracy knob — Hermes's hierarchical search runs the same
index once with a *small* nProbe (sampling) and again with a *large* nProbe
(deep search) on the winning clusters.

The default ``nlist`` follows the paper's rule of thumb ``nlist ≈ sqrt(N)``.

Performance architecture (see DESIGN.md):

- **List compaction**: ``add()`` appends per-cell fragments; the first search
  after an add compacts everything into contiguous CSR-style ``codes`` /
  ``ids`` arrays indexed by ``cell_offsets``, so steady-state searches never
  concatenate fragments.
- **Cell-major batched scan**: the search loop is inverted — each probed cell
  is scanned once for *all* queries probing it (one distance kernel per
  cell), instead of assembling a candidate pool per query.
- **ADC**: when the quantizer supports asymmetric distance computation,
  distances are evaluated directly on the stored codes
  (:meth:`repro.ann.quantization.Quantizer.adc_distances`) without
  reconstructing vectors.
- The pre-optimisation per-query path is retained as
  :meth:`IVFIndex.search_reference` for equivalence testing and as the
  benchmark baseline (``benchmarks/bench_retrieval.py``).
"""

from __future__ import annotations

import math
import threading

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .base import VectorIndex, register_index
from .distances import pairwise_distance, top_k
from .kmeans import assign_to_centroids, train_kmeans
from .pruning import (
    inflate_threshold,
    ip_radius_cut,
    l2_radius_window,
    residual_radii,
)
from .quantization import IdentityQuantizer, Quantizer, make_quantizer
from .workspace import Workspace

#: Code-block granularity the block-pruning counter reports in: a skipped
#: span of N codes counts as N // PRUNE_BLOCK blocks.
PRUNE_BLOCK = 32


def default_nlist(n_vectors: int) -> int:
    """Paper heuristic: ``nlist ≈ sqrt(N)``, at least 1."""
    return max(1, int(round(math.sqrt(max(n_vectors, 1)))))


class IVFIndex(VectorIndex):
    """Cluster-probed approximate k-NN search.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"l2"`` or ``"ip"``; cell assignment always uses L2 on centroids,
        matching FAISS's ``IndexIVF`` coarse quantizer behaviour.
    nlist:
        Number of inverted lists (cells). ``None`` defers to
        ``sqrt(len(train_set))`` at train time.
    nprobe:
        Default number of cells scanned per query; overridable per search.
    quantizer:
        Codec used to store list payloads (``IdentityQuantizer`` keeps raw
        float32, i.e. ``IVFFlat``).
    kmeans_algorithm:
        Coarse-centroid training variant (see ``ann.kmeans.ALGORITHMS``);
        the default ``"auto"`` switches to mini-batch K-means with full-data
        refinement for large training sets.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        *,
        nlist: int | None = None,
        nprobe: int = 1,
        quantizer: Quantizer | None = None,
        train_seed: int = 0,
        kmeans_algorithm: str = "auto",
        kmeans_batch_size: int = 4096,
    ) -> None:
        super().__init__(dim, metric)
        if nlist is not None and nlist <= 0:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self.nlist = nlist
        self.nprobe = nprobe
        self.quantizer = quantizer if quantizer is not None else IdentityQuantizer(dim)
        self.train_seed = train_seed
        self.kmeans_algorithm = kmeans_algorithm
        self.kmeans_batch_size = kmeans_batch_size
        self.centroids: np.ndarray | None = None
        # Per-cell fragments pending compaction (appended by add()).
        self._pending_codes: list[list[np.ndarray]] = []
        self._pending_ids: list[list[np.ndarray]] = []
        # Compacted CSR storage: codes/ids are contiguous, cell c owns the
        # slice [cell_offsets[c], cell_offsets[c+1]).
        self._codes: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._cell_offsets: np.ndarray | None = None
        self._code_cells: np.ndarray | None = None
        # |decode(code)|^2 per stored code, computed lazily for ADC metrics
        # that need it (SQ under L2); invalidated on recompaction.
        self._code_sqnorms: np.ndarray | None = None
        # Streaming-scan pruning state (lazy, invalidated on recompaction):
        # per-code residual radii |decode(code) - centroid|, with each cell's
        # codes *stored sorted by radius* so a (query, cell) radius window is
        # a contiguous slice, plus per-cell radius extrema for cell-level
        # pruning. See ann/pruning.py for the bound derivations.
        self._code_radii: np.ndarray | None = None
        self._cell_radius_max: np.ndarray | None = None
        self._cell_radius_min: np.ndarray | None = None
        # Per-thread scratch arenas (created lazily: threading.local does not
        # survive copy/pickle, so it must not exist on a fresh index).
        self._ws_local: "threading.local | None" = None
        self._dirty = False
        #: number of compaction passes run — a diagnostics counter used by
        #: the regression tests to prove steady-state searches don't rebuild.
        self.compactions = 0

    # -- training ----------------------------------------------------------
    def _train(self, vectors: np.ndarray) -> None:
        if self.nlist is None:
            self.nlist = default_nlist(len(vectors))
        if len(vectors) < self.nlist:
            raise ValueError(
                f"training set of {len(vectors)} vectors is smaller than nlist={self.nlist}"
            )
        result = train_kmeans(
            vectors, self.nlist, seed=self.train_seed, max_iter=20,
            algorithm=self.kmeans_algorithm, batch_size=self.kmeans_batch_size,
        )
        self.centroids = result.centroids
        if not self.quantizer.is_trained:
            self.quantizer.train(vectors)
        self._pending_codes = [[] for _ in range(self.nlist)]
        self._pending_ids = [[] for _ in range(self.nlist)]
        self._codes = None
        self._ids = None
        self._cell_offsets = None
        self._code_cells = None
        self._code_sqnorms = None
        self._code_radii = None
        self._cell_radius_max = None
        self._cell_radius_min = None
        self._dirty = False

    # -- population ---------------------------------------------------------
    def _add(self, vectors: np.ndarray) -> None:
        cells = assign_to_centroids(vectors, self.centroids, "l2")
        codes = self.quantizer.encode(vectors)
        base = self.ntotal
        for cell in np.unique(cells):
            members = np.flatnonzero(cells == cell)
            self._pending_codes[cell].append(codes[members])
            self._pending_ids[cell].append((base + members).astype(np.int64))
        self._dirty = True

    # -- storage ------------------------------------------------------------
    @property
    def is_compacted(self) -> bool:
        """True when all payloads live in the contiguous CSR arrays."""
        return self._codes is not None and not self._dirty

    def compact(self) -> None:
        """Merge pending fragments into contiguous CSR code/id arrays.

        Runs lazily on the first search after an ``add()``; idempotent and
        cheap (a no-op) when nothing changed since the last compaction.
        """
        if self._codes is not None and not self._dirty:
            return
        with get_tracer().span("ivf_compact", nlist=self.nlist, ntotal=self.ntotal):
            self._compact_now()

    def _compact_now(self) -> None:
        parts_codes: list[np.ndarray] = []
        parts_ids: list[np.ndarray] = []
        sizes = np.zeros(self.nlist, dtype=np.int64)
        for cell in range(self.nlist):
            if self._cell_offsets is not None:
                lo, hi = int(self._cell_offsets[cell]), int(self._cell_offsets[cell + 1])
                if hi > lo:
                    parts_codes.append(self._codes[lo:hi])
                    parts_ids.append(self._ids[lo:hi])
                    sizes[cell] += hi - lo
            for frag in self._pending_codes[cell]:
                parts_codes.append(frag)
                sizes[cell] += len(frag)
            parts_ids.extend(self._pending_ids[cell])
        offsets = np.zeros(self.nlist + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if parts_codes:
            self._codes = np.ascontiguousarray(np.concatenate(parts_codes, axis=0))
            self._ids = np.concatenate(parts_ids)
        else:
            self._codes = np.empty((0, 0), dtype=np.uint8)
            self._ids = np.empty(0, dtype=np.int64)
        self._cell_offsets = offsets
        # Cell id per stored code (row -> owning cell), used by the dense
        # scan to mask unprobed cells without walking the CSR structure.
        self._code_cells = np.repeat(np.arange(self.nlist, dtype=np.int32), sizes)
        self._pending_codes = [[] for _ in range(self.nlist)]
        self._pending_ids = [[] for _ in range(self.nlist)]
        self._code_sqnorms = None
        self._code_radii = None
        self._cell_radius_max = None
        self._cell_radius_min = None
        self._dirty = False
        self.compactions += 1

    def fresh_sealed_like(self) -> "IVFIndex":
        """An empty index sharing this one's trained coarse/fine quantizers.

        Compaction (and the rebuild-from-scratch oracle in the mutation
        equivalence tests) must produce *bit-identical* codes and cell
        assignments, which requires reusing the exact trained centroids and
        codec — retraining on the surviving vectors would shift both.
        """
        if not self.is_trained:
            raise RuntimeError("IVFIndex must be trained before fresh_sealed_like()")
        clone = IVFIndex(
            self.dim,
            self.metric,
            nlist=self.nlist,
            nprobe=self.nprobe,
            quantizer=self.quantizer,
            train_seed=self.train_seed,
            kmeans_algorithm=self.kmeans_algorithm,
            kmeans_batch_size=self.kmeans_batch_size,
        )
        clone.centroids = self.centroids
        clone.is_trained = True
        clone._pending_codes = [[] for _ in range(self.nlist)]
        clone._pending_ids = [[] for _ in range(self.nlist)]
        return clone

    def install_rows(self, codes: np.ndarray, cells: np.ndarray) -> None:
        """Adopt pre-encoded rows as the index's entire contents.

        Row ``r`` of ``codes`` becomes local id ``r``; rows are grouped into
        CSR cell order with a *stable* sort, so rows sharing a cell keep
        their input order — the same within-cell insertion order ``add()``
        produces, which the stable tie-break depends on. Used by shard
        compaction to fold sealed survivors + delta rows into a fresh index
        without re-encoding anything.
        """
        if not self.is_trained:
            raise RuntimeError("IVFIndex must be trained before install_rows()")
        cells = np.asarray(cells, dtype=np.int64)
        n = len(cells)
        if len(codes) != n:
            raise ValueError(f"{len(codes)} code rows for {n} cell assignments")
        if n and (cells.min() < 0 or cells.max() >= self.nlist):
            raise ValueError("cell assignment out of range")
        order = np.argsort(cells, kind="stable")
        sizes = np.bincount(cells, minlength=self.nlist)
        offsets = np.zeros(self.nlist + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if n:
            self._codes = np.ascontiguousarray(np.asarray(codes)[order])
        else:
            self._codes = np.empty((0, 0), dtype=np.uint8)
        self._ids = order.astype(np.int64)
        self._cell_offsets = offsets
        self._code_cells = cells[order].astype(np.int32)
        self._pending_codes = [[] for _ in range(self.nlist)]
        self._pending_ids = [[] for _ in range(self.nlist)]
        self._code_sqnorms = None
        self._code_radii = None
        self._cell_radius_max = None
        self._cell_radius_min = None
        self._dirty = False
        self.ntotal = n
        self.compactions += 1

    def cell_codes(self, cell: int) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(codes, ids)`` views of one inverted list."""
        self.compact()
        lo, hi = int(self._cell_offsets[cell]), int(self._cell_offsets[cell + 1])
        return self._codes[lo:hi], self._ids[lo:hi]

    def cell_vectors(self, cell: int) -> tuple[np.ndarray, np.ndarray]:
        """Decoded ``(vectors, ids)`` of one inverted list."""
        codes, ids = self.cell_codes(cell)
        if not len(ids):
            return np.empty((0, self.dim), dtype=np.float32), ids
        return self.quantizer.decode(codes), ids

    def reconstruct(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode every stored vector; returns ``(vectors, local_ids)``."""
        self.compact()
        n = len(self._ids)
        out = np.empty((n, self.dim), dtype=np.float32)
        step = 16384
        for s in range(0, n, step):
            out[s : s + step] = self.quantizer.decode(self._codes[s : s + step])
        return out, self._ids.copy()

    def list_sizes(self) -> np.ndarray:
        """Number of stored vectors per inverted list."""
        sizes = np.zeros(self.nlist, dtype=np.int64)
        if self._cell_offsets is not None:
            sizes += np.diff(self._cell_offsets)
        for cell in range(self.nlist):
            sizes[cell] += sum(len(ids) for ids in self._pending_ids[cell])
        return sizes

    def _adc_code_sqnorms(self) -> np.ndarray:
        if self._code_sqnorms is None:
            self._code_sqnorms = self.quantizer.code_sqnorms(self._codes)
        return self._code_sqnorms

    @property
    def _workspace(self) -> Workspace:
        """This thread's scratch arena (one per searching thread)."""
        local = self._ws_local
        if local is None:
            local = self._ws_local = threading.local()
        ws = getattr(local, "ws", None)
        if ws is None:
            ws = local.ws = Workspace()
        return ws

    def _install_radii(self, radii: np.ndarray) -> None:
        """Adopt per-code radii (already matching the storage order) and
        derive the per-cell extrema the cell-level pruning test uses."""
        offsets = self._cell_offsets
        sizes = offsets[1:] - offsets[:-1]
        rmax = np.zeros(self.nlist, dtype=np.float32)
        rmin = np.full(self.nlist, np.inf, dtype=np.float32)
        occupied = np.flatnonzero(sizes > 0)
        rmax[occupied] = radii[offsets[1:][occupied] - 1]
        rmin[occupied] = radii[offsets[:-1][occupied]]
        self._code_radii = np.asarray(radii, dtype=np.float32)
        self._cell_radius_max = rmax
        self._cell_radius_min = rmin

    def _ensure_pruning_state(self) -> None:
        """Compute residual radii and sort each cell's storage by radius.

        The reorder permutes codes/ids/sqnorms *within* cells only (the CSR
        offsets and row→cell map are unchanged), so every scan path sees the
        same storage; the sort is stable, so codes with equal radii (e.g.
        duplicates) keep their insertion order and tie-breaking stays
        consistent with the reference path.
        """
        self.compact()
        if self._code_radii is not None:
            return
        n = len(self._ids)
        if n == 0:
            self._install_radii(np.empty(0, dtype=np.float32))
            return
        radii = np.empty(n, dtype=np.float32)
        step = 16384
        for s in range(0, n, step):
            decoded = self.quantizer.decode(self._codes[s : s + step])
            radii[s : s + step] = residual_radii(
                decoded, self.centroids[self._code_cells[s : s + step]]
            )
        perm = np.lexsort((radii, self._code_cells))
        if not np.array_equal(perm, np.arange(n)):
            self._codes = np.ascontiguousarray(self._codes[perm])
            self._ids = self._ids[perm]
            radii = radii[perm]
            if self._code_sqnorms is not None:
                self._code_sqnorms = self._code_sqnorms[perm]
        self._install_radii(radii)

    def warm_scan_state(self) -> None:
        """Precompute every lazy scan structure (compaction, ADC norms,
        pruning radii) so the next search runs entirely warm — used before
        persistence and before exporting shards to worker processes."""
        self.compact()
        if self.quantizer.supports_adc(self.metric) and self.quantizer.needs_code_sqnorms(
            self.metric
        ):
            self._adc_code_sqnorms()
        self._ensure_pruning_state()

    # -- search --------------------------------------------------------------
    def _resolve_probe(self, nprobe: int | None) -> int:
        probe = self.nprobe if nprobe is None else int(nprobe)
        if probe <= 0:
            raise ValueError(f"nprobe must be positive, got {probe}")
        return min(probe, self.nlist)

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        use_adc: bool | None = None,
        prune: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cell-major batched scan over the compacted inverted lists.

        Three strategies share the same contract and the same tie-breaking
        (probe order, then within-cell storage order, via the stable
        :func:`~repro.ann.distances.top_k`):

        - **Streaming** (``prune=True``; the default for gather codecs): scan
          probe slots in ascending centroid-distance order, carrying a
          running k-th-best threshold per query; (query, cell) pairs — and
          contiguous code blocks inside surviving cells — whose triangle-
          inequality lower bound cannot beat the threshold are skipped, and
          the per-cell partial results merge into the running top-k chunk by
          chunk instead of one giant argpartition.
        - **Sparse** (low probe coverage): probed cells are grouped across
          the query batch and each cell is scanned exactly once — one
          *shifted* ADC evaluation (or decode + GEMM) for every query probing
          it. Per-cell distance blocks land whole in a padded slot-major
          buffer, so the scan loop does no per-cell selection.
        - **Dense** (the batch's probes cover a large fraction of the stored
          codes, e.g. deep search at high nProbe): one kernel over *all*
          codes, then unprobed cells are masked to ``inf``. Same arithmetic,
          no Python-level per-cell loop at all.

        All scratch (ADC tables, distance tiles, merge buffers) comes from
        the per-thread workspace arena, so steady-state searches make no
        large allocations. Per-query ADC bias terms (which cannot change a
        query's own ordering) are added once after selection in every path.
        """
        probe = self._resolve_probe(nprobe)
        self.compact()
        q = queries
        nq = len(q)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        n_codes = len(self._ids)
        if not n_codes:
            return out_d, out_i
        if use_adc is None:
            use_adc = self.quantizer.supports_adc(self.metric)
        if prune is None:
            # Gather codecs (PQ/OPQ) get no batching advantage from the
            # dense GEMM strategy, so threshold pruning is a pure win there;
            # GEMM codecs keep their dense path unless pruning is requested.
            prune = self.quantizer.adc_dense_advantage <= 1.0
        prune = bool(prune)
        if prune:
            # May reorder storage within cells — before norms are sliced.
            self._ensure_pruning_state()
        ws = self._workspace

        cell_d = pairwise_distance(q, self.centroids, "l2")
        cell_dists, probe_cells = top_k(cell_d, probe)
        table = self.quantizer.adc_table(q, self.metric, ws=ws) if use_adc else None
        norms = (
            self._adc_code_sqnorms()
            if use_adc and self.quantizer.needs_code_sqnorms(self.metric)
            else None
        )

        offsets = self._cell_offsets
        sizes = offsets[1:] - offsets[:-1]
        # Probed work as a fraction of a full scan decides the strategy: the
        # dense kernel costs ~nq * n_codes regardless of probe, the sparse
        # loop costs the probed work plus fixed per-cell overhead. How the
        # two per-element costs compare is a property of the codec.
        pair_work = int(sizes[probe_cells].sum())
        if prune:
            strategy = "streaming"
        else:
            dense = self.quantizer.adc_dense_advantage * pair_work >= nq * n_codes
            strategy = "dense" if dense else "sparse"
        get_registry().counter(
            "ivf_scans_total", "IVF batched scans by strategy"
        ).inc(strategy=strategy)
        with get_tracer().span(
            "ivf_scan",
            strategy=strategy,
            nq=nq,
            nprobe=probe,
            pair_work=pair_work,
            adc=bool(use_adc),
        ):
            if strategy == "streaming":
                out_d, out_i, valid = self._scan_streaming(
                    q, k, probe, probe_cells, cell_dists, use_adc, table, norms, ws
                )
            elif strategy == "dense":
                out_d, out_i, valid = self._scan_dense(
                    q, k, probe_cells, use_adc, table, norms, ws
                )
            else:
                out_d, out_i, valid = self._scan_sparse(
                    q, k, probe, probe_cells, use_adc, table, norms, ws
                )
        if use_adc:
            bias = table.get("bias")
            if bias is not None:
                out_d += bias[:, np.newaxis]
            if self.metric == "l2":
                np.maximum(out_d, 0.0, out=out_d)
            out_d[~valid] = np.inf
        ws.flush_stats()
        return out_d, out_i

    #: max probe slots merged per streaming round. Rounds ramp geometrically
    #: (1, 2, 4, ... slots) so the very first (nearest) cell already seeds
    #: the pruning threshold — tau is infinite until the first merge, so a
    #: large opening round would scan its cells unpruned — then cap here to
    #: amortise the per-round merge.
    _STREAM_CHUNK = 8

    def _scan_streaming(
        self, q, k, probe, probe_cells, cell_dists, use_adc, table, norms, ws
    ):
        """Threshold-pruned scan in ascending centroid-distance order.

        Probe slots are consumed in chunks of ``_STREAM_CHUNK``. Each round:

        1. computes the surviving-radius window per (query, cell) from the
           running k-th-best thresholds (see :mod:`repro.ann.pruning`) and
           drops pairs whose window misses the cell's radius range entirely;
        2. groups surviving pairs cell-major, narrows each cell to the
           contiguous radius-sorted code slice covering the group's windows
           (two binary searches — skipped codes count as pruned blocks);
        3. scans each slice once for its group's queries and scatters the
           tiles into an arena merge buffer laid out as
           ``[running top-k | slot tiles]``, then takes one stable top-k —
           so earlier probes (and the incumbent top-k) win ties, exactly
           like the reference path's concatenation order.

        Distances stay in shifted ADC space throughout; thresholds are
        converted to true space (``+ bias``) only for the bound tests.
        Returns ``(dists, ids, valid)`` like the other scan strategies.
        """
        nq = len(q)
        offsets = self._cell_offsets
        sizes = offsets[1:] - offsets[:-1]
        radii = self._code_radii
        rmax = self._cell_radius_max
        rmin = self._cell_radius_min
        metric = self.metric

        bias64 = None
        if use_adc:
            bias = table.get("bias")
            if bias is not None:
                bias64 = bias.astype(np.float64)
        if metric == "ip":
            q64 = q.astype(np.float64)
            qsq = np.einsum("ij,ij->i", q64, q64)
            # Keep-side inflated |q| (the IP bound divides by it).
            qnorm = np.sqrt(qsq) * (1.0 + 1e-3) + 1e-9
            c64 = self.centroids.astype(np.float64)
            csq = np.einsum("ij,ij->i", c64, c64)

        cur_d = np.full((nq, k), np.inf, dtype=np.float32)
        cur_i = np.full((nq, k), -1, dtype=np.int64)
        rows = np.arange(nq)[:, np.newaxis]
        n_ids = len(self._ids)
        cells_pruned = 0
        blocks_pruned = 0

        s0 = 0
        chunk = 1
        while s0 < probe:
            s1 = min(s0 + chunk, probe)
            chunk = min(chunk * 2, self._STREAM_CHUNK)
            ncs = s1 - s0
            sub_cells = probe_cells[:, s0:s1]
            sub_cd = cell_dists[:, s0:s1].astype(np.float64)
            s0 = s1
            # Running thresholds in *true* distance space, keep-side inflated.
            tau = cur_d[:, k - 1].astype(np.float64)
            if bias64 is not None:
                tau = tau + bias64
            tau = inflate_threshold(tau)
            if metric == "l2":
                lo_cut, hi_cut = l2_radius_window(sub_cd, tau[:, np.newaxis])
            else:
                # q.c recovered from the L2 centroid distances already in hand.
                qc = (qsq[:, np.newaxis] + csq[sub_cells] - sub_cd) * 0.5
                lo_cut = ip_radius_cut(qc, qnorm[:, np.newaxis], tau[:, np.newaxis])
                hi_cut = np.full_like(lo_cut, np.inf)
            occupied = sizes[sub_cells] > 0
            alive = (
                occupied
                & (rmax[sub_cells] >= lo_cut)
                & (rmin[sub_cells] <= hi_cut)
            )
            cells_pruned += int(np.count_nonzero(occupied & ~alive))
            if not alive.any():
                continue

            # Group surviving (query, slot) pairs cell-major, like the
            # sparse scan — each cell slice is scanned once per round.
            pair_q, pair_s = np.nonzero(alive)
            flat_cells = sub_cells[pair_q, pair_s]
            order = np.argsort(flat_cells, kind="stable")
            sorted_cells = flat_cells[order]
            starts = np.flatnonzero(
                np.concatenate(([True], sorted_cells[1:] != sorted_cells[:-1]))
            )
            bounds = np.append(starts, len(sorted_cells))
            groups = []
            wmax = 0
            for b in range(len(starts)):
                members = order[bounds[b] : bounds[b + 1]]
                cell = int(sorted_cells[bounds[b]])
                glo, ghi = int(offsets[cell]), int(offsets[cell + 1])
                gq = pair_q[members]
                gs = pair_s[members]
                rcell = radii[glo:ghi]
                lo_v = lo_cut[gq, gs].min()
                hi_v = hi_cut[gq, gs].max()
                # Contiguous surviving slice of the radius-sorted cell.
                start = (
                    int(np.searchsorted(rcell, lo_v, side="left"))
                    if lo_v > rcell[0]
                    else 0
                )
                stop = (
                    ghi - glo
                    if hi_v >= rcell[-1]
                    else int(np.searchsorted(rcell, hi_v, side="right"))
                )
                if stop <= start:
                    cells_pruned += len(members)
                    continue
                skipped = start + (ghi - glo - stop)
                if skipped:
                    blocks_pruned += (skipped // PRUNE_BLOCK) * len(members)
                groups.append((gq, gs, glo + start, glo + stop))
                wmax = max(wmax, stop - start)
            if not groups:
                continue

            # Merge buffer: [running top-k | one tile per chunk slot]. Column
            # order makes the stable top-k prefer the incumbents, then
            # earlier probe slots, then within-cell storage order — the
            # reference path's candidate order.
            md = ws.take("stream_merge", (nq, k + ncs * wmax))
            md[:, :k] = cur_d
            md[:, k:] = np.inf
            srcpos = ws.take("stream_srcpos", (nq, ncs), dtype=np.int64, fill=0)
            wcols = np.arange(wmax, dtype=np.int64)
            for gq, gs, a, b2 in groups:
                span = b2 - a
                codes = self._codes[a:b2]
                sub_rows = None if len(gq) == nq else gq
                if use_adc:
                    dists = self.quantizer.adc_distances(
                        table,
                        codes,
                        rows=sub_rows,
                        code_sqnorms=None if norms is None else norms[a:b2],
                        shifted=True,
                        ws=ws,
                    )
                else:
                    qg = q if sub_rows is None else q[gq]
                    dists = pairwise_distance(qg, self.quantizer.decode(codes), metric)
                cols = k + gs[:, np.newaxis] * wmax + wcols[np.newaxis, :span]
                md[gq[:, np.newaxis], cols] = dists
                srcpos[gq, gs] = a

            out_d, pos = top_k(md, k)
            p = pos - k
            from_new = p >= 0
            pc = np.maximum(p, 0)
            slot = pc // wmax
            within = pc - slot * wmax
            src = srcpos[rows, slot] + within
            np.clip(src, 0, n_ids - 1, out=src)
            incumbent = cur_i[rows, np.minimum(pos, k - 1)]
            new_i = np.where(from_new, self._ids[src], incumbent)
            valid = np.isfinite(out_d)
            cur_d = out_d
            cur_i = np.where(valid, new_i, -1)

        registry = get_registry()
        if cells_pruned:
            registry.counter(
                "ivf_cells_pruned_total",
                "probed (query, cell) pairs skipped by the streaming scan's "
                "triangle-inequality bound",
            ).inc(cells_pruned)
        if blocks_pruned:
            registry.counter(
                "ivf_blocks_pruned_total",
                f"{PRUNE_BLOCK}-code blocks skipped inside surviving cells "
                "by the per-code radius window",
            ).inc(blocks_pruned)
        return cur_d, cur_i, np.isfinite(cur_d)

    def _scan_dense(self, q, k, probe_cells, use_adc, table, norms, ws=None):
        """Full-corpus kernel + probe mask; shifted distances, ids, validity."""
        nq = len(q)
        if self._code_cells is None:
            sizes = self._cell_offsets[1:] - self._cell_offsets[:-1]
            self._code_cells = np.repeat(np.arange(self.nlist, dtype=np.int32), sizes)
        if use_adc:
            dists = self.quantizer.adc_distances(
                table, self._codes, code_sqnorms=norms, shifted=True, ws=ws
            )
        else:
            vecs, _ = self.reconstruct()
            dists = pairwise_distance(q, vecs, self.metric)
        probed = np.zeros((nq, self.nlist), dtype=bool)
        probed[np.arange(nq)[:, np.newaxis], probe_cells] = True
        dists[~probed[:, self._code_cells]] = np.inf
        out_d, pos = top_k(dists, k)
        valid = np.isfinite(out_d)
        out_i = np.where(valid, self._ids[np.clip(pos, 0, len(self._ids) - 1)], -1)
        return out_d, out_i, valid

    def _scan_sparse(self, q, k, probe, probe_cells, use_adc, table, norms, ws=None):
        """Per-probed-cell kernels scattered into a padded slot-major buffer.

        Slot r of query qi owns buffer columns ``[r*width, r*width + size)``
        (width = largest probed cell), so winning buffer positions map back
        to stored ids via the CSR offsets with pure arithmetic.
        """
        nq = len(q)
        offsets = self._cell_offsets
        sizes = offsets[1:] - offsets[:-1]
        width = int(sizes[probe_cells].max())
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        if width == 0:
            return out_d, out_i, np.zeros((nq, k), dtype=bool)
        if ws is None:
            buf = np.full((nq, probe * width), np.inf, dtype=np.float32)
        else:
            buf = ws.take("sparse_buf", (nq, probe * width), fill=np.inf)

        # Invert the (query, cell) probe matrix into cell-major groups.
        flat = probe_cells.ravel()
        order = np.argsort(flat, kind="stable")
        sorted_cells = flat[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_cells[1:] != sorted_cells[:-1]))
        )
        bounds = np.append(starts, len(sorted_cells))
        wcols = np.arange(width)

        for b in range(len(starts)):
            cell = int(sorted_cells[bounds[b]])
            lo, hi = int(offsets[cell]), int(offsets[cell + 1])
            if hi == lo:
                continue
            members = order[bounds[b] : bounds[b + 1]]
            q_idx = members // probe
            slot = members % probe
            codes = self._codes[lo:hi]
            if use_adc:
                dists = self.quantizer.adc_distances(
                    table,
                    codes,
                    rows=q_idx,
                    code_sqnorms=None if norms is None else norms[lo:hi],
                    shifted=True,
                    ws=ws,
                )
            else:
                dists = pairwise_distance(
                    q[q_idx], self.quantizer.decode(codes), self.metric
                )
            cols = slot[:, np.newaxis] * width + wcols[np.newaxis, : hi - lo]
            buf[q_idx[:, np.newaxis], cols] = dists

        out_d, pos = top_k(buf, k)
        rows = np.arange(nq)[:, np.newaxis]
        # Map winning buffer positions back to stored ids: position -> probe
        # slot -> cell -> CSR offset + within-cell rank.
        slot_of = pos // width
        within = pos - slot_of * width
        cells_of = probe_cells[rows, np.clip(slot_of, 0, probe - 1)]
        id_pos = offsets[cells_of] + within
        valid = np.isfinite(out_d)
        np.copyto(
            out_i, self._ids[np.clip(id_pos, 0, len(self._ids) - 1)], where=valid
        )
        return out_d, out_i, valid

    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        use_adc: bool | None = None,
        prune: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search, optionally overriding the index's default nProbe.

        ``use_adc=None`` (the default) enables asymmetric distance
        computation whenever the quantizer supports it for this metric;
        ``False`` forces the decode-then-GEMM kernel. ``prune=None``
        auto-enables the streaming threshold-pruned scan for gather codecs
        (PQ/OPQ); ``True``/``False`` force it on or off for any codec.
        """
        return super().search(queries, k, nprobe=nprobe, use_adc=use_adc, prune=prune)

    def search_reference(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pre-optimisation slow path, retained for equivalence checking.

        Scans query-major: per query, decode every probed cell (cached per
        call), concatenate the candidates, and run one decode-then-GEMM
        top-k. This is the baseline the bench harness compares against; the
        equivalence suite asserts :meth:`search` matches it exactly.
        """
        if not self.is_trained:
            raise RuntimeError("IVFIndex must be trained before search_reference()")
        from .distances import as_matrix

        q = as_matrix(queries)
        self._check_dim(q)
        k = int(k)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        nq = len(q)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        if self.ntotal == 0:
            return out_d, out_i
        probe = self._resolve_probe(nprobe)
        cell_d = pairwise_distance(q, self.centroids, "l2")
        _, probe_cells = top_k(cell_d, probe)

        decoded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for qi in range(nq):
            cand_vecs: list[np.ndarray] = []
            cand_ids: list[np.ndarray] = []
            for cell in probe_cells[qi]:
                cell = int(cell)
                if cell < 0:
                    continue
                if cell not in decoded:
                    decoded[cell] = self.cell_vectors(cell)
                vecs, ids = decoded[cell]
                if len(ids):
                    cand_vecs.append(vecs)
                    cand_ids.append(ids)
            if not cand_vecs:
                continue
            vecs = np.concatenate(cand_vecs, axis=0)
            ids = np.concatenate(cand_ids)
            dists = pairwise_distance(q[qi : qi + 1], vecs, self.metric)
            d_row, order = top_k(dists, k)
            out_d[qi] = d_row[0]
            valid = order[0] >= 0
            out_i[qi, valid] = ids[order[0][valid]]
        return out_d, out_i

    def memory_bytes(self) -> int:
        payload = int(self.ntotal) * self.quantizer.code_size()
        ids = int(self.ntotal) * 8
        cents = 0 if self.centroids is None else self.centroids.size * 4
        return payload + ids + cents


@register_index("ivf_flat")
def ivf_flat(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with raw float32 payloads (``IVFFlat``)."""
    return IVFIndex(dim, metric, quantizer=IdentityQuantizer(dim), **kwargs)


@register_index("ivf_sq8")
def ivf_sq8(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with 8-bit scalar quantization — the paper's production index."""
    return IVFIndex(dim, metric, quantizer=make_quantizer("sq8", dim), **kwargs)


@register_index("ivf_sq4")
def ivf_sq4(dim: int, metric: str = "l2", **kwargs) -> IVFIndex:
    """IVF with 4-bit scalar quantization."""
    return IVFIndex(dim, metric, quantizer=make_quantizer("sq4", dim), **kwargs)


@register_index("ivf_pq")
def ivf_pq(dim: int, metric: str = "l2", *, m: int = 8, **kwargs) -> IVFIndex:
    """IVF with product quantization (``m`` byte codes)."""
    return IVFIndex(dim, metric, quantizer=make_quantizer(f"pq{m}", dim), **kwargs)
