"""Common interface for all vector indices in :mod:`repro.ann`.

The interface intentionally mirrors the small slice of the FAISS API the
Hermes paper relies on: ``train``, ``add``, and ``search`` returning
``(distances, ids)`` top-k matrices. Indices register themselves in
:data:`INDEX_REGISTRY` under a factory-string key (e.g. ``"ivf_sq8"``) so
experiment configs can name index types declaratively, the way the paper's
artifact names its index construction variants.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from .distances import as_matrix, validate_metric


class VectorIndex(abc.ABC):
    """Abstract k-NN index over fixed-dimension dense vectors."""

    def __init__(self, dim: int, metric: str = "l2") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.metric = validate_metric(metric)
        self.is_trained = False
        self.ntotal = 0

    # -- lifecycle -------------------------------------------------------
    def train(self, vectors: np.ndarray) -> None:
        """Learn any data-dependent structure (clusters, codebooks).

        Indices without a training phase (e.g. Flat) are trained trivially.
        """
        self._check_dim(vectors)
        self._train(as_matrix(vectors))
        self.is_trained = True

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Add vectors; returns the assigned contiguous int64 ids."""
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before add()")
        vecs = as_matrix(vectors)
        self._check_dim(vecs)
        start = self.ntotal
        self._add(vecs)
        self.ntotal += len(vecs)
        return np.arange(start, self.ntotal, dtype=np.int64)

    def search(
        self, queries: np.ndarray, k: int, **kwargs
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, ids)`` of the *k* nearest stored vectors.

        Distances follow the metric-agnostic convention of
        :func:`repro.ann.distances.pairwise_distance` (smaller is closer);
        missing results are padded with ``inf`` / ``-1``.  Extra keyword
        arguments are forwarded to the concrete index's ``_search`` (e.g.
        ``nprobe`` / ``use_adc`` for :class:`repro.ann.ivf.IVFIndex`).
        """
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before search()")
        if self.ntotal == 0:
            q = as_matrix(queries)
            return (
                np.full((len(q), k), np.inf, dtype=np.float32),
                np.full((len(q), k), -1, dtype=np.int64),
            )
        q = as_matrix(queries)
        self._check_dim(q)
        return self._search(q, int(k), **kwargs)

    # -- introspection ----------------------------------------------------
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate resident size of the index payload in bytes."""

    # -- hooks -------------------------------------------------------------
    def _train(self, vectors: np.ndarray) -> None:  # pragma: no cover - default
        del vectors

    @abc.abstractmethod
    def _add(self, vectors: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]: ...

    def _check_dim(self, vectors: np.ndarray) -> None:
        arr = np.asarray(vectors)
        d = arr.shape[-1]
        if d != self.dim:
            raise ValueError(f"vector dim {d} != index dim {self.dim}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dim={self.dim}, metric={self.metric!r}, "
            f"ntotal={self.ntotal}, trained={self.is_trained})"
        )


#: Maps factory-string keys (``"flat"``, ``"ivf_sq8"``, ...) to constructors
#: taking ``(dim, metric, **kwargs)``.
INDEX_REGISTRY: dict[str, Callable[..., VectorIndex]] = {}


def register_index(key: str) -> Callable[[Callable[..., VectorIndex]], Callable[..., VectorIndex]]:
    """Class decorator registering a constructor under *key*."""

    def deco(factory: Callable[..., VectorIndex]) -> Callable[..., VectorIndex]:
        if key in INDEX_REGISTRY:
            raise ValueError(f"index key {key!r} already registered")
        INDEX_REGISTRY[key] = factory
        return factory

    return deco


def build_index(key: str, dim: int, metric: str = "l2", **kwargs) -> VectorIndex:
    """Instantiate a registered index type by its factory-string key."""
    try:
        factory = INDEX_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown index key {key!r}; registered: {sorted(INDEX_REGISTRY)}"
        ) from None
    return factory(dim=dim, metric=metric, **kwargs)
