"""Triangle-inequality bounds for the streaming cell-pruned IVF scan.

The streaming scan visits a query's probed cells in ascending
centroid-distance order while carrying the running k-th-best distance
``tau``. For every stored code the index precomputes its **residual
radius** ``r = |decode(code) - centroid(cell)|`` once at build time; the
triangle inequality then gives sound lower bounds on the code's distance to
the query from the already-computed query→centroid distance alone:

- **L2** (squared distances throughout the scan): with ``cd = |q - c|^2``,

      |q - p| >= | |q - c| - |p - c| |   =>   d(q, p) >= (sqrt(cd) - r)^2

  so a code can only beat ``tau`` when its radius lies inside the annulus
  ``sqrt(cd) - sqrt(tau) <= r <= sqrt(cd) + sqrt(tau)``.
- **IP** (distance = negated inner product): decompose ``p = c + e`` with
  ``|e| = r``; then ``-q.p = -q.c - q.e >= -q.c - |q| r``, so codes with
  ``r < (-q.c - tau) / |q|`` cannot beat ``tau``. ``q.c`` is recovered from
  the L2 centroid distances the scan already has (cells are always assigned
  by L2): ``q.c = (|q|^2 + |c|^2 - cd) / 2``.

Because each cell stores its codes sorted by radius, both bounds turn into a
*contiguous* surviving slice per (query, cell) — found with two binary
searches — and a whole cell dies when the slice is empty. All quantities are
compared in exact (unshifted) distance space.

Soundness under float32: the bounds must never prune a code the reference
path would return, so every approximation errs on the keep side. Radii are
inflated by a relative + absolute epsilon at build time, thresholds are
inflated by :func:`inflate_threshold` before each comparison, and query
norms are inflated before dividing. The margins are matched to the ADC
reassociation noise the equivalence suite already tolerates
(``rtol=1e-3 / atol=5e-3``), with head-room on top.
"""

from __future__ import annotations

import numpy as np

#: Relative / absolute threshold slack absorbing float32 kernel noise: the
#: ADC fast paths and the reference GEMM path reassociate reductions, so two
#: evaluations of the same distance differ by ~1e-3 relative. Pruning
#: decisions add this margin on top so no borderline candidate is cut.
THRESHOLD_REL_EPS = 2e-3
THRESHOLD_ABS_EPS = 1e-2

#: Build-time inflation applied to stored residual radii (keep-side bias).
RADIUS_REL_EPS = 1e-3
RADIUS_ABS_EPS = 1e-6


def residual_radii(decoded: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Inflated ``|decode(code) - centroid|`` per row (float32).

    ``decoded`` and ``centroids`` are row-aligned ``(n, dim)`` arrays (the
    centroid of each code's owning cell). The norm accumulates in float64
    and the result is inflated by the keep-side epsilons before the float32
    round-trip, so a stored radius is never an underestimate.
    """
    diff = decoded.astype(np.float64) - centroids.astype(np.float64)
    r = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    return (r * (1.0 + RADIUS_REL_EPS) + RADIUS_ABS_EPS).astype(np.float32)


def inflate_threshold(tau: np.ndarray) -> np.ndarray:
    """Keep-side inflated copy of the running k-th-best distances.

    Handles ``+inf`` rows (fewer than k candidates seen: nothing prunable)
    and slightly negative shifted-space artefacts transparently.
    """
    return tau + np.abs(tau) * THRESHOLD_REL_EPS + THRESHOLD_ABS_EPS


def l2_radius_window(cell_d: np.ndarray, tau: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-(query, cell) surviving radius window ``[lo, hi]`` under L2.

    ``cell_d`` holds squared query→centroid distances, ``tau`` the (already
    inflated) squared-distance thresholds, broadcastable against ``cell_d``.
    Codes with radius outside the window satisfy ``(sqrt(cd) - r)^2 > tau``
    and provably cannot enter the top-k. ``tau = +inf`` yields the full
    ``[-inf, +inf]`` window (no pruning).
    """
    root_t = np.sqrt(np.maximum(tau, 0.0))
    root_c = np.sqrt(np.maximum(cell_d, 0.0))
    return root_c - root_t, root_c + root_t


def ip_radius_cut(
    query_dot_centroid: np.ndarray, query_norms: np.ndarray, tau: np.ndarray
) -> np.ndarray:
    """Minimum surviving radius per (query, cell) under inner product.

    Codes with ``r < cut`` satisfy ``-q.p >= -q.c - |q| r > tau`` and cannot
    enter the top-k; there is no upper cut (a large residual can always point
    along the query). ``query_norms`` must be keep-side inflated (``>= |q|``)
    by the caller; zero-norm queries score every candidate identically, so
    their cut collapses to all-or-nothing on the constant ``-q.c``.
    """
    norms = np.maximum(query_norms, 1e-30)
    cut = (-query_dot_centroid - tau) / norms
    tiny = query_norms <= 1e-12
    if np.any(tiny):
        all_or_nothing = np.where(-query_dot_centroid > tau, np.inf, -np.inf)
        cut = np.where(tiny, all_or_nothing, cut)
    return cut
