"""Append-only delta index: the mutable half of a live IVF shard.

Hermes's datastore is built offline and served frozen, but the north-star
deployment needs the corpus to change while queries are in flight. The
delta index is the classic LSM answer: recent inserts land in a small
append-only *memtable* that is brute-force scanned alongside the sealed IVF
index, deletes become tombstones that filter both sides, and a background
compaction folds everything back into a fresh sealed index (see
``IndexShard.compact``).

Equivalence contract (enforced by ``tests/ann/test_mutation_equivalence.py``):

- Vectors are encoded with the *sealed index's* quantizer at insert time, and
  their IVF cell is planned from the raw vector with the same
  ``assign_to_centroids`` call ``IVFIndex.add`` uses — so compaction installs
  exactly the rows an offline rebuild would have produced.
- Distances are computed with the same ADC kernel (shifted table, bias added
  after selection, L2 clamp) as the sealed scan, and the merge concatenates
  ``[sealed | delta]`` columns before a stable ``top_k``, so exact fp ties
  resolve sealed-first. Result ids are therefore identical to an offline
  rebuild *except* within groups of code-identical duplicates: BLAS kernels
  round identical columns differently depending on matrix position (remainder
  lanes), so ordering inside such a group is implementation-defined.
"""

from __future__ import annotations

import numpy as np

from .distances import pairwise_distance, top_k
from .kmeans import assign_to_centroids


class DeltaIndex:
    """Flat brute-force memtable over one shard's recent inserts.

    Row ``r`` of the delta is the shard's local id ``sealed_ntotal + r``;
    rows are append-only and never reordered, so the stable ``top_k``
    tie-break reproduces insertion order. The delta itself is not
    thread-safe: the owning :class:`~repro.core.clustering.IndexShard`
    serializes mutations under its lock and searches a frozen
    :meth:`snapshot` taken under that lock, so a scan never races a
    concurrent ``add()``.
    """

    def __init__(self, sealed) -> None:
        self.dim = sealed.dim
        self.metric = sealed.metric
        self.quantizer = sealed.quantizer
        self.centroids = sealed.centroids
        self._frag_codes: list[np.ndarray] = []
        self._frag_cells: list[np.ndarray] = []
        # Concatenated views, rebuilt lazily after an append.
        self._codes: np.ndarray | None = None
        self._cells: np.ndarray | None = None
        self._sqnorms: np.ndarray | None = None
        self.ntotal = 0

    @classmethod
    def restore(cls, sealed, codes: np.ndarray, cells: np.ndarray) -> "DeltaIndex":
        """Rebuild a delta from persisted ``(codes, cells)`` state.

        Row order is preserved exactly — it *is* the local-id order — so a
        reloaded shard merges and tie-breaks identically to the one saved.
        """
        delta = cls(sealed)
        if len(codes):
            delta._frag_codes.append(np.ascontiguousarray(codes, dtype=np.uint8))
            delta._frag_cells.append(np.asarray(cells, dtype=np.int64))
            delta.ntotal = len(codes)
        return delta

    def snapshot(self) -> "DeltaIndex":
        """A frozen copy of the current rows, safe to scan lock-free.

        Materializes the concatenated code/cell views (and ADC norms when
        the metric needs them) while the caller holds the owning shard's
        lock, then hands them to a fresh delta with no fragment lists — so
        searching the copy outside the lock can never observe a concurrent
        ``add()`` to the original. The views are cached on the original
        until its next append, so back-to-back snapshots are O(1).
        """
        dup = DeltaIndex.__new__(DeltaIndex)
        dup.dim = self.dim
        dup.metric = self.metric
        dup.quantizer = self.quantizer
        dup.centroids = self.centroids
        dup._frag_codes = []
        dup._frag_cells = []
        dup._codes = self.codes
        dup._cells = self.cells
        dup._sqnorms = (
            self._adc_sqnorms()
            if self.quantizer.supports_adc(self.metric)
            and self.quantizer.needs_code_sqnorms(self.metric)
            else None
        )
        dup.ntotal = self.ntotal
        return dup

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Encode and append ``vectors``; returns their planned IVF cells.

        The cell of each row is fixed *now*, from the raw vector — identical
        to what ``IVFIndex.add`` would assign — so compaction needs no raw
        vectors and lands every row where the offline build would have.
        """
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        cells = assign_to_centroids(vectors, self.centroids, "l2")
        self._frag_codes.append(self.quantizer.encode(vectors))
        self._frag_cells.append(cells.astype(np.int64))
        self._codes = None
        self._cells = None
        self._sqnorms = None
        self.ntotal += len(vectors)
        return cells

    @property
    def codes(self) -> np.ndarray:
        """All delta codes, row ``r`` = delta position ``r``."""
        if self._codes is None:
            if self._frag_codes:
                self._codes = np.ascontiguousarray(
                    np.concatenate(self._frag_codes, axis=0)
                )
            else:
                self._codes = np.empty((0, 0), dtype=np.uint8)
        return self._codes

    @property
    def cells(self) -> np.ndarray:
        """Planned IVF cell per delta row (fixed at insert time)."""
        if self._cells is None:
            if self._frag_cells:
                self._cells = np.concatenate(self._frag_cells)
            else:
                self._cells = np.empty(0, dtype=np.int64)
        return self._cells

    def reconstruct(self) -> np.ndarray:
        """Decoded delta vectors in insertion order."""
        if not self.ntotal:
            return np.empty((0, self.dim), dtype=np.float32)
        return self.quantizer.decode(self.codes)

    def _adc_sqnorms(self) -> np.ndarray:
        if self._sqnorms is None:
            self._sqnorms = self.quantizer.code_sqnorms(self.codes)
        return self._sqnorms

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Brute-force top-k over the delta rows.

        Returns ``(distances, positions)`` where positions are delta row
        indices (``-1`` padding); distances are in the same *true* space as
        ``IVFIndex.search`` output — the shifted ADC kernel plus the per-query
        bias and L2 clamp, applied in the same order as the sealed scan.
        """
        q = np.asarray(queries, dtype=np.float32)
        nq = len(q)
        if not self.ntotal:
            return (
                np.full((nq, k), np.inf, dtype=np.float32),
                np.full((nq, k), -1, dtype=np.int64),
            )
        use_adc = self.quantizer.supports_adc(self.metric)
        if use_adc:
            table = self.quantizer.adc_table(q, self.metric)
            norms = (
                self._adc_sqnorms()
                if self.quantizer.needs_code_sqnorms(self.metric)
                else None
            )
            dists = self.quantizer.adc_distances(
                table, self.codes, code_sqnorms=norms, shifted=True
            )
        else:
            dists = pairwise_distance(q, self.reconstruct(), self.metric)
        out_d, out_i = top_k(dists, k)
        if use_adc:
            bias = table.get("bias")
            if bias is not None:
                out_d += bias[:, np.newaxis]
            if self.metric == "l2":
                np.maximum(out_d, 0.0, out=out_d)
            out_d[np.asarray(out_i) < 0] = np.inf
        return out_d, out_i

    def memory_bytes(self) -> int:
        return int(self.ntotal) * (self.quantizer.code_size() + 8)
