"""Thread-pool helpers for the offline build path.

Index construction fans out over embarrassingly parallel units — candidate
K-means seeds, per-cluster IVF shard builds, PQ subspace codebooks. All of
them bottom out in numpy GEMMs, which release the GIL, so plain threads give
near-linear speedups on multi-core hosts without any pickling. Every unit is
seeded independently, so results are bit-identical regardless of the worker
count; the parallel-vs-serial equivalence tests pin that down.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def resolve_workers(workers: "int | None", n_tasks: int) -> int:
    """Effective worker count: ``None`` means one per task up to the CPUs."""
    if n_tasks <= 0:
        return 1
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return max(1, min(workers, n_tasks))


def run_tasks(tasks: Sequence[Callable[[], T]], workers: "int | None" = None) -> "list[T]":
    """Run *tasks* and return their results in task order.

    With one effective worker the pool is skipped entirely, keeping serial
    runs free of executor overhead (and of confusing profiles/tracebacks).
    """
    n = resolve_workers(workers, len(tasks))
    if n == 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=n) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [f.result() for f in futures]
