"""Thread- and process-pool helpers for parallel build and search.

Index construction fans out over embarrassingly parallel units — candidate
K-means seeds, per-cluster IVF shard builds, PQ subspace codebooks. All of
them bottom out in numpy GEMMs, which release the GIL, so plain threads give
near-linear speedups on multi-core hosts without any pickling. Every unit is
seeded independently, so results are bit-identical regardless of the worker
count; the parallel-vs-serial equivalence tests pin that down.

For *search*, :class:`ProcessShardPool` adds a process-parallel fan-out over
cluster shards for hosts where the per-query Python bookkeeping (not the
GEMMs) dominates. The cost model is the opposite of the build path: shard
payloads are large and long-lived while queries are tiny, so the pool ships
each shard's arrays into POSIX shared memory exactly once, workers attach
zero-copy at startup, and a search round-trips only the query batch, the
parameters, and the ``(k, nq)`` result block. Workers rebuild read-only
:class:`~repro.ann.ivf.IVFIndex` views over the shared segments; every lazy
scan structure is warmed in the parent *before* export, so a worker never
writes to a segment and thread- and process-mode results are bit-identical.
A worker death (OOM-kill, segfault) surfaces as
:class:`~repro.core.errors.ShardCrashedError` on the in-flight search — never
a hang — and marks the pool broken for subsequent calls.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def resolve_workers(workers: "int | None", n_tasks: int) -> int:
    """Effective worker count: ``None`` means one per task up to the CPUs."""
    if n_tasks <= 0:
        return 1
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return max(1, min(workers, n_tasks))


def run_tasks(tasks: Sequence[Callable[[], T]], workers: "int | None" = None) -> "list[T]":
    """Run *tasks* and return their results in task order.

    With one effective worker the pool is skipped entirely, keeping serial
    runs free of executor overhead (and of confusing profiles/tracebacks).
    """
    n = resolve_workers(workers, len(tasks))
    if n == 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=n) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [f.result() for f in futures]


# -- process-parallel shard search --------------------------------------------

#: Unique token per pool instance; keys the worker-side shard registry so two
#: pools in one parent (e.g. tests) never collide inside a reused worker.
_POOL_TOKENS = itertools.count()

#: Worker-process-global registry: token -> attached shard state. Populated by
#: the pool initializer, read by every search task.
_WORKER_POOLS: "dict[int, dict]" = {}


def _shm_export(array: np.ndarray) -> "tuple[shared_memory.SharedMemory, dict]":
    """Copy *array* into a fresh shared-memory segment (parent side)."""
    arr = np.ascontiguousarray(array)
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
    return seg, {"name": seg.name, "shape": arr.shape, "dtype": arr.dtype.str}


def _shm_attach(spec: dict, segments: list) -> np.ndarray:
    """Attach a read-only view of an exported segment (worker side)."""
    # Attaching re-registers the name with the (shared) resource tracker, but
    # the tracker cache is a set, so the parent's unlink-time unregister still
    # balances it — workers must NOT unregister themselves.
    seg = shared_memory.SharedMemory(name=spec["name"])
    segments.append(seg)  # keep the mmap alive as long as the views
    view = np.ndarray(tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=seg.buf)
    view.flags.writeable = False
    return view


def _pool_worker_init(token: int, shard_specs: "list[dict]") -> None:
    """Worker initializer: attach every shard once, rebuild index views."""
    from .ivf import IVFIndex
    from .persistence import _restore_quantizer

    segments: list = []
    shards: dict = {}
    for spec in shard_specs:
        arrays = {key: _shm_attach(s, segments) for key, s in spec["arrays"].items()}
        index = IVFIndex(
            spec["dim"],
            spec["metric"],
            nlist=spec["nlist"],
            nprobe=spec["nprobe"],
            quantizer=_restore_quantizer(spec["quantizer"], arrays),
        )
        index.centroids = arrays["centroids"]
        index.is_trained = True
        index._pending_codes = [[] for _ in range(index.nlist)]
        index._pending_ids = [[] for _ in range(index.nlist)]
        index._codes = arrays["codes"]
        index._ids = arrays["ids"]
        index._cell_offsets = arrays["cell_offsets"]
        index._code_cells = np.repeat(
            np.arange(index.nlist, dtype=np.int32), np.diff(index._cell_offsets)
        )
        if "code_sqnorms" in arrays:
            index._code_sqnorms = arrays["code_sqnorms"]
        index._install_radii(arrays["code_radii"])
        index.ntotal = len(arrays["ids"])
        index._dirty = False
        shards[spec["shard_id"]] = (index, arrays["global_ids"])
    _WORKER_POOLS[token] = {"shards": shards, "segments": segments}


def _pool_worker_ready(token: int) -> bool:
    """Startup probe: proves the initializer ran in this worker."""
    return token in _WORKER_POOLS


def _pool_worker_search(
    token: int,
    shard_id: int,
    queries: np.ndarray,
    k: int,
    nprobe: "int | None",
    chaos_delay_s: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """One shard search inside a worker; mirrors ``IndexShard.search``."""
    index, global_ids = _WORKER_POOLS[token]["shards"][shard_id]
    if chaos_delay_s:
        time.sleep(chaos_delay_s)  # fault-injection window for crash tests
    dists, local = index.search(queries, k, nprobe=nprobe)
    global_out = np.full_like(local, -1)
    valid = local >= 0
    global_out[valid] = global_ids[local[valid]]
    return dists, global_out


class ProcessShardPool:
    """Persistent worker processes searching shared-memory shard views.

    Construction warms every shard's lazy scan state (compaction, ADC norms,
    pruning radii — in the *parent's* shard objects, so thread-mode searches
    on the same shards stay bit-identical), exports the shard arrays into
    shared memory once, and spawns the workers, which attach at startup.
    ``search`` then ships only ``(queries, k, nprobe)`` per call.

    The pool must be :meth:`close`-d (or used as a context manager) to free
    the shared segments; a broken pool (dead worker) raises
    ``ShardCrashedError`` from every subsequent search.
    """

    def __init__(
        self,
        shards: Sequence,
        *,
        workers: "int | None" = None,
        start_timeout_s: float = 120.0,
    ) -> None:
        from .persistence import _quantizer_state

        if not shards:
            raise ValueError("ProcessShardPool needs at least one shard")
        self._token = next(_POOL_TOKENS)
        self._segments: "list[shared_memory.SharedMemory]" = []
        self.broken = False
        self._closed = False
        specs = []
        try:
            for shard in shards:
                index = shard.index
                index.warm_scan_state()
                quant_spec, quant_arrays = _quantizer_state(index.quantizer)
                arrays = {
                    "centroids": index.centroids,
                    "codes": index._codes,
                    "ids": index._ids,
                    "cell_offsets": index._cell_offsets,
                    "code_radii": index._code_radii,
                    "global_ids": shard.global_ids,
                }
                if index._code_sqnorms is not None:
                    arrays["code_sqnorms"] = index._code_sqnorms
                arrays.update(quant_arrays)
                exported = {}
                for key, arr in arrays.items():
                    seg, spec = _shm_export(arr)
                    self._segments.append(seg)
                    exported[key] = spec
                specs.append(
                    {
                        "shard_id": shard.shard_id,
                        "dim": index.dim,
                        "metric": index.metric,
                        "nlist": index.nlist,
                        "nprobe": index.nprobe,
                        "quantizer": quant_spec,
                        "arrays": exported,
                    }
                )
            self.shard_ids = [spec["shard_id"] for spec in specs]
            self._executor = ProcessPoolExecutor(
                max_workers=resolve_workers(workers, len(specs)),
                mp_context=get_context("spawn"),
                initializer=_pool_worker_init,
                initargs=(self._token, specs),
            )
            # Fail fast: surface initializer errors here, not on first search.
            ready = self._executor.submit(_pool_worker_ready, self._token)
            if not ready.result(timeout=start_timeout_s):
                raise RuntimeError("pool worker failed to attach shards")
        except BaseException:
            self.close()
            raise

    def search(
        self,
        shard_id: int,
        queries: np.ndarray,
        k: int,
        *,
        nprobe: "int | None" = None,
        chaos_delay_s: float = 0.0,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Top-k on one shard in a worker; global ids, like ``IndexShard``.

        ``chaos_delay_s`` sleeps inside the worker before scanning — a
        fault-injection hook so crash tests can kill the worker mid-search.
        """
        from ..core.errors import ShardCrashedError

        if self._closed:
            raise RuntimeError("ProcessShardPool is closed")
        if self.broken:
            raise ShardCrashedError(shard_id, "shard worker pool is broken")
        q = np.ascontiguousarray(queries, dtype=np.float32)
        try:
            future = self._executor.submit(
                _pool_worker_search, self._token, shard_id, q, int(k), nprobe,
                float(chaos_delay_s),
            )
            return future.result()
        except BrokenProcessPool as exc:
            self.broken = True
            raise ShardCrashedError(
                shard_id, f"search worker died mid-flight: {exc}"
            ) from exc

    def worker_pids(self) -> "list[int]":
        """PIDs of the live worker processes (crash-test hook)."""
        return [p.pid for p in self._executor._processes.values()]

    def close(self, *, wait: bool = True) -> None:
        """Shut the workers down and free the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(wait=False)
        except Exception:
            pass
