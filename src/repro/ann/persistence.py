"""Index persistence: save/load for the offline index-construction stage.

The paper's artifact builds indices offline (hours to weeks at their scales)
and serves them online; this module provides the corresponding serialization
for our indices using numpy's ``.npz`` container plus a small JSON header.
Flat and IVF indices (any quantizer) round-trip exactly; a clustered
datastore persists as one directory with one file per shard plus a manifest
(see :mod:`repro.core.store_io`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .flat import FlatIndex
from .ivf import IVFIndex
from .quantization import (
    IdentityQuantizer,
    OPQQuantizer,
    ProductQuantizer,
    Quantizer,
    ScalarQuantizer,
)

#: Bumped on any incompatible format change. Version 2 stores IVF payloads
#: as the compacted CSR triple (``codes``/``ids``/``cell_offsets``) instead
#: of one pair of arrays per cell; version 3 additionally persists the
#: derived scan state (per-code squared norms for ADC metrics) so a loaded
#: index serves its first search at warm-index latency instead of paying a
#: full decode pass; version 4 also persists the per-code residual radii
#: (cells stored radius-ascending) that drive the streaming scan's
#: triangle-inequality pruning — loading an older file simply leaves the
#: radii to be recomputed lazily on the first pruned search; version 5 adds
#: live-mutation state at the *datastore directory* level (per-shard
#: ``mutation_<i>.npz`` sidecars carrying delta codes/cells, tombstones,
#: and the compaction generation — see :mod:`repro.core.store_io`) — the
#: index ``.npz`` payload itself is unchanged, and directories saved by
#: older versions simply load with no mutation state. Older versions are
#: still readable.
FORMAT_VERSION = 5
_READABLE_FORMATS = (1, 2, 3, 4, 5)


def _quantizer_state(quantizer: Quantizer) -> tuple[str, dict[str, np.ndarray]]:
    """Serialize a codec to (spec-json, arrays)."""
    if isinstance(quantizer, IdentityQuantizer):
        return json.dumps({"kind": "identity", "dim": quantizer.dim}), {}
    if isinstance(quantizer, ScalarQuantizer):
        spec = {"kind": "scalar", "dim": quantizer.dim, "bits": quantizer.bits}
        return json.dumps(spec), {
            "sq_vmin": quantizer._vmin,
            "sq_scale": quantizer._scale,
        }
    if isinstance(quantizer, OPQQuantizer):
        spec = {"kind": "opq", "dim": quantizer.dim, "m": quantizer.m}
        return json.dumps(spec), {
            "opq_rotation": quantizer._rotation,
            "pq_codebooks": quantizer.pq._codebooks,
        }
    if isinstance(quantizer, ProductQuantizer):
        spec = {"kind": "pq", "dim": quantizer.dim, "m": quantizer.m}
        return json.dumps(spec), {"pq_codebooks": quantizer._codebooks}
    raise TypeError(f"cannot serialize quantizer type {type(quantizer).__name__}")


def _restore_quantizer(spec_json: str, arrays) -> Quantizer:
    spec = json.loads(spec_json)
    kind = spec["kind"]
    if kind == "identity":
        quantizer = IdentityQuantizer(spec["dim"])
        quantizer.is_trained = True
        return quantizer
    if kind == "scalar":
        quantizer = ScalarQuantizer(spec["dim"], bits=spec["bits"])
        quantizer._vmin = arrays["sq_vmin"]
        quantizer._scale = arrays["sq_scale"]
        quantizer.is_trained = True
        return quantizer
    if kind == "pq":
        quantizer = ProductQuantizer(spec["dim"], m=spec["m"])
        quantizer._codebooks = arrays["pq_codebooks"]
        quantizer.is_trained = True
        return quantizer
    if kind == "opq":
        quantizer = OPQQuantizer(spec["dim"], m=spec["m"])
        quantizer._rotation = arrays["opq_rotation"]
        quantizer.pq._codebooks = arrays["pq_codebooks"]
        quantizer.pq.is_trained = True
        quantizer.is_trained = True
        return quantizer
    raise ValueError(f"unknown quantizer kind {kind!r}")


def save_flat(index: FlatIndex, path: "str | Path") -> None:
    """Persist a Flat index to *path* (.npz)."""
    header = json.dumps(
        {
            "format": FORMAT_VERSION,
            "type": "flat",
            "dim": index.dim,
            "metric": index.metric,
        }
    )
    np.savez_compressed(path, header=header, vectors=index.vectors)


def save_ivf(index: IVFIndex, path: "str | Path") -> None:
    """Persist a trained IVF index (any quantizer) to *path* (.npz)."""
    if not index.is_trained:
        raise ValueError("cannot save an untrained IVF index")
    quant_spec, quant_arrays = _quantizer_state(index.quantizer)
    header = json.dumps(
        {
            "format": FORMAT_VERSION,
            "type": "ivf",
            "dim": index.dim,
            "metric": index.metric,
            "nlist": index.nlist,
            "nprobe": index.nprobe,
            "ntotal": index.ntotal,
            "quantizer": quant_spec,
        }
    )
    arrays = {"header": header, "centroids": index.centroids}
    arrays.update(quant_arrays)
    # Derived scan state is persisted too, so a loaded index serves its first
    # search fully warm: per-code squared norms (an expensive full decode
    # pass for PQ/OPQ) and the pruning radii (another decode pass, plus the
    # radius-ascending within-cell reorder the streaming scan relies on).
    index.warm_scan_state()
    arrays["codes"] = index._codes
    arrays["ids"] = index._ids
    arrays["cell_offsets"] = index._cell_offsets
    arrays["code_radii"] = index._code_radii
    if index.quantizer.supports_adc(index.metric) and index.quantizer.needs_code_sqnorms(
        index.metric
    ):
        arrays["code_sqnorms"] = index._adc_code_sqnorms()
    np.savez_compressed(path, **arrays)


def load_index(path: "str | Path") -> "FlatIndex | IVFIndex":
    """Load an index saved by :func:`save_flat` or :func:`save_ivf`."""
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(str(data["header"]))
        if header["format"] not in _READABLE_FORMATS:
            raise ValueError(
                f"index format {header['format']} not in supported {_READABLE_FORMATS}"
            )
        if header["type"] == "flat":
            index = FlatIndex(header["dim"], header["metric"])
            vectors = data["vectors"]
            if len(vectors):
                index.add(vectors)
            return index
        if header["type"] != "ivf":
            raise ValueError(f"unknown index type {header['type']!r}")

        quantizer = _restore_quantizer(header["quantizer"], data)
        index = IVFIndex(
            header["dim"],
            header["metric"],
            nlist=header["nlist"],
            nprobe=header["nprobe"],
            quantizer=quantizer,
        )
        index.centroids = data["centroids"]
        index.is_trained = True
        index._pending_codes = [[] for _ in range(index.nlist)]
        index._pending_ids = [[] for _ in range(index.nlist)]
        if header["format"] >= 2:
            index._codes = data["codes"]
            index._ids = data["ids"]
            index._cell_offsets = data["cell_offsets"]
            # Rebuild the row->cell map eagerly (cheap) so the first search
            # skips the lazy-compaction bookkeeping entirely.
            sizes = np.diff(index._cell_offsets)
            index._code_cells = np.repeat(
                np.arange(index.nlist, dtype=np.int32), sizes
            )
            if "code_sqnorms" in data:
                index._code_sqnorms = data["code_sqnorms"]
            if header["format"] >= 4 and "code_radii" in data:
                index._install_radii(data["code_radii"])
            # Format <= 3 files predate radius-sorted cells: leave the radii
            # unset so the first pruned search warms them lazily.
            index._dirty = False
        else:  # format 1: one (codes, ids) array pair per non-empty cell
            for cell in range(index.nlist):
                key = f"ids_{cell}"
                if key in data:
                    index._pending_codes[cell].append(data[f"codes_{cell}"])
                    index._pending_ids[cell].append(data[key])
            index._dirty = True
        index.ntotal = header["ntotal"]
        return index
