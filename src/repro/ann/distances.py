"""Distance and similarity kernels for dense vector search.

All kernels operate on 2-D float32/float64 arrays of shape ``(n, d)`` and are
vectorised with numpy. Two metrics are supported, matching the two FAISS
metrics the Hermes paper uses:

- ``"l2"``: squared Euclidean distance (lower is closer).
- ``"ip"``: inner product (higher is closer) — the metric used for the
  BGE-style normalised embeddings in the paper's retrieval pipeline.

``pairwise_distance`` returns a matrix where *smaller is always better*; for
inner product the negated similarity is returned so that downstream top-k
selection is metric-agnostic.
"""

from __future__ import annotations

import numpy as np

#: Metrics accepted throughout :mod:`repro.ann`.
VALID_METRICS = ("l2", "ip")


def validate_metric(metric: str) -> str:
    """Return *metric* if supported, else raise ``ValueError``."""
    if metric not in VALID_METRICS:
        raise ValueError(f"unknown metric {metric!r}; expected one of {VALID_METRICS}")
    return metric


def as_matrix(x: np.ndarray, *, name: str = "x") -> np.ndarray:
    """Coerce *x* to a 2-D contiguous float array.

    A single vector of shape ``(d,)`` is promoted to ``(1, d)``.
    """
    arr = np.asarray(x, dtype=np.float32)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def squared_l2(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Pairwise squared L2 distance matrix of shape ``(nq, np)``.

    Uses the expansion ``|q - p|^2 = |q|^2 - 2 q.p + |p|^2`` which is a single
    GEMM plus two rank-1 updates, clamped at zero to absorb rounding noise.
    """
    q = as_matrix(queries, name="queries")
    p = as_matrix(points, name="points")
    q_norms = np.einsum("ij,ij->i", q, q)[:, np.newaxis]
    p_norms = np.einsum("ij,ij->i", p, p)[np.newaxis, :]
    dists = q_norms + p_norms - 2.0 * (q @ p.T)
    np.maximum(dists, 0.0, out=dists)
    return dists


def inner_product(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Pairwise inner-product similarity matrix of shape ``(nq, np)``."""
    q = as_matrix(queries, name="queries")
    p = as_matrix(points, name="points")
    return q @ p.T


def pairwise_distance(queries: np.ndarray, points: np.ndarray, metric: str = "l2") -> np.ndarray:
    """Metric-agnostic distance matrix where smaller always means closer."""
    validate_metric(metric)
    if metric == "l2":
        return squared_l2(queries, points)
    return -inner_product(queries, points)


def top_k(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Select the *k* smallest entries per row of a distance matrix.

    Returns ``(dists, indices)`` each of shape ``(nq, k)``, rows sorted
    ascending. When a row has fewer than *k* columns the result is padded with
    ``inf`` distances and ``-1`` indices, mirroring FAISS's convention.

    Ties break by column index (stable): equal distances are returned in
    ascending-index order, so every selection path — full sort, partitioned
    sort, and the streaming per-cell merge built on top of this — agrees on
    the exact id set for tied candidates (e.g. duplicated vectors).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    nq, n = distances.shape
    kk = min(k, n)
    if kk == n:
        order = np.argsort(distances, axis=1, kind="stable")[:, :kk]
    else:
        part = np.argpartition(distances, kk - 1, axis=1)[:, :kk]
        # argpartition returns the k smallest in arbitrary order; sorting the
        # candidate *indices* first makes the stable value sort below break
        # ties by original column index, matching the full-sort branch.
        part.sort(axis=1)
        row = np.arange(nq)[:, np.newaxis]
        order = part[row, np.argsort(distances[row, part], axis=1, kind="stable")]
        # argpartition may keep an arbitrary *subset* of the columns tied at
        # the k-th value; redo rows where that tie spans the cut with a full
        # stable sort so the lowest-index tied columns always win.
        kth = distances[np.arange(nq), order[:, -1]]
        tied = distances == kth[:, np.newaxis]
        spans_cut = tied.sum(axis=1) > tied[row, order].sum(axis=1)
        for r in np.flatnonzero(spans_cut):
            order[r] = np.argsort(distances[r], kind="stable")[:kk]
    row = np.arange(nq)[:, np.newaxis]
    out_d = distances[row, order]
    if kk < k:
        pad_d = np.full((nq, k - kk), np.inf, dtype=out_d.dtype)
        pad_i = np.full((nq, k - kk), -1, dtype=np.int64)
        out_d = np.concatenate([out_d, pad_d], axis=1)
        order = np.concatenate([order.astype(np.int64), pad_i], axis=1)
    return out_d, order.astype(np.int64)


def normalize(vectors: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Return L2-normalised copies of *vectors* (rows with ~zero norm are kept)."""
    v = as_matrix(vectors, name="vectors")
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    return v / np.maximum(norms, eps)
