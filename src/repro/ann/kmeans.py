"""K-means clustering (Lloyd's algorithm) for IVF training and Hermes splits.

The Hermes paper uses K-means twice:

1. Inside every IVF index, to learn the ``nlist`` coarse centroids (§2.1).
2. At the system level, to disaggregate the datastore into per-node clusters
   of similar documents (§4.1), including a *seed sweep on a small subset* to
   minimise cluster-size imbalance cheaply.

This module provides both, plus the imbalance proxy the paper uses (ratio of
largest to smallest cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distances import as_matrix, pairwise_distance, validate_metric


@dataclass
class KMeansResult:
    """Outcome of one K-means run."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int
    seed: int
    #: per-cluster member counts, length k
    sizes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        k = len(self.centroids)
        self.sizes = np.bincount(self.assignments, minlength=k)

    @property
    def imbalance(self) -> float:
        """Largest/smallest cluster-size ratio (paper §4.1 imbalance proxy).

        ``inf`` when any cluster is empty.
        """
        smallest = int(self.sizes.min())
        if smallest == 0:
            return float("inf")
        return float(self.sizes.max()) / float(smallest)


def _kmeanspp_init(vectors: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2."""
    n = len(vectors)
    centroids = np.empty((k, vectors.shape[1]), dtype=vectors.dtype)
    first = rng.integers(n)
    centroids[0] = vectors[first]
    closest = pairwise_distance(vectors, centroids[0:1], "l2")[:, 0]
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids; fall back
            # to uniform sampling of distinct rows.
            centroids[i] = vectors[rng.integers(n)]
        else:
            probs = closest / total
            choice = rng.choice(n, p=probs)
            centroids[i] = vectors[choice]
        d_new = pairwise_distance(vectors, centroids[i : i + 1], "l2")[:, 0]
        np.minimum(closest, d_new, out=closest)
    return centroids


def kmeans(
    vectors: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 25,
    tol: float = 1e-4,
    init: str = "k-means++",
) -> KMeansResult:
    """Run Lloyd's algorithm and return the fitted clustering.

    Empty clusters are repaired each iteration by re-seeding them at the
    point currently farthest from its assigned centroid, which keeps all
    ``k`` clusters populated (required by the IVF inverted lists).
    """
    vecs = as_matrix(vectors)
    n = len(vecs)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n < k:
        raise ValueError(f"need at least k={k} vectors, got {n}")
    rng = np.random.default_rng(seed)
    if init == "k-means++":
        centroids = _kmeanspp_init(vecs, k, rng)
    elif init == "random":
        centroids = vecs[rng.choice(n, size=k, replace=False)].copy()
    else:
        raise ValueError(f"unknown init {init!r}")

    assignments = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        dists = pairwise_distance(vecs, centroids, "l2")
        assignments = dists.argmin(axis=1)
        point_cost = dists[np.arange(n), assignments]
        new_inertia = float(point_cost.sum())

        # Recompute centroids; repair empties from the worst-fit points.
        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, vecs)
        empties = np.flatnonzero(counts == 0)
        if len(empties):
            worst = np.argsort(point_cost)[::-1]
            for slot, point in zip(empties, worst):
                centroids[slot] = vecs[point]
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / counts[nonempty, np.newaxis]
        else:
            centroids = sums / counts[:, np.newaxis]

        converged = (
            np.isfinite(inertia) and inertia - new_inertia <= tol * max(inertia, 1.0)
        )
        if converged and not len(empties):
            inertia = new_inertia
            break
        inertia = new_inertia

    # Final assignment against the final centroids.
    dists = pairwise_distance(vecs, centroids, "l2")
    assignments = dists.argmin(axis=1)
    inertia = float(dists[np.arange(n), assignments].sum())
    return KMeansResult(
        centroids=centroids.astype(np.float32),
        assignments=assignments,
        inertia=inertia,
        n_iter=n_iter,
        seed=seed,
    )


def kmeans_seed_sweep(
    vectors: np.ndarray,
    k: int,
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7),
    subset_fraction: float = 0.02,
    min_subset: int = 256,
    max_iter: int = 25,
    rng_seed: int = 0,
) -> KMeansResult:
    """Pick the K-means seed with the lowest cluster-size imbalance.

    Mirrors the paper's §4.1 procedure: each candidate seed is evaluated on a
    small random subset (1–2% of the datastore by default) because imbalance
    on the subset tracks imbalance on the full set, then the winning seed is
    re-run on the full data.
    """
    vecs = as_matrix(vectors)
    n = len(vecs)
    if not 0 < subset_fraction <= 1.0:
        raise ValueError(f"subset_fraction must be in (0, 1], got {subset_fraction}")
    subset_size = max(min(n, min_subset), int(n * subset_fraction))
    subset_size = min(subset_size, n)
    if subset_size < k:
        subset_size = min(n, max(k, subset_size))
    rng = np.random.default_rng(rng_seed)
    subset = vecs[rng.choice(n, size=subset_size, replace=False)]

    best_seed = seeds[0]
    best_imbalance = float("inf")
    for seed in seeds:
        trial = kmeans(subset, k, seed=seed, max_iter=max_iter)
        if trial.imbalance < best_imbalance:
            best_imbalance = trial.imbalance
            best_seed = seed
    return kmeans(vecs, k, seed=best_seed, max_iter=max_iter)


def assign_to_centroids(
    vectors: np.ndarray, centroids: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Nearest-centroid assignment for out-of-sample vectors."""
    validate_metric(metric)
    dists = pairwise_distance(vectors, centroids, metric)
    return dists.argmin(axis=1)
