"""K-means clustering for IVF training and Hermes datastore splits.

The Hermes paper uses K-means twice:

1. Inside every IVF index, to learn the ``nlist`` coarse centroids (§2.1).
2. At the system level, to disaggregate the datastore into per-node clusters
   of similar documents (§4.1), including a *seed sweep on a small subset* to
   minimise cluster-size imbalance cheaply.

At the paper's 899M-document scale index construction is the dominant
offline cost, so the training path is engineered accordingly:

- **Bounded E-step**: assignments stream through ``(chunk, k)`` distance
  blocks instead of one ``(n, k)`` matrix, and the M-step accumulates
  per-cluster sums as a one-hot GEMM per chunk (an order of magnitude faster
  than ``np.add.at`` scatter adds, which dominated the old profile).
- **Mini-batch K-means** (:func:`kmeans_minibatch`): Sculley-style sampled
  updates with per-centre learning rates, followed by a few full Lloyd's
  refinement passes — the "sampled-then-refine" large-``n`` path.
- **Sampled k-means++ seeding**: seeding cost is ``O(sample * k)`` instead of
  ``O(n * k)`` when a sample size is given.
- :func:`train_kmeans` dispatches between the variants (``auto`` picks
  mini-batch for large inputs) and is what the IVF/clustering build paths
  call; :func:`kmeans_reference` retains the pre-optimisation implementation
  as the ``benchmarks/bench_build.py`` baseline.

The module also provides the imbalance proxy the paper uses (ratio of largest
to smallest cluster) and the concurrent seed sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distances import as_matrix, pairwise_distance, validate_metric
from .parallel import run_tasks

#: Rows per E-step distance block; bounds peak memory at ``chunk * k`` floats.
DEFAULT_CHUNK = 16_384

#: ``train_kmeans(algorithm="auto")`` switches to mini-batch at this size.
MINIBATCH_THRESHOLD = 20_000

#: Algorithms accepted by :func:`train_kmeans`.
ALGORITHMS = ("auto", "lloyd", "minibatch", "reference")


@dataclass
class KMeansResult:
    """Outcome of one K-means run."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int
    seed: int
    #: per-cluster member counts, length k
    sizes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        k = len(self.centroids)
        self.sizes = np.bincount(self.assignments, minlength=k)

    @property
    def imbalance(self) -> float:
        """Largest/smallest cluster-size ratio (paper §4.1 imbalance proxy).

        ``inf`` when any cluster is empty.
        """
        smallest = int(self.sizes.min())
        if smallest == 0:
            return float("inf")
        return float(self.sizes.max()) / float(smallest)


def _kmeanspp_init(
    vectors: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    sample_size: "int | None" = None,
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2.

    With *sample_size* the seeding runs on a random subset, which keeps the
    ``O(n * k)`` seeding cost bounded for large corpora while preserving the
    spread property on the sample.
    """
    n = len(vectors)
    if sample_size is not None and k <= sample_size < n:
        vectors = vectors[rng.choice(n, size=sample_size, replace=False)]
        n = sample_size
    centroids = np.empty((k, vectors.shape[1]), dtype=vectors.dtype)
    first = rng.integers(n)
    centroids[0] = vectors[first]
    closest = pairwise_distance(vectors, centroids[0:1], "l2")[:, 0]
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids; fall back
            # to uniform sampling of distinct rows.
            centroids[i] = vectors[rng.integers(n)]
        else:
            probs = closest / total
            choice = rng.choice(n, p=probs)
            centroids[i] = vectors[choice]
        d_new = pairwise_distance(vectors, centroids[i : i + 1], "l2")[:, 0]
        np.minimum(closest, d_new, out=closest)
    return centroids


def _init_centroids(
    vecs: np.ndarray,
    k: int,
    rng: np.random.Generator,
    init: str,
    sample_size: "int | None",
) -> np.ndarray:
    if init == "k-means++":
        return _kmeanspp_init(vecs, k, rng, sample_size=sample_size)
    if init == "random":
        return vecs[rng.choice(len(vecs), size=k, replace=False)].copy()
    raise ValueError(f"unknown init {init!r}")


def _estep(
    vecs: np.ndarray,
    centroids: np.ndarray,
    *,
    chunk_size: int = DEFAULT_CHUNK,
    accumulate: bool = False,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]":
    """Chunked assignment pass in ``(chunk, k)`` bounded memory.

    Returns ``(assignments, point_cost, sums, counts)``. With ``accumulate``
    the M-step sufficient statistics are gathered alongside: each chunk's
    per-cluster sums are one one-hot GEMM, so the full pass never
    materialises an ``(n, k)`` matrix or falls back to scatter adds.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n = len(vecs)
    k = len(centroids)
    assignments = np.empty(n, dtype=np.int64)
    point_cost = np.empty(n, dtype=np.float32)
    sums = np.zeros((k, vecs.shape[1]), dtype=np.float32) if accumulate else None
    counts = np.zeros(k, dtype=np.int64) if accumulate else None
    for start in range(0, n, chunk_size):
        chunk = vecs[start : start + chunk_size]
        dists = pairwise_distance(chunk, centroids, "l2")
        assign = dists.argmin(axis=1)
        rows = np.arange(len(chunk))
        assignments[start : start + chunk_size] = assign
        point_cost[start : start + chunk_size] = dists[rows, assign]
        if accumulate:
            onehot = np.zeros((len(chunk), k), dtype=np.float32)
            onehot[rows, assign] = 1.0
            sums += onehot.T @ chunk
            counts += np.bincount(assign, minlength=k)
    return assignments, point_cost, sums, counts


def _lloyd_iterations(
    vecs: np.ndarray,
    centroids: np.ndarray,
    *,
    max_iter: int,
    tol: float,
    chunk_size: int,
) -> "tuple[np.ndarray, int]":
    """Full Lloyd's iterations with empty-cluster repair; returns centroids.

    Empty clusters are repaired each iteration by re-seeding them at the
    point currently farthest from its assigned centroid, which keeps all
    ``k`` clusters populated (required by the Hermes datastore split).
    """
    centroids = centroids.astype(np.float32, copy=True)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        assignments, point_cost, sums, counts = _estep(
            vecs, centroids, chunk_size=chunk_size, accumulate=True
        )
        new_inertia = float(point_cost.sum())
        empties = np.flatnonzero(counts == 0)
        denom = counts.astype(np.float32)[:, np.newaxis]
        if len(empties):
            worst = np.argsort(point_cost)[::-1]
            for slot, point in zip(empties, worst):
                centroids[slot] = vecs[point]
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / denom[nonempty]
        else:
            centroids = sums / denom
        converged = (
            np.isfinite(inertia) and inertia - new_inertia <= tol * max(inertia, 1.0)
        )
        if converged and not len(empties):
            inertia = new_inertia
            break
        inertia = new_inertia
    return centroids, n_iter


def _finalize(
    vecs: np.ndarray,
    centroids: np.ndarray,
    *,
    n_iter: int,
    seed: int,
    chunk_size: int,
) -> KMeansResult:
    """Final assignment against the final centroids."""
    assignments, point_cost, _, _ = _estep(vecs, centroids, chunk_size=chunk_size)
    return KMeansResult(
        centroids=centroids.astype(np.float32),
        assignments=assignments,
        inertia=float(point_cost.sum()),
        n_iter=n_iter,
        seed=seed,
    )


def _validate_problem(vecs: np.ndarray, k: int) -> None:
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(vecs) < k:
        raise ValueError(f"need at least k={k} vectors, got {len(vecs)}")


def kmeans(
    vectors: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 25,
    tol: float = 1e-4,
    init: str = "k-means++",
    chunk_size: int = DEFAULT_CHUNK,
    init_sample: "int | None" = None,
) -> KMeansResult:
    """Run full Lloyd's algorithm and return the fitted clustering.

    The E-step is chunked (``(chunk_size, k)`` peak memory) and the M-step
    accumulates per-cluster sums as one-hot GEMMs; the arithmetic is the
    classic Lloyd's update, so results match :func:`kmeans_reference` up to
    float32 summation order. *init_sample* bounds the k-means++ seeding cost
    on large inputs.
    """
    vecs = as_matrix(vectors)
    _validate_problem(vecs, k)
    rng = np.random.default_rng(seed)
    centroids = _init_centroids(vecs, k, rng, init, init_sample)
    centroids, n_iter = _lloyd_iterations(
        vecs, centroids, max_iter=max_iter, tol=tol, chunk_size=chunk_size
    )
    return _finalize(vecs, centroids, n_iter=n_iter, seed=seed, chunk_size=chunk_size)


def kmeans_minibatch(
    vectors: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 100,
    batch_size: int = 4096,
    tol: float = 1e-4,
    init: str = "k-means++",
    init_sample: "int | None" = None,
    refine_iters: int = 2,
    chunk_size: int = DEFAULT_CHUNK,
) -> KMeansResult:
    """Mini-batch K-means [Sculley 2010] with full-data refinement passes.

    Each step assigns one random batch and moves its centres by a per-centre
    learning rate ``|batch members| / |total members seen|``, so training cost
    is independent of ``n``. The loop stops early once centre movement stays
    below *tol* (relative to the data's per-point variance) for three
    consecutive steps. *refine_iters* full Lloyd's passes then polish the
    centres on the complete dataset — repairing any empty clusters — which is
    what keeps final inertia within a few percent of full Lloyd's.
    """
    vecs = as_matrix(vectors)
    _validate_problem(vecs, k)
    n = len(vecs)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if refine_iters < 0:
        raise ValueError(f"refine_iters must be non-negative, got {refine_iters}")
    if batch_size >= n:
        # Batches would cover the data anyway: plain Lloyd's is cheaper.
        return kmeans(
            vectors, k, seed=seed, max_iter=max_iter, tol=tol, init=init,
            chunk_size=chunk_size, init_sample=init_sample,
        )
    rng = np.random.default_rng(seed)
    if init_sample is None:
        init_sample = min(n, max(10 * k, 2 * batch_size))
    centroids = _init_centroids(vecs, k, rng, init, init_sample).astype(
        np.float32, copy=True
    )
    # Movement tolerance scale: total per-point variance of a data sample.
    probe = vecs[: min(n, 4096)]
    scale = max(float(probe.var(axis=0).sum()), 1e-12)
    counts = np.zeros(k, dtype=np.int64)
    rows = np.arange(batch_size)
    calm_steps = 0
    steps = 0
    for steps in range(1, max_iter + 1):
        batch = vecs[rng.integers(0, n, size=batch_size)]
        dists = pairwise_distance(batch, centroids, "l2")
        assign = dists.argmin(axis=1)
        onehot = np.zeros((batch_size, k), dtype=np.float32)
        onehot[rows, assign] = 1.0
        bsums = onehot.T @ batch
        bcounts = np.bincount(assign, minlength=k)
        counts += bcounts
        hit = bcounts > 0
        eta = (bcounts[hit] / counts[hit]).astype(np.float32)[:, np.newaxis]
        target = bsums[hit] / bcounts[hit].astype(np.float32)[:, np.newaxis]
        delta = (target - centroids[hit]) * eta
        centroids[hit] += delta
        shift = float(np.einsum("ij,ij->", delta, delta)) / k
        calm_steps = calm_steps + 1 if shift <= tol * scale else 0
        if calm_steps >= 3:
            break
    if refine_iters:
        centroids, refined = _lloyd_iterations(
            vecs, centroids, max_iter=refine_iters, tol=tol, chunk_size=chunk_size
        )
        steps += refined
    return _finalize(vecs, centroids, n_iter=steps, seed=seed, chunk_size=chunk_size)


def kmeans_reference(
    vectors: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 25,
    tol: float = 1e-4,
    init: str = "k-means++",
) -> KMeansResult:
    """Pre-optimisation Lloyd's, retained as the build-benchmark baseline.

    Materialises the full ``(n, k)`` distance matrix per iteration and
    accumulates the M-step with ``np.add.at`` scatter adds — exactly the
    implementation this repo shipped before the fast build path, kept (like
    ``IVFIndex.search_reference``) so ``benchmarks/bench_build.py`` measures
    an honest before/after and tests can assert quality parity.
    """
    vecs = as_matrix(vectors)
    _validate_problem(vecs, k)
    n = len(vecs)
    rng = np.random.default_rng(seed)
    centroids = _init_centroids(vecs, k, rng, init, None)

    assignments = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        dists = pairwise_distance(vecs, centroids, "l2")
        assignments = dists.argmin(axis=1)
        point_cost = dists[np.arange(n), assignments]
        new_inertia = float(point_cost.sum())

        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, vecs)
        empties = np.flatnonzero(counts == 0)
        if len(empties):
            worst = np.argsort(point_cost)[::-1]
            for slot, point in zip(empties, worst):
                centroids[slot] = vecs[point]
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / counts[nonempty, np.newaxis]
        else:
            centroids = sums / counts[:, np.newaxis]

        converged = (
            np.isfinite(inertia) and inertia - new_inertia <= tol * max(inertia, 1.0)
        )
        if converged and not len(empties):
            inertia = new_inertia
            break
        inertia = new_inertia

    dists = pairwise_distance(vecs, centroids, "l2")
    assignments = dists.argmin(axis=1)
    inertia = float(dists[np.arange(n), assignments].sum())
    return KMeansResult(
        centroids=centroids.astype(np.float32),
        assignments=assignments,
        inertia=inertia,
        n_iter=n_iter,
        seed=seed,
    )


def train_kmeans(
    vectors: np.ndarray,
    k: int,
    *,
    algorithm: str = "auto",
    seed: int = 0,
    max_iter: int = 25,
    tol: float = 1e-4,
    init: str = "k-means++",
    chunk_size: int = DEFAULT_CHUNK,
    batch_size: int = 4096,
    minibatch_threshold: int = MINIBATCH_THRESHOLD,
    minibatch_iters: int = 100,
    refine_iters: int = 2,
) -> KMeansResult:
    """Train a clustering with the selected *algorithm*.

    ``"auto"`` (the build-path default) runs mini-batch with full-data
    refinement once the input reaches *minibatch_threshold* rows and plain
    chunked Lloyd's below it; ``"lloyd"``, ``"minibatch"`` and
    ``"reference"`` force the respective implementation.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown kmeans algorithm {algorithm!r}; expected one of {ALGORITHMS}")
    vecs = as_matrix(vectors)
    if algorithm == "auto":
        algorithm = "minibatch" if len(vecs) >= minibatch_threshold else "lloyd"
    if algorithm == "reference":
        return kmeans_reference(vecs, k, seed=seed, max_iter=max_iter, tol=tol, init=init)
    if algorithm == "minibatch":
        return kmeans_minibatch(
            vecs, k, seed=seed, max_iter=minibatch_iters, batch_size=batch_size,
            tol=tol, init=init, refine_iters=refine_iters, chunk_size=chunk_size,
        )
    return kmeans(vecs, k, seed=seed, max_iter=max_iter, tol=tol, init=init,
                  chunk_size=chunk_size)


def kmeans_seed_sweep(
    vectors: np.ndarray,
    k: int,
    *,
    seeds: "tuple[int, ...]" = (0, 1, 2, 3, 4, 5, 6, 7),
    subset_fraction: float = 0.02,
    min_subset: int = 256,
    max_iter: int = 25,
    rng_seed: int = 0,
    algorithm: str = "auto",
    batch_size: int = 4096,
    workers: "int | None" = 1,
) -> KMeansResult:
    """Pick the K-means seed with the lowest cluster-size imbalance.

    Mirrors the paper's §4.1 procedure: each candidate seed is evaluated on a
    small random subset (1–2% of the datastore by default) because imbalance
    on the subset tracks imbalance on the full set, then the winning seed is
    re-run on the full data (with *algorithm*, so large corpora take the
    mini-batch path).

    Trials are independent, so they run concurrently when *workers* allows;
    ties on imbalance break to the **lowest seed value**, which keeps the
    winner independent of evaluation order.
    """
    vecs = as_matrix(vectors)
    n = len(vecs)
    if not 0 < subset_fraction <= 1.0:
        raise ValueError(f"subset_fraction must be in (0, 1], got {subset_fraction}")
    subset_size = max(min(n, min_subset), int(n * subset_fraction))
    subset_size = min(subset_size, n)
    if subset_size < k:
        subset_size = min(n, max(k, subset_size))
    rng = np.random.default_rng(rng_seed)
    subset = vecs[rng.choice(n, size=subset_size, replace=False)]

    def trial(seed: int):
        result = train_kmeans(
            subset, k, seed=seed, max_iter=max_iter,
            algorithm=algorithm, batch_size=batch_size,
        )
        return seed, result.imbalance

    trials = run_tasks([lambda s=s: trial(s) for s in seeds], workers)
    best_seed, _ = min(trials, key=lambda item: (item[1], item[0]))
    return train_kmeans(
        vecs, k, seed=best_seed, max_iter=max_iter,
        algorithm=algorithm, batch_size=batch_size,
    )


def assign_to_centroids(
    vectors: np.ndarray,
    centroids: np.ndarray,
    metric: str = "l2",
    *,
    chunk_size: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Nearest-centroid assignment for out-of-sample vectors.

    Streams the distance computation in ``(chunk_size, k)`` blocks — the same
    bounded E-step as training — so routing a large ingest batch (e.g.
    ``ClusteredDatastore.add_documents``) never materialises an ``(n, k)``
    matrix.
    """
    validate_metric(metric)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    vecs = as_matrix(vectors)
    cents = as_matrix(centroids)
    out = np.empty(len(vecs), dtype=np.int64)
    for start in range(0, len(vecs), chunk_size):
        chunk = vecs[start : start + chunk_size]
        out[start : start + chunk_size] = pairwise_distance(
            chunk, cents, metric
        ).argmin(axis=1)
    return out
