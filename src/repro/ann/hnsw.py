"""Hierarchical Navigable Small World (HNSW) graph index.

HNSW [Malkov & Yashunin 2020] is the graph-based alternative the paper
evaluates against IVF in Figure 4: it delivers >2.4x better latency and
throughput at similar recall but needs ~2.3x more memory because every vector
carries bidirectional graph links — which is exactly why the paper rejects it
for trillion-token datastores and Hermes builds on IVF instead.

This implementation follows the original algorithm: an exponentially
level-assigned multi-layer proximity graph, greedy descent through the upper
layers, and a best-first beam (``ef``) search on layer 0 with the heuristic
neighbour-selection rule.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from .base import VectorIndex, register_index
from .distances import pairwise_distance


@register_index("hnsw")
class HNSWIndex(VectorIndex):
    """Graph-based approximate k-NN search.

    Parameters
    ----------
    m:
        Max bidirectional links per node on layers > 0 (layer 0 allows 2*m).
    ef_construction:
        Beam width while inserting.
    ef_search:
        Default beam width while querying; overridable per search call.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        *,
        m: int = 16,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, metric)
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._rng = np.random.default_rng(seed)
        self._level_mult = 1.0 / math.log(m)
        self._vectors: np.ndarray = np.empty((0, dim), dtype=np.float32)
        #: per node, per level: list of neighbour ids
        self._links: list[list[list[int]]] = []
        self._entry: int = -1
        self._max_level: int = -1
        self.is_trained = True  # no training phase

    # -- helpers -------------------------------------------------------------
    def _distance(self, query: np.ndarray, ids: list[int] | np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        return pairwise_distance(query[np.newaxis, :], self._vectors[ids], self.metric)[0]

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _search_layer(
        self, query: np.ndarray, entry_points: list[int], ef: int, level: int
    ) -> list[tuple[float, int]]:
        """Best-first search on one layer; returns up to *ef* (dist, id) pairs."""
        visited = set(entry_points)
        entry_d = self._distance(query, entry_points)
        # candidates: min-heap by distance; results: max-heap (negated) capped at ef
        candidates = [(float(d), p) for d, p in zip(entry_d, entry_points)]
        heapq.heapify(candidates)
        results = [(-d, p) for d, p in candidates]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            d, node = heapq.heappop(candidates)
            if results and d > -results[0][0]:
                break
            neighbours = [n for n in self._links[node][level] if n not in visited]
            if not neighbours:
                continue
            visited.update(neighbours)
            # One batched kernel call per hop: all of this node's unvisited
            # neighbours at once, then a vectorized beam-bound filter so only
            # genuinely competitive neighbours reach the Python heaps.
            dists = self._distance(query, neighbours)
            if len(results) >= ef:
                keep = np.flatnonzero(dists < -results[0][0])
            else:
                keep = np.arange(len(neighbours))
            for idx in keep:
                nd = float(dists[idx])
                if len(results) < ef or nd < -results[0][0]:
                    nn = neighbours[idx]
                    heapq.heappush(candidates, (nd, nn))
                    heapq.heappush(results, (-nd, nn))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-nd, nn) for nd, nn in results)

    def _select_neighbours(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Heuristic neighbour selection (Algorithm 4 of the HNSW paper).

        A candidate is kept only if it is closer to the query than to every
        already-selected neighbour, which keeps the graph navigable. The
        candidate-to-candidate distances are computed in **one** batched
        kernel call up front (the greedy scan then reads rows of that
        matrix), replacing the per-candidate distance call of the naive
        formulation — same selections, one GEMM instead of O(candidates).
        """
        if not candidates:
            return []
        cand_ids = [c for _, c in candidates]
        cand_d = [d for d, _ in candidates]
        if len(candidates) > 1:
            vecs = self._vectors[np.asarray(cand_ids, dtype=np.int64)]
            inter = pairwise_distance(vecs, vecs, self.metric)
        else:
            inter = np.zeros((1, 1), dtype=np.float32)
        selected_rows: list[int] = []
        for row, dist in enumerate(cand_d):
            if len(selected_rows) >= m:
                break
            if not selected_rows or np.all(dist <= inter[row, selected_rows]):
                selected_rows.append(row)
        selected = [cand_ids[r] for r in selected_rows]
        # Backfill with nearest skipped candidates if the heuristic was too strict.
        if len(selected) < m:
            chosen = set(selected)
            for cand in cand_ids:
                if len(selected) >= m:
                    break
                if cand not in chosen:
                    selected.append(cand)
                    chosen.add(cand)
        return selected

    # -- mutation --------------------------------------------------------------
    def _add(self, vectors: np.ndarray) -> None:
        for vec in vectors:
            self._insert(vec)

    def _insert(self, vector: np.ndarray) -> None:
        node = len(self._vectors)
        self._vectors = np.concatenate([self._vectors, vector[np.newaxis, :]], axis=0)
        level = self._random_level()
        self._links.append([[] for _ in range(level + 1)])

        if self._entry < 0:
            self._entry = node
            self._max_level = level
            return

        entry = self._entry
        # Greedy descent through layers above the insertion level.
        query = vector
        for lvl in range(self._max_level, level, -1):
            entry = self._greedy_step(query, entry, lvl)

        entries = [entry]
        for lvl in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(query, entries, self.ef_construction, lvl)
            max_links = self.m0 if lvl == 0 else self.m
            neighbours = self._select_neighbours(found, self.m)
            self._links[node][lvl] = list(neighbours)
            for nb in neighbours:
                links = self._links[nb][lvl]
                links.append(node)
                if len(links) > max_links:
                    dists = self._distance(self._vectors[nb], links)
                    ranked = sorted(zip(dists, links))
                    self._links[nb][lvl] = self._select_neighbours(
                        [(float(d), n) for d, n in ranked], max_links
                    )
            entries = [n for _, n in found] or entries
        if level > self._max_level:
            self._max_level = level
            self._entry = node

    def _greedy_step(self, query: np.ndarray, entry: int, level: int) -> int:
        current = entry
        current_d = float(self._distance(query, [current])[0])
        improved = True
        while improved:
            improved = False
            neighbours = self._links[current][level]
            if not neighbours:
                break
            dists = self._distance(query, neighbours)
            best = int(dists.argmin())
            if float(dists[best]) < current_d:
                current = neighbours[best]
                current_d = float(dists[best])
                improved = True
        return current

    # -- search ------------------------------------------------------------------
    def _search(
        self, queries: np.ndarray, k: int, *, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        ef = max(self.ef_search if ef is None else int(ef), k)
        nq = len(queries)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        for qi in range(nq):
            query = queries[qi]
            entry = self._entry
            for lvl in range(self._max_level, 0, -1):
                entry = self._greedy_step(query, entry, lvl)
            found = self._search_layer(query, [entry], ef, 0)[:k]
            for slot, (dist, node) in enumerate(found):
                out_d[qi, slot] = dist
                out_i[qi, slot] = node
        return out_d, out_i

    def search(
        self, queries: np.ndarray, k: int, *, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search, optionally overriding the default beam width ``ef``."""
        if self.ntotal == 0:
            return super().search(queries, k)
        from .distances import as_matrix

        q = as_matrix(queries)
        self._check_dim(q)
        return self._search(q, int(k), ef=ef)

    def memory_bytes(self) -> int:
        vec_bytes = int(self.ntotal) * self.dim * 4
        link_bytes = sum(
            sum(len(level_links) for level_links in node_links) * 8
            for node_links in self._links
        )
        return vec_bytes + link_bytes
