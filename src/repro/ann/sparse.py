"""Sparse (BM25) retrieval and dense/sparse hybrid fusion.

§2.1 of the paper contrasts retrieval families: sparse term-based indices
excel at *rare terms that cannot be adequately represented through
embeddings*, dense indices at semantic similarity, and cites hybrid
approaches (Blended RAG) combining both. Hermes itself is dense-only, but the
claims are empirical and testable, so this module provides:

- :class:`BM25Index` — a classic inverted-file text index with BM25 scoring
  (Robertson/Sparck-Jones weights, k1/b defaults from the literature);
- :class:`HybridRetriever` — reciprocal-rank-fusion of dense and sparse
  rankings, the standard training-free hybrid.

``benchmarks/test_ablation_sparse_hybrid.py`` reproduces the qualitative
§2.1 claims on the synthetic corpus: dense wins on topical (semantic)
queries, sparse wins on rare-token queries, hybrid is competitive on both.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from .base import VectorIndex
from .distances import top_k


@dataclass(frozen=True)
class SparseSearchResult:
    """Ranked ids + BM25 scores (higher is better)."""

    scores: np.ndarray
    ids: np.ndarray


class BM25Index:
    """Inverted-file index over token-id documents with BM25 ranking.

    Parameters follow the standard Okapi defaults: ``k1`` saturates term
    frequency, ``b`` normalises by document length.
    """

    def __init__(self, *, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 <= 0 or not 0 <= b <= 1:
            raise ValueError("require k1 > 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b
        #: token -> {doc_id: term frequency}
        self._postings: dict[int, dict[int, int]] = {}
        self._doc_lengths: list[int] = []

    @property
    def ntotal(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def add(self, documents: "list[np.ndarray]") -> np.ndarray:
        """Index token-id documents; returns assigned contiguous ids."""
        start = self.ntotal
        for doc in documents:
            tokens = np.asarray(doc, dtype=np.int64)
            if not len(tokens):
                raise ValueError("cannot index an empty document")
            doc_id = len(self._doc_lengths)
            self._doc_lengths.append(len(tokens))
            for token, tf in Counter(int(t) for t in tokens).items():
                self._postings.setdefault(token, {})[doc_id] = tf
        return np.arange(start, self.ntotal, dtype=np.int64)

    def _idf(self, token: int) -> float:
        """Robertson-Sparck-Jones IDF (floored at 0 for very common terms)."""
        df = len(self._postings.get(token, ()))
        if df == 0:
            return 0.0
        n = self.ntotal
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def search(
        self, query_tokens: np.ndarray, k: int
    ) -> SparseSearchResult:
        """BM25 top-k for one token-id query."""
        if self.ntotal == 0:
            return SparseSearchResult(
                scores=np.full(k, -np.inf), ids=np.full(k, -1, dtype=np.int64)
            )
        tokens = np.asarray(query_tokens, dtype=np.int64)
        if not len(tokens):
            raise ValueError("query must be non-empty")
        avg_len = float(np.mean(self._doc_lengths))
        scores: dict[int, float] = {}
        for token, qf in Counter(int(t) for t in tokens).items():
            del qf  # standard BM25 ignores query-side term frequency
            idf = self._idf(token)
            if idf == 0.0:
                continue
            for doc_id, tf in self._postings.get(token, {}).items():
                length_norm = 1.0 - self.b + self.b * self._doc_lengths[doc_id] / avg_len
                gain = idf * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + gain
        if not scores:
            return SparseSearchResult(
                scores=np.full(k, -np.inf), ids=np.full(k, -1, dtype=np.int64)
            )
        ids = np.fromiter(scores.keys(), dtype=np.int64)
        vals = np.fromiter(scores.values(), dtype=np.float64)
        neg, order = top_k(-vals[np.newaxis, :], k)
        picked = order[0]
        out_ids = np.full(k, -1, dtype=np.int64)
        out_scores = np.full(k, -np.inf)
        valid = picked >= 0
        out_ids[valid] = ids[picked[valid]]
        out_scores[valid] = -neg[0][valid]
        return SparseSearchResult(scores=out_scores, ids=out_ids)

    def search_batch(
        self, queries: "list[np.ndarray]", k: int
    ) -> SparseSearchResult:
        """BM25 top-k for a batch of token-id queries."""
        results = [self.search(q, k) for q in queries]
        return SparseSearchResult(
            scores=np.stack([r.scores for r in results]),
            ids=np.stack([r.ids for r in results]),
        )


def reciprocal_rank_fusion(
    rankings: "list[np.ndarray]", k: int, *, rrf_k: float = 60.0
) -> np.ndarray:
    """Fuse several ranked-id lists for one query via RRF.

    ``score(d) = sum_r 1 / (rrf_k + rank_r(d))`` over the rankings that
    contain *d*; ``-1`` padding entries are ignored. Returns the fused top-k
    ids (padded with -1).
    """
    if rrf_k <= 0:
        raise ValueError("rrf_k must be positive")
    scores: dict[int, float] = {}
    for ranking in rankings:
        for rank, doc in enumerate(np.asarray(ranking).ravel()):
            doc = int(doc)
            if doc < 0:
                continue
            scores[doc] = scores.get(doc, 0.0) + 1.0 / (rrf_k + rank + 1)
    ordered = sorted(scores, key=lambda d: -scores[d])[:k]
    out = np.full(k, -1, dtype=np.int64)
    out[: len(ordered)] = ordered
    return out


def zscore_fusion(
    candidate_lists: "list[tuple[np.ndarray, np.ndarray]]", k: int
) -> np.ndarray:
    """Confidence-weighted score fusion for one query.

    Each entry is ``(scores, ids)`` with *higher-is-better* scores and ``-1``
    padding. Scores are standardized per retriever (z-scores over its valid
    candidates), so a retriever that is *confident* — its top result stands
    far above its own candidate distribution, like BM25 on an exact rare-term
    hit — outvotes one whose candidates all look alike. Retrievers with no
    valid candidates contribute nothing; zero-variance lists contribute 0.
    """
    fused: dict[int, float] = {}
    for scores, ids in candidate_lists:
        ids = np.asarray(ids).ravel()
        scores = np.asarray(scores, dtype=np.float64).ravel()
        valid = (ids >= 0) & np.isfinite(scores)
        if not valid.any():
            continue
        vals = scores[valid]
        std = vals.std()
        z = np.zeros_like(vals) if std == 0 else (vals - vals.mean()) / std
        for doc, score in zip(ids[valid], z):
            doc = int(doc)
            fused[doc] = fused.get(doc, 0.0) + float(score)
    ordered = sorted(fused, key=lambda d: -fused[d])[:k]
    out = np.full(k, -1, dtype=np.int64)
    out[: len(ordered)] = ordered
    return out


class HybridRetriever:
    """Dense + sparse retrieval with score fusion.

    The dense side is any :class:`~repro.ann.base.VectorIndex`; the sparse
    side a :class:`BM25Index` over the same documents (ids must align).
    ``fusion`` picks between confidence-weighted z-score fusion (default —
    lets a decisive BM25 exact match outvote an indifferent dense ranking)
    and plain reciprocal-rank fusion.
    """

    def __init__(
        self,
        dense: VectorIndex,
        sparse: BM25Index,
        *,
        candidates: int = 20,
        fusion: str = "zscore",
        rrf_k: float = 60.0,
    ) -> None:
        if dense.ntotal != sparse.ntotal:
            raise ValueError(
                f"dense ({dense.ntotal}) and sparse ({sparse.ntotal}) "
                "indices must cover the same documents"
            )
        if candidates <= 0:
            raise ValueError("candidates must be positive")
        if fusion not in ("zscore", "rrf"):
            raise ValueError(f"unknown fusion {fusion!r}")
        self.dense = dense
        self.sparse = sparse
        self.candidates = candidates
        self.fusion = fusion
        self.rrf_k = rrf_k

    def search(
        self,
        query_embeddings: np.ndarray,
        query_tokens: "list[np.ndarray]",
        k: int,
    ) -> np.ndarray:
        """Fused top-k ids, one row per query."""
        if len(query_embeddings) != len(query_tokens):
            raise ValueError("embedding and token query counts differ")
        dense_d, dense_ids = self.dense.search(query_embeddings, self.candidates)
        sparse = self.sparse.search_batch(query_tokens, self.candidates)
        fused = []
        for qi in range(len(dense_ids)):
            if self.fusion == "rrf":
                fused.append(
                    reciprocal_rank_fusion(
                        [dense_ids[qi], sparse.ids[qi]], k, rrf_k=self.rrf_k
                    )
                )
            else:
                # Dense distances are smaller-is-better; negate to scores.
                fused.append(
                    zscore_fusion(
                        [
                            (-dense_d[qi], dense_ids[qi]),
                            (sparse.scores[qi], sparse.ids[qi]),
                        ],
                        k,
                    )
                )
        return np.stack(fused)
