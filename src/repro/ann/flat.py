"""Brute-force (exact) k-NN index.

``FlatIndex`` is the exact-search baseline used throughout the paper as the
ground truth for recall and NDCG evaluation ("documents from an exhaustive
brute-force search as our ground truth", §5).
"""

from __future__ import annotations

import numpy as np

from .base import VectorIndex, register_index
from .distances import pairwise_distance, top_k


@register_index("flat")
class FlatIndex(VectorIndex):
    """Exact nearest-neighbour search over uncompressed float32 vectors."""

    def __init__(self, dim: int, metric: str = "l2") -> None:
        super().__init__(dim, metric)
        self._chunks: list[np.ndarray] = []
        self._vectors: np.ndarray | None = None
        self.is_trained = True  # no training phase

    @property
    def vectors(self) -> np.ndarray:
        """The stored vectors as one contiguous ``(ntotal, dim)`` array."""
        if self._vectors is None or sum(len(c) for c in self._chunks) != len(self._vectors):
            if self._chunks:
                self._vectors = np.concatenate(self._chunks, axis=0)
            else:
                self._vectors = np.empty((0, self.dim), dtype=np.float32)
        return self._vectors

    def _add(self, vectors: np.ndarray) -> None:
        self._chunks.append(vectors.copy())
        self._vectors = None

    def _search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        dists = pairwise_distance(queries, self.vectors, self.metric)
        return top_k(dists, k)

    def reconstruct(self, ids: np.ndarray) -> np.ndarray:
        """Return the stored vectors for *ids* (exact, no decoding loss)."""
        return self.vectors[np.asarray(ids, dtype=np.int64)]

    def memory_bytes(self) -> int:
        return int(self.ntotal) * self.dim * 4
