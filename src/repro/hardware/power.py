"""RAPL-style energy accounting.

The paper measures CPU power with Intel RAPL and GPU power with pynvml, then
integrates over stage durations. :class:`EnergyMeter` is the offline
equivalent: stages report ``(device, power_w, seconds)`` intervals and the
meter accumulates joules per device and in total, supporting the per-stage
energy breakdowns of Figs. 7, 14, 17, 18, and 21.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyInterval:
    """One recorded interval of constant power draw."""

    device: str
    power_w: float
    seconds: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ValueError(f"power must be non-negative, got {self.power_w}")
        if self.seconds < 0:
            raise ValueError(f"duration must be non-negative, got {self.seconds}")

    @property
    def joules(self) -> float:
        return self.power_w * self.seconds


@dataclass
class EnergyMeter:
    """Accumulates energy intervals across devices and pipeline stages."""

    intervals: list[EnergyInterval] = field(default_factory=list)

    def record(self, device: str, power_w: float, seconds: float, *, label: str = "") -> None:
        """Add one constant-power interval."""
        self.intervals.append(
            EnergyInterval(device=device, power_w=power_w, seconds=seconds, label=label)
        )

    def merge(self, other: "EnergyMeter") -> None:
        """Fold another meter's intervals into this one."""
        self.intervals.extend(other.intervals)

    def total_joules(self) -> float:
        """Total energy across all devices."""
        return sum(i.joules for i in self.intervals)

    def joules_by_device(self) -> dict[str, float]:
        """Energy grouped by device name."""
        out: dict[str, float] = {}
        for interval in self.intervals:
            out[interval.device] = out.get(interval.device, 0.0) + interval.joules
        return out

    def joules_by_label(self) -> dict[str, float]:
        """Energy grouped by stage label (empty labels grouped under '')."""
        out: dict[str, float] = {}
        for interval in self.intervals:
            out[interval.label] = out.get(interval.label, 0.0) + interval.joules
        return out

    def reset(self) -> None:
        self.intervals.clear()
