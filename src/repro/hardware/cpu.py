"""CPU platform models for the retrieval tier.

The paper measures retrieval on four server CPUs (its Fig. 20): Intel Xeon
Gold 6448Y (the main evaluation platform), Xeon Platinum 8380, Xeon Silver
4316, and an ARM Neoverse-N1. We model each as a small set of parameters —
core count, frequency range, power envelope, and a per-core search-speed
factor relative to the Gold 6448Y — which the performance model combines
with the calibrated measurement anchors (see ``repro.perfmodel``).

``relative_speed`` captures microarchitecture + frequency differences
observed in Fig. 20: the Platinum 8380 reaches the best latency/throughput,
the Silver 4316 and Neoverse-N1 trail per-core but the N1's 80 cores recover
throughput at large batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUPlatform:
    """A retrieval-node CPU.

    Attributes
    ----------
    name:
        Marketing name used in reports.
    cores:
        Physical cores available to FAISS-style one-thread-per-query search.
    min_freq_ghz / max_freq_ghz:
        DVFS range; retrieval latency is modelled inversely proportional to
        frequency (vector scan is compute/bandwidth bound).
    active_power_w:
        Package power when all cores search at ``max_freq_ghz``.
    idle_power_w:
        Package power when idle (uncore + DRAM refresh).
    relative_speed:
        Per-core search throughput relative to the Xeon Gold 6448Y at max
        frequency (>1 is faster).
    """

    name: str
    cores: int
    min_freq_ghz: float
    max_freq_ghz: float
    active_power_w: float
    idle_power_w: float
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if not 0 < self.min_freq_ghz <= self.max_freq_ghz:
            raise ValueError("require 0 < min_freq <= max_freq")
        if self.active_power_w <= self.idle_power_w:
            raise ValueError("active power must exceed idle power")
        if self.relative_speed <= 0:
            raise ValueError("relative_speed must be positive")

    def frequency_fraction(self, freq_ghz: float) -> float:
        """Clamp *freq_ghz* to the DVFS range and return f / f_max."""
        clamped = min(max(freq_ghz, self.min_freq_ghz), self.max_freq_ghz)
        return clamped / self.max_freq_ghz

    def power_at(self, freq_ghz: float, *, utilization: float = 1.0) -> float:
        """Package power (W) at a frequency and core utilization.

        Dynamic power scales cubically with frequency (voltage tracks
        frequency in the DVFS range), the standard model behind the paper's
        DVFS savings estimates; idle power is frequency-independent.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        frac = self.frequency_fraction(freq_ghz)
        dynamic = (self.active_power_w - self.idle_power_w) * utilization * frac**3
        return self.idle_power_w + dynamic

    def slowdown_at(self, freq_ghz: float) -> float:
        """Latency multiplier relative to max frequency (>= 1)."""
        return 1.0 / self.frequency_fraction(freq_ghz)


# The paper's main retrieval platform (32 cores of a Gold 6448Y at 2.3 GHz,
# Intel RAPL power). active_power is calibrated so that batch retrieval
# energy matches the paper's Fig. 7 J-per-query figures (see perfmodel).
XEON_GOLD_6448Y = CPUPlatform(
    name="Intel Xeon Gold 6448Y",
    cores=32,
    min_freq_ghz=0.8,
    max_freq_ghz=2.3,
    active_power_w=200.0,
    idle_power_w=55.0,
    relative_speed=1.0,
)

# Latest-generation Intel in Fig. 20: best latency (0.084-0.13 s) and
# throughput (249-379 QPS).
XEON_PLATINUM_8380 = CPUPlatform(
    name="Intel Xeon Platinum 8380",
    cores=40,
    min_freq_ghz=0.8,
    max_freq_ghz=3.0,
    active_power_w=270.0,
    idle_power_w=65.0,
    relative_speed=1.35,
)

# Mid-range Intel part: fewer, slower cores.
XEON_SILVER_4316 = CPUPlatform(
    name="Intel Xeon Silver 4316",
    cores=20,
    min_freq_ghz=0.8,
    max_freq_ghz=2.3,
    active_power_w=150.0,
    idle_power_w=45.0,
    relative_speed=0.8,
)

# ARM server CPU: weaker per-core search but 80 cores, so large batches
# recover throughput (Fig. 20's BS=128 series).
NEOVERSE_N1 = CPUPlatform(
    name="Ampere Altra (Neoverse-N1)",
    cores=80,
    min_freq_ghz=1.0,
    max_freq_ghz=3.0,
    active_power_w=180.0,
    idle_power_w=50.0,
    relative_speed=0.45,
)

#: Registry keyed by the short names used in experiment configs.
CPU_PLATFORMS: dict[str, CPUPlatform] = {
    "xeon_gold_6448y": XEON_GOLD_6448Y,
    "xeon_platinum_8380": XEON_PLATINUM_8380,
    "xeon_silver_4316": XEON_SILVER_4316,
    "neoverse_n1": NEOVERSE_N1,
}


def get_cpu(key: str) -> CPUPlatform:
    """Look up a CPU platform by registry key."""
    try:
        return CPU_PLATFORMS[key]
    except KeyError:
        raise ValueError(
            f"unknown CPU {key!r}; known: {sorted(CPU_PLATFORMS)}"
        ) from None
