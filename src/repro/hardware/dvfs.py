"""Dynamic Voltage and Frequency Scaling (DVFS) mechanics.

Hermes's load-balancing optimisation (§4.2 and Fig. 21) slows down lightly
loaded retrieval nodes to save energy without lengthening the batch critical
path. This module provides the device-level mechanics — given a node's busy
time and a latency target, find the lowest frequency that still meets the
target, and the resulting energy; the *policies* (slow to the slowest
cluster vs. slow to the inference latency) live in
:mod:`repro.core.dvfs_policy`.

Latency scales inversely with frequency (retrieval is compute/bandwidth
bound); dynamic power scales cubically (voltage tracks frequency), so running
slower-but-longer still wins energy: ``E(f) ∝ idle/f + dyn·f²``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import CPUPlatform


@dataclass(frozen=True)
class DVFSOperatingPoint:
    """The outcome of scaling one node for one batch."""

    freq_ghz: float
    latency_s: float
    energy_j: float


def frequency_for_target(
    platform: CPUPlatform, busy_time_at_max_s: float, target_latency_s: float
) -> float:
    """Lowest frequency (GHz) at which the work still meets *target_latency_s*.

    ``busy_time_at_max_s`` is the node's busy time at maximum frequency. The
    result is clamped to the platform's DVFS range; a target below the
    max-frequency latency simply returns max frequency (we never overclock).
    """
    if busy_time_at_max_s < 0:
        raise ValueError("busy time must be non-negative")
    if target_latency_s <= 0:
        raise ValueError("target latency must be positive")
    if busy_time_at_max_s == 0:
        return platform.min_freq_ghz
    needed_fraction = busy_time_at_max_s / target_latency_s
    freq = needed_fraction * platform.max_freq_ghz
    return min(max(freq, platform.min_freq_ghz), platform.max_freq_ghz)


def operating_point(
    platform: CPUPlatform,
    busy_time_at_max_s: float,
    freq_ghz: float,
    *,
    utilization: float = 1.0,
) -> DVFSOperatingPoint:
    """Latency and energy of running the given work at *freq_ghz*."""
    latency = busy_time_at_max_s * platform.slowdown_at(freq_ghz)
    power = platform.power_at(freq_ghz, utilization=utilization)
    return DVFSOperatingPoint(
        freq_ghz=min(max(freq_ghz, platform.min_freq_ghz), platform.max_freq_ghz),
        latency_s=latency,
        energy_j=power * latency,
    )


def energy_optimal_frequency(
    platform: CPUPlatform, *, utilization: float = 1.0
) -> float:
    """Frequency minimising energy-to-completion for a standalone node.

    Energy at frequency f is ``idle * t_max * fmax/f + dyn * t_max * (f/fmax)^2``
    (idle power is paid longer when running slower; dynamic energy shrinks
    quadratically). The minimum sits at
    ``f* = fmax * (idle / (2 * dyn * utilization))^(1/3)``; below it the idle
    term dominates and slowing further *wastes* energy.
    """
    dyn = (platform.active_power_w - platform.idle_power_w) * max(utilization, 1e-9)
    ratio = (platform.idle_power_w / (2.0 * dyn)) ** (1.0 / 3.0)
    freq = platform.max_freq_ghz * ratio
    return min(max(freq, platform.min_freq_ghz), platform.max_freq_ghz)


def scaled_energy(
    platform: CPUPlatform,
    busy_time_at_max_s: float,
    target_latency_s: float,
    *,
    utilization: float = 1.0,
) -> DVFSOperatingPoint:
    """Energy-optimal operating point meeting a latency target.

    Slows down as far as the target allows, but never below the
    energy-optimal frequency — running slower than that would pay more idle
    energy than the dynamic power it saves.
    """
    floor = energy_optimal_frequency(platform, utilization=utilization)
    freq = max(
        frequency_for_target(platform, busy_time_at_max_s, target_latency_s), floor
    )
    return operating_point(platform, busy_time_at_max_s, freq, utilization=utilization)
