"""Hardware substrate: CPU/GPU platform models, DVFS mechanics, energy meter.

Replaces the paper's measured Intel/ARM CPUs (via RAPL) and NVIDIA GPUs (via
pynvml) with calibrated analytical models — the same role the paper's own
multi-node analysis tool plays for configurations it did not measure.
"""

from .cpu import (
    CPU_PLATFORMS,
    NEOVERSE_N1,
    XEON_GOLD_6448Y,
    XEON_PLATINUM_8380,
    XEON_SILVER_4316,
    CPUPlatform,
    get_cpu,
)
from .dvfs import (
    DVFSOperatingPoint,
    energy_optimal_frequency,
    frequency_for_target,
    operating_point,
    scaled_energy,
)
from .gpu import (
    A6000_ADA,
    GPU_PLATFORMS,
    L4,
    GPUPlatform,
    get_gpu,
    tensor_parallel_speedup,
)
from .node import NodeCluster, RetrievalNode
from .power import EnergyInterval, EnergyMeter

__all__ = [
    "CPU_PLATFORMS",
    "NEOVERSE_N1",
    "XEON_GOLD_6448Y",
    "XEON_PLATINUM_8380",
    "XEON_SILVER_4316",
    "CPUPlatform",
    "get_cpu",
    "DVFSOperatingPoint",
    "energy_optimal_frequency",
    "frequency_for_target",
    "operating_point",
    "scaled_energy",
    "A6000_ADA",
    "GPU_PLATFORMS",
    "L4",
    "GPUPlatform",
    "get_gpu",
    "tensor_parallel_speedup",
    "NodeCluster",
    "RetrievalNode",
    "EnergyInterval",
    "EnergyMeter",
]
