"""Retrieval nodes and node clusters.

Hermes's deployment unit is a CPU node hosting one clustered search index
(§4: "partitioning and distributing datastores across multiple CPU nodes").
:class:`RetrievalNode` binds a CPU platform to the shard it hosts (size in
tokens and resident index bytes); :class:`NodeCluster` is the fleet the
scheduler routes query batches across, with capacity checks mirroring the
paper's memory-capacity takeaways (a monolithic trillion-token IVF-SQ8 index
needs ~10 TB — more than any single node).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cpu import CPUPlatform, XEON_GOLD_6448Y


@dataclass
class RetrievalNode:
    """One CPU machine hosting one search-index shard."""

    node_id: int
    cpu: CPUPlatform = XEON_GOLD_6448Y
    memory_gb: float = 1024.0
    shard_tokens: float = 0.0
    shard_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.shard_tokens < 0 or self.shard_bytes < 0:
            raise ValueError("shard size must be non-negative")

    @property
    def shard_fits(self) -> bool:
        """Whether the hosted index fits in node memory."""
        return self.shard_bytes <= self.memory_gb * 1e9

    def host(self, shard_tokens: float, shard_bytes: float) -> None:
        """Assign a shard to this node; raises if it exceeds memory."""
        if shard_bytes > self.memory_gb * 1e9:
            raise ValueError(
                f"shard of {shard_bytes / 1e9:.1f} GB exceeds node {self.node_id} "
                f"memory of {self.memory_gb:.0f} GB"
            )
        self.shard_tokens = float(shard_tokens)
        self.shard_bytes = float(shard_bytes)


@dataclass
class NodeCluster:
    """A fleet of retrieval nodes, one per datastore cluster."""

    nodes: list[RetrievalNode] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, idx: int) -> RetrievalNode:
        return self.nodes[idx]

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        *,
        cpu: CPUPlatform = XEON_GOLD_6448Y,
        memory_gb: float = 1024.0,
    ) -> "NodeCluster":
        """Build *n_nodes* identical nodes (the paper's evaluation fleet)."""
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        return cls(
            nodes=[
                RetrievalNode(node_id=i, cpu=cpu, memory_gb=memory_gb)
                for i in range(n_nodes)
            ]
        )

    def host_shards(self, shard_tokens: list[float], shard_bytes: list[float]) -> None:
        """Place shard *i* on node *i*; sizes must match the fleet."""
        if len(shard_tokens) != len(self.nodes) or len(shard_bytes) != len(self.nodes):
            raise ValueError(
                f"expected {len(self.nodes)} shard sizes, got "
                f"{len(shard_tokens)} tokens / {len(shard_bytes)} bytes entries"
            )
        for node, tokens, nbytes in zip(self.nodes, shard_tokens, shard_bytes):
            node.host(tokens, nbytes)

    def total_tokens(self) -> float:
        return sum(n.shard_tokens for n in self.nodes)

    def total_bytes(self) -> float:
        return sum(n.shard_bytes for n in self.nodes)
