"""GPU platform models for the inference tier.

The paper serves LLM inference on NVIDIA A6000 Ada and L4 GPUs (its Fig. 17),
quoting 91 TFLOPS at 300 W for the A6000 Ada versus 31 TFLOPS at 140 W for
the L4 — the ratio that explains why the inference-class L4 saves *less*
energy than the general-purpose A6000 in their experiments. Multi-GPU tensor
parallelism (needed for OPT-30B, and for Gemma2-9B on L4s) adds a
communication overhead factor and multiplies power.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUPlatform:
    """An inference GPU.

    Attributes
    ----------
    peak_tflops:
        FP16 peak used for compute-bound (prefill) scaling.
    mem_bandwidth_gbs:
        HBM/GDDR bandwidth used for memory-bound (decode) scaling.
    tdp_w:
        Board power at full utilization.
    idle_w:
        Board power when idle.
    mem_gb:
        Memory capacity; decides how many GPUs a model needs (Fig. 17: OPT-30B
        needs 2x A6000, Gemma2-9B needs 2x L4).
    """

    name: str
    peak_tflops: float
    mem_bandwidth_gbs: float
    tdp_w: float
    idle_w: float
    mem_gb: float

    def __post_init__(self) -> None:
        if min(self.peak_tflops, self.mem_bandwidth_gbs, self.mem_gb) <= 0:
            raise ValueError("peak_tflops, mem_bandwidth_gbs, mem_gb must be positive")
        if self.tdp_w <= self.idle_w:
            raise ValueError("tdp must exceed idle power")

    def fits(self, model_mem_gb: float) -> bool:
        """Whether a model's weights + activations fit on one device."""
        return model_mem_gb <= self.mem_gb

    def gpus_required(self, model_mem_gb: float) -> int:
        """Minimum tensor-parallel degree for a model footprint."""
        import math

        return max(1, math.ceil(model_mem_gb / self.mem_gb))


# Paper-quoted envelopes (§6 Takeaway 3 discussion).
A6000_ADA = GPUPlatform(
    name="NVIDIA RTX 6000 Ada",
    peak_tflops=91.0,
    mem_bandwidth_gbs=960.0,
    tdp_w=300.0,
    idle_w=25.0,
    mem_gb=48.0,
)

L4 = GPUPlatform(
    name="NVIDIA L4",
    peak_tflops=31.0,
    mem_bandwidth_gbs=300.0,
    tdp_w=140.0,
    idle_w=16.0,
    mem_gb=24.0,
)

#: Registry keyed by the short names used in experiment configs.
GPU_PLATFORMS: dict[str, GPUPlatform] = {
    "a6000_ada": A6000_ADA,
    "l4": L4,
}


def get_gpu(key: str) -> GPUPlatform:
    """Look up a GPU platform by registry key."""
    try:
        return GPU_PLATFORMS[key]
    except KeyError:
        raise ValueError(f"unknown GPU {key!r}; known: {sorted(GPU_PLATFORMS)}") from None


#: Efficiency lost per extra tensor-parallel GPU (all-reduce overhead); the
#: paper observes diminishing returns adding GPUs for small models.
TENSOR_PARALLEL_OVERHEAD = 0.15


def tensor_parallel_speedup(n_gpus: int) -> float:
    """Effective speedup from *n_gpus*-way tensor parallelism.

    Linear scaling degraded by a per-GPU communication overhead; with the
    default overhead 2 GPUs give ~1.74x, matching the paper's observation
    that tensor parallelism on smaller models raises energy much faster than
    it cuts latency.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    return n_gpus / (1.0 + TENSOR_PARALLEL_OVERHEAD * (n_gpus - 1))
