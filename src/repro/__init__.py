"""Reproduction of *Hermes: Algorithm-System Co-design for Efficient
Retrieval-Augmented Generation At Scale* (Shen et al., ISCA 2025).

Public API quick tour
---------------------

>>> from repro import HermesSystem, HermesConfig, make_corpus
>>> corpus = make_corpus(5000)
>>> system = HermesSystem(corpus.embeddings, total_tokens=1e12)
>>> outcome = system.retrieve(corpus.embeddings[:8], k=5)
>>> outcome.search.ids.shape
(8, 5)

Subpackages
-----------

``repro.core``
    Hermes itself: clustered datastore, hierarchical search, scheduler,
    DVFS policies, end-to-end pipeline.
``repro.ann``
    Vector-search substrate (Flat/IVF/HNSW, SQ/PQ/OPQ quantization, K-means).
``repro.datastore``
    Synthetic corpora, encoder, and query workloads.
``repro.llm``
    Inference cost models and the strided-generation timeline.
``repro.hardware`` / ``repro.perfmodel``
    Platform models and the multi-node analysis tool.
``repro.baselines``
    Monolithic, naive split, PipeRAG, RAGCache.
``repro.experiments``
    One module per paper table/figure.
"""

from .baselines import MonolithicRetriever, NaiveSplitRetriever
from .core import (
    ClusteredDatastore,
    HermesConfig,
    HermesScheduler,
    HermesSearcher,
    HermesSystem,
    cluster_datastore,
    split_datastore_evenly,
)
from .datastore import SyntheticEncoder, TopicModel, make_corpus
from .llm import GenerationConfig, InferenceModel, simulate_generation
from .metrics import ndcg, recall_at_k
from .perfmodel import DVFSPolicy, MultiNodeModel

__version__ = "1.0.0"

__all__ = [
    "MonolithicRetriever",
    "NaiveSplitRetriever",
    "ClusteredDatastore",
    "HermesConfig",
    "HermesScheduler",
    "HermesSearcher",
    "HermesSystem",
    "cluster_datastore",
    "split_datastore_evenly",
    "SyntheticEncoder",
    "TopicModel",
    "make_corpus",
    "GenerationConfig",
    "InferenceModel",
    "simulate_generation",
    "ndcg",
    "recall_at_k",
    "DVFSPolicy",
    "MultiNodeModel",
    "__version__",
]
