"""Index-construction benchmark: before/after wall-clock for the build path.

The paper treats index construction as the expensive offline stage (§4.1:
hours to weeks at their scales), and every repro experiment pays it before a
single query runs. This harness times the optimised build pipeline
(mini-batch K-means with chunked E-steps, parallel shard builds, sampled
quantizer training, fingerprinted build cache) against the retained
pre-optimisation reference paths, asserts quality parity (final K-means
inertia and end-to-end recall@10), and writes ``BENCH_build.json``.

Run it from the repo root::

    python benchmarks/bench_build.py            # full run (50k x 64 corpus)
    python benchmarks/bench_build.py --smoke    # seconds, for CI budgets

or, once installed, via the console entry ``hermes-bench-build``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..ann.kmeans import kmeans, kmeans_minibatch, kmeans_reference
from ..ann.quantization import ProductQuantizer
from ..baselines.monolithic import MonolithicRetriever
from ..core.build_cache import BuildCache, CacheStats, cached_cluster_datastore
from ..core.clustering import cluster_datastore
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..datastore.embeddings import make_corpus
from ..datastore.queries import trivia_queries
from .sysinfo import cpu_metadata

#: Quality-parity bounds (the issue's acceptance criteria): the optimised
#: build's final K-means inertia must be within 5% of serial full Lloyd's,
#: and end-to-end recall@10 must match within 2 points.
INERTIA_RATIO_BOUND = 1.05
RECALL_GAP_BOUND = 0.02
#: End-to-end build speedup floor, asserted on full (non-smoke) runs.
SPEEDUP_FLOOR = 3.0


@dataclass(frozen=True)
class BenchSpec:
    """Workload sizes for one harness run."""

    n_vectors: int = 50_000
    dim: int = 64
    n_clusters: int = 10
    n_queries: int = 64
    k: int = 10
    #: K-means microbench shapes: (label, n, k) subproblems of the build.
    kmeans_cases: tuple[tuple[str, int, int], ...] = (
        ("split", 50_000, 10),
        ("shard_coarse", 5_000, 71),
    )
    kmeans_repeats: int = 2
    pq_train_rows: int = 50_000
    pq_train_sample: int = 16_384
    seed: int = 0

    @classmethod
    def smoke(cls) -> "BenchSpec":
        return cls(
            n_vectors=4_000,
            dim=32,
            n_clusters=4,
            n_queries=32,
            k=5,
            kmeans_cases=(("split", 4_000, 4), ("shard_coarse", 1_000, 31)),
            kmeans_repeats=1,
            pq_train_rows=4_000,
            pq_train_sample=2_000,
        )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_kmeans(spec: BenchSpec, embeddings: np.ndarray) -> list[dict]:
    """Reference vs chunked Lloyd's vs mini-batch on build-shaped problems."""
    rows = []
    for label, n, k in spec.kmeans_cases:
        vecs = embeddings[:n]
        ref = kmeans_reference(vecs, k, seed=spec.seed)
        lloyd = kmeans(vecs, k, seed=spec.seed)
        mb = kmeans_minibatch(vecs, k, seed=spec.seed)
        ref_s = _best_of(lambda: kmeans_reference(vecs, k, seed=spec.seed), spec.kmeans_repeats)
        lloyd_s = _best_of(lambda: kmeans(vecs, k, seed=spec.seed), spec.kmeans_repeats)
        mb_s = _best_of(lambda: kmeans_minibatch(vecs, k, seed=spec.seed), spec.kmeans_repeats)
        rows.append(
            {
                "case": label,
                "n": n,
                "k": k,
                "reference_s": ref_s,
                "lloyd_s": lloyd_s,
                "minibatch_s": mb_s,
                "lloyd_speedup": ref_s / lloyd_s,
                "minibatch_speedup": ref_s / mb_s,
                "lloyd_inertia_ratio": lloyd.inertia / ref.inertia,
                "minibatch_inertia_ratio": mb.inertia / ref.inertia,
            }
        )
    return rows


def _bench_quantizer(spec: BenchSpec, embeddings: np.ndarray) -> dict:
    """Full vs sampled PQ codebook training, with reconstruction parity."""
    rows = embeddings[: spec.pq_train_rows]
    probe = rows[: min(len(rows), 4_096)]

    def recon_error(pq: ProductQuantizer) -> float:
        return float(np.mean((pq.decode(pq.encode(probe)) - probe) ** 2))

    full = ProductQuantizer(spec.dim, m=8, train_seed=spec.seed)
    sampled = ProductQuantizer(
        spec.dim, m=8, train_seed=spec.seed, train_sample=spec.pq_train_sample
    )
    full_s = _best_of(lambda: full.train(rows), 1)
    sampled_s = _best_of(lambda: sampled.train(rows), 1)
    return {
        "scheme": "pq8",
        "n_train": len(rows),
        "train_sample": spec.pq_train_sample,
        "full_s": full_s,
        "sampled_s": sampled_s,
        "speedup": full_s / sampled_s,
        "recon_error_ratio": recon_error(sampled) / recon_error(full),
    }


def _recall_at_k(datastore, queries: np.ndarray, truth: np.ndarray, k: int) -> float:
    searcher = HermesSearcher(datastore)
    m = min(3, datastore.n_clusters)
    result = searcher.search(queries, k=k, clusters_to_search=m)
    hits = 0
    for found, expected in zip(result.ids, truth):
        hits += len(set(found[found >= 0]) & set(expected))
    return hits / truth.size


def _bench_datastore_build(spec: BenchSpec, corpus, queries) -> dict:
    """End-to-end ``cluster_datastore``: reference knobs vs optimised knobs."""
    base = HermesConfig(
        n_clusters=spec.n_clusters,
        clusters_to_search=min(3, spec.n_clusters),
    )
    ref_config = replace(
        base, kmeans_algorithm="reference", build_workers=1, quantizer_train_sample=None
    )
    opt_config = base  # the defaults are the optimised pipeline

    t0 = time.perf_counter()
    ref_store = cluster_datastore(corpus.embeddings, ref_config)
    before_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    opt_store = cluster_datastore(corpus.embeddings, opt_config)
    after_s = time.perf_counter() - t0

    mono = MonolithicRetriever(corpus.embeddings)
    _, truth = mono.ground_truth(queries, spec.k)
    recall_before = _recall_at_k(ref_store, queries, truth, spec.k)
    recall_after = _recall_at_k(opt_store, queries, truth, spec.k)
    inertia_ratio = opt_store.clustering.inertia / ref_store.clustering.inertia
    return {
        "n_vectors": spec.n_vectors,
        "dim": spec.dim,
        "n_clusters": spec.n_clusters,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "inertia_ratio": inertia_ratio,
        "recall_before": recall_before,
        "recall_after": recall_after,
        "recall_gap": abs(recall_before - recall_after),
        "quality_parity": bool(
            inertia_ratio <= INERTIA_RATIO_BOUND
            and abs(recall_before - recall_after) <= RECALL_GAP_BOUND
        ),
    }


def _bench_cache(spec: BenchSpec, corpus) -> dict:
    """Cold build-and-store vs warm load through the fingerprinted cache."""
    config = HermesConfig(
        n_clusters=spec.n_clusters, clusters_to_search=min(3, spec.n_clusters)
    )
    stats = CacheStats()
    tmp = tempfile.mkdtemp(prefix="hermes-bench-cache-")
    try:
        cache = BuildCache(tmp, stats=stats)
        t0 = time.perf_counter()
        cached_cluster_datastore(corpus.embeddings, config, cache=cache, use_cache=True)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        cached_cluster_datastore(corpus.embeddings, config, cache=cache, use_cache=True)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "hits": stats.hits,
        "misses": stats.misses,
        "stores": stats.stores,
    }


def run_benchmarks(
    *, smoke: bool = False, out: "str | Path | None" = "BENCH_build.json"
) -> dict:
    """Run the full harness; returns (and optionally writes) the report.

    Raises ``AssertionError`` when quality parity fails (any mode) or when a
    full run misses the end-to-end speedup floor.
    """
    spec = BenchSpec.smoke() if smoke else BenchSpec()
    corpus = make_corpus(
        spec.n_vectors, n_topics=spec.n_clusters, dim=spec.dim, seed=spec.seed
    )
    queries = trivia_queries(corpus.topic_model, spec.n_queries).embeddings
    report = {
        "bench": "build",
        "smoke": smoke,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "n_vectors": spec.n_vectors,
            "dim": spec.dim,
            "n_clusters": spec.n_clusters,
            "k": spec.k,
            "numpy": np.__version__,
            **cpu_metadata(),
        },
        "kmeans": _bench_kmeans(spec, corpus.embeddings),
        "quantizer": _bench_quantizer(spec, corpus.embeddings),
        "datastore_build": _bench_datastore_build(spec, corpus, queries),
        "cache": _bench_cache(spec, corpus),
    }
    build = report["datastore_build"]
    assert build["inertia_ratio"] <= INERTIA_RATIO_BOUND, (
        f"optimised build inertia ratio {build['inertia_ratio']:.4f} exceeds "
        f"{INERTIA_RATIO_BOUND}"
    )
    assert build["recall_gap"] <= RECALL_GAP_BOUND, (
        f"recall@{spec.k} gap {build['recall_gap']:.4f} exceeds {RECALL_GAP_BOUND} "
        f"(before={build['recall_before']:.4f}, after={build['recall_after']:.4f})"
    )
    assert build["quality_parity"]
    cache = report["cache"]
    assert (cache["misses"], cache["hits"], cache["stores"]) == (1, 1, 1), (
        f"cache did not behave as cold-miss/warm-hit: {cache}"
    )
    if not smoke:
        assert build["speedup"] >= SPEEDUP_FLOOR, (
            f"end-to-end build speedup {build['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format_report(report: dict) -> str:
    lines = [
        f"build bench (smoke={report['smoke']}, "
        f"n={report['meta']['n_vectors']}, dim={report['meta']['dim']}, "
        f"clusters={report['meta']['n_clusters']}, cpus={report['meta']['cpu_count']})"
    ]
    for row in report["kmeans"]:
        lines.append(
            f"  kmeans {row['case']:<12s} n={row['n']:<6d} k={row['k']:<4d} "
            f"ref={row['reference_s'] * 1e3:8.1f} ms "
            f"lloyd={row['lloyd_s'] * 1e3:7.1f} ms ({row['lloyd_speedup']:5.2f}x, "
            f"inertia x{row['lloyd_inertia_ratio']:.4f}) "
            f"minibatch={row['minibatch_s'] * 1e3:7.1f} ms "
            f"({row['minibatch_speedup']:5.2f}x, inertia x{row['minibatch_inertia_ratio']:.4f})"
        )
    q = report["quantizer"]
    lines.append(
        f"  {q['scheme']} training n={q['n_train']}: full={q['full_s'] * 1e3:.1f} ms "
        f"sampled[{q['train_sample']}]={q['sampled_s'] * 1e3:.1f} ms "
        f"({q['speedup']:.2f}x, recon-error x{q['recon_error_ratio']:.4f})"
    )
    b = report["datastore_build"]
    lines.append(
        f"  datastore build {b['n_vectors']}x{b['dim']} -> {b['n_clusters']} shards: "
        f"before={b['before_s']:.2f} s after={b['after_s']:.2f} s "
        f"(speedup {b['speedup']:.2f}x, inertia x{b['inertia_ratio']:.4f}, "
        f"recall@{report['meta']['k']} {b['recall_before']:.3f} -> {b['recall_after']:.3f})"
    )
    c = report["cache"]
    lines.append(
        f"  build cache: cold={c['cold_s']:.2f} s warm={c['warm_s']:.2f} s "
        f"({c['speedup']:.1f}x; {c['hits']} hit, {c['misses']} miss, {c['stores']} store)"
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes so the harness fits tier-1 CI time budgets",
    )
    parser.add_argument(
        "--out",
        default="BENCH_build.json",
        help="report path (default: ./BENCH_build.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke, out=args.out)
    print(_format_report(report))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
