"""Serving microbenchmark: the retrieval cache + dynamic batching frontend.

The serve-time premise (Fig. 13) is that request streams are Zipf-skewed, so
a retrieval cache in front of the hierarchical searcher converts redundancy
into latency. This harness measures exactly that, in four sections, and
writes ``BENCH_serve.json``:

- **exact_path** — a Zipf-``α`` stream served through the cache-fronted
  frontend vs. straight through the searcher. Asserts the two are
  *bit-identical* (ids and distances) — the exact tier must never change
  results — and, on full runs, that the cached path is ≥ 2x faster at equal
  NDCG@k.
- **semantic_path** — the same stream with half the repeats jittered into
  near-duplicates, exercising the semantic tier; reports the tier mix and
  the measured NDCG delta of threshold-based result reuse.
- **batcher** — single-query submissions coalesced by the
  :class:`~repro.serving.frontend.DynamicBatcher` under its deadline budget.
- **stride_reuse** — strided RAG sessions with and without
  ``reuse_routing``: sample-search skips, document overlap, and the
  *measured* RAGCache prefix hit rate.
- **mutation_sweep** — the same Zipf stream replayed while the datastore
  mutates (per-batch inserts + deletes at several churn rates): p50 with
  the delta memtables live vs after compaction, NDCG@k against brute force
  over the live vectors at both stages, and (on full runs) the acceptance
  floor that 1% churn costs ≤ 15% p50 at *equal* NDCG.

Run from the repo root::

    python benchmarks/bench_serve.py            # full run
    python benchmarks/bench_serve.py --smoke    # seconds, for CI budgets

or, once installed, via the console entry ``hermes-bench-serve``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..baselines.monolithic import MonolithicRetriever
from ..core.clustering import cluster_datastore
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..core.session import StridedRAGSession
from ..datastore.chunkstore import ChunkStore
from ..datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from ..datastore.embeddings import make_corpus, zipf_weights
from ..datastore.encoder import SyntheticEncoder
from ..datastore.queries import trivia_queries
from ..llm.kvcache import PrefixCache
from ..metrics.ndcg import ndcg
from ..serving.cache import CacheConfig, RetrievalCache
from ..serving.frontend import DynamicBatcher, ServingFrontend
from .sysinfo import cpu_metadata

#: Full-run acceptance floor: cached mean batch latency vs uncached.
SPEEDUP_FLOOR = 2.0

#: Full-run acceptance ceiling: p50 overhead of live delta serving at 1% churn.
MUTATION_OVERHEAD_CEILING = 0.15


@dataclass(frozen=True)
class BenchSpec:
    """Workload sizes for one harness run."""

    n_docs: int = 20_000
    dim: int = 64
    n_topics: int = 10
    n_clusters: int = 10
    clusters_to_search: int = 3
    deep_nprobe: int = 64
    k: int = 10
    # Zipf request stream over a fixed unique-query pool.
    n_unique: int = 192
    n_requests: int = 1536
    batch: int = 32
    alpha: float = 1.2
    capacity: int = 512
    semantic_threshold: float = 0.995
    routing_threshold: float = 0.98
    jitter: float = 0.003
    # Dynamic-batcher section.
    batcher_requests: int = 256
    batcher_max_batch: int = 32
    batcher_wait_s: float = 0.005
    # Strided-session section (token-level stack).
    session_docs: int = 300
    session_queries: int = 8
    session_strides: int = 8
    seed: int = 0

    @classmethod
    def smoke(cls) -> "BenchSpec":
        return cls(
            n_docs=3_000,
            dim=32,
            n_topics=5,
            n_clusters=5,
            clusters_to_search=2,
            deep_nprobe=16,
            k=5,
            n_unique=48,
            n_requests=256,
            batch=16,
            capacity=128,
            batcher_requests=48,
            batcher_max_batch=16,
            session_docs=150,
            session_queries=4,
            session_strides=6,
        )


def _make_stack(spec: BenchSpec):
    """Shared corpus, searcher, Zipf query pool, and exact ground truth."""
    corpus = make_corpus(
        spec.n_docs, n_topics=spec.n_topics, dim=spec.dim, seed=spec.seed
    )
    config = HermesConfig(
        n_clusters=spec.n_clusters,
        clusters_to_search=spec.clusters_to_search,
        deep_nprobe=spec.deep_nprobe,
        k=spec.k,
    )
    datastore = cluster_datastore(corpus.embeddings, config)
    searcher = HermesSearcher(datastore, config=config)
    pool = trivia_queries(corpus.topic_model, spec.n_unique, seed=spec.seed + 7).embeddings
    _, truth = MonolithicRetriever(corpus.embeddings).ground_truth(pool, spec.k)
    return searcher, pool, truth


def _stream(spec: BenchSpec, rng: np.random.Generator) -> np.ndarray:
    weights = zipf_weights(spec.n_unique, exponent=spec.alpha)
    return rng.choice(spec.n_unique, size=spec.n_requests, p=weights)


def _replay(frontend_search, queries: np.ndarray, batch: int, k: int):
    """Time one pass of *queries* through a search callable, batch by batch."""
    latencies, ids = [], []
    for start in range(0, len(queries), batch):
        qb = queries[start : start + batch]
        t0 = time.perf_counter()
        result = frontend_search(qb, k)
        latencies.append(time.perf_counter() - t0)
        ids.append(result)
    return np.asarray(latencies), np.concatenate(ids)


def _bench_exact_path(spec: BenchSpec, searcher, pool, truth, *, smoke: bool) -> dict:
    rng = np.random.default_rng(spec.seed)
    stream = _stream(spec, rng)
    queries = pool[stream]
    stream_truth = truth[stream]

    cache = RetrievalCache(
        CacheConfig(
            capacity=spec.capacity, semantic_threshold=None, routing_threshold=None
        )
    )
    frontend = ServingFrontend(searcher, cache=cache)

    cached_lat, cached_ids = _replay(
        lambda qb, k: frontend.search(qb, k=k).ids, queries, spec.batch, spec.k
    )
    uncached_lat, uncached_ids = _replay(
        lambda qb, k: searcher.search(qb, k=k).ids, queries, spec.batch, spec.k
    )

    if not np.array_equal(cached_ids, uncached_ids):
        raise AssertionError("exact path: cached ids diverge from direct search")
    cached_ndcg = ndcg(cached_ids, stream_truth)
    uncached_ndcg = ndcg(uncached_ids, stream_truth)
    if cached_ndcg != uncached_ndcg:
        raise AssertionError("exact path: NDCG changed despite identical ids")

    speedup = float(uncached_lat.mean() / cached_lat.mean())
    if not smoke and speedup < SPEEDUP_FLOOR:
        raise AssertionError(
            f"exact path: cached speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor"
        )
    stats = cache.stats
    return {
        "alpha": spec.alpha,
        "n_requests": spec.n_requests,
        "batch": spec.batch,
        "hit_rate": stats.hit_rate,
        "exact_hits": stats.exact_hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "cached_mean_ms": float(cached_lat.mean() * 1e3),
        "cached_p50_ms": float(np.percentile(cached_lat, 50) * 1e3),
        "cached_p99_ms": float(np.percentile(cached_lat, 99) * 1e3),
        "uncached_mean_ms": float(uncached_lat.mean() * 1e3),
        "uncached_p50_ms": float(np.percentile(uncached_lat, 50) * 1e3),
        "uncached_p99_ms": float(np.percentile(uncached_lat, 99) * 1e3),
        "speedup": speedup,
        "ndcg": float(cached_ndcg),
        "uncached_ndcg": float(uncached_ndcg),
        "bit_identical": True,
    }


def _bench_semantic_path(spec: BenchSpec, searcher, pool, truth) -> dict:
    rng = np.random.default_rng(spec.seed + 1)
    stream = _stream(spec, rng)
    queries = pool[stream].copy()
    # Half the requests become near-duplicates: semantic-tier territory.
    jittered = rng.random(len(stream)) < 0.5
    queries[jittered] += rng.normal(
        scale=spec.jitter, size=(int(jittered.sum()), queries.shape[1])
    ).astype(np.float32)
    stream_truth = truth[stream]

    cache = RetrievalCache(
        CacheConfig(
            capacity=spec.capacity,
            semantic_threshold=spec.semantic_threshold,
            routing_threshold=spec.routing_threshold,
        )
    )
    frontend = ServingFrontend(searcher, cache=cache)
    cached_lat, cached_ids = _replay(
        lambda qb, k: frontend.search(qb, k=k).ids, queries, spec.batch, spec.k
    )
    uncached_lat, uncached_ids = _replay(
        lambda qb, k: searcher.search(qb, k=k).ids, queries, spec.batch, spec.k
    )
    stats = cache.stats
    cached_ndcg = float(ndcg(cached_ids, stream_truth))
    uncached_ndcg = float(ndcg(uncached_ids, stream_truth))
    return {
        "alpha": spec.alpha,
        "jitter": spec.jitter,
        "jittered_fraction": float(jittered.mean()),
        "hit_rate": stats.hit_rate,
        "exact_hits": stats.exact_hits,
        "semantic_hits": stats.semantic_hits,
        "routing_hits": stats.routing_hits,
        "misses": stats.misses,
        "cached_mean_ms": float(cached_lat.mean() * 1e3),
        "uncached_mean_ms": float(uncached_lat.mean() * 1e3),
        "speedup": float(uncached_lat.mean() / cached_lat.mean()),
        "ndcg": cached_ndcg,
        "uncached_ndcg": uncached_ndcg,
        # The measured accuracy cost of threshold-based result reuse.
        "ndcg_delta": cached_ndcg - uncached_ndcg,
    }


def _bench_batcher(spec: BenchSpec, searcher, pool, truth) -> dict:
    rng = np.random.default_rng(spec.seed + 2)
    weights = zipf_weights(spec.n_unique, exponent=spec.alpha)
    stream = rng.choice(spec.n_unique, size=spec.batcher_requests, p=weights)
    frontend = ServingFrontend(
        searcher, cache_config=CacheConfig(capacity=spec.capacity)
    )
    t0 = time.perf_counter()
    with DynamicBatcher(
        frontend, max_batch=spec.batcher_max_batch, max_wait_s=spec.batcher_wait_s
    ) as batcher:
        futures = [batcher.submit(pool[i], k=spec.k) for i in stream]
        rows = [f.result() for f in futures]
    wall = time.perf_counter() - t0
    ids = np.stack([served.ids for served in rows])
    stats = batcher.stats
    return {
        "requests": stats.requests,
        "batches": stats.batches,
        "mean_batch": stats.mean_batch,
        "max_batch": stats.max_batch,
        "max_wait_s": spec.batcher_wait_s,
        "wall_s": wall,
        "throughput_qps": spec.batcher_requests / wall,
        "ndcg": float(ndcg(ids, truth[stream])),
    }


def _bench_stride_reuse(spec: BenchSpec, *, smoke: bool) -> dict:
    """Sessions with vs. without routing reuse + live prefix-cache replay."""
    vocab = TokenVocabulary(n_topics=spec.n_topics, pool_size=150, common_size=80)
    gen = CorpusGenerator(vocab, doc_tokens=96, topical_fraction=0.8, seed=spec.seed + 3)
    docs = gen.generate(spec.session_docs)
    chunks = chunk_documents(docs, chunk_tokens=48)
    encoder = SyntheticEncoder(dim=spec.dim, seed=0)
    embeddings = encoder.encode_chunks(chunks)
    datastore = cluster_datastore(
        embeddings,
        HermesConfig(
            n_clusters=spec.n_clusters,
            clusters_to_search=spec.clusters_to_search,
        ),
    )
    searcher = HermesSearcher(datastore)
    store = ChunkStore(chunks)
    rng = np.random.default_rng(spec.seed + 4)
    queries = [
        rng.choice(vocab.topic_pool(q % spec.n_topics), size=16, replace=False)
        for q in range(spec.session_queries)
    ]

    out: dict = {}
    for label, reuse in (("fresh", False), ("reused", True)):
        traces = []
        t0 = time.perf_counter()
        for qi, tokens in enumerate(queries):
            session = StridedRAGSession(
                searcher,
                encoder,
                store,
                stride_tokens=16,
                seed=spec.seed + qi,
                reuse_routing=reuse,
                prefix_cache=PrefixCache(capacity=4096),
            )
            traces.append(session.run(tokens, n_strides=spec.session_strides))
        wall = time.perf_counter() - t0
        out[label] = {
            "wall_s": wall,
            "routing_reuse_fraction": float(
                np.mean([t.routing_reuse_fraction for t in traces])
            ),
            "routing_stability": float(
                np.mean([t.routing_stability() for t in traces])
            ),
            "document_overlap": float(
                np.mean([t.document_overlap() for t in traces])
            ),
            # RAGCache's "ideal 100%" assumption, measured on the real trace.
            "measured_prefix_hit_rate": float(
                np.mean([t.measured_prefix_hit_rate for t in traces])
            ),
        }
    out["sessions"] = spec.session_queries
    out["strides"] = spec.session_strides
    if not smoke and out["reused"]["routing_reuse_fraction"] <= 0:
        raise AssertionError("stride reuse: no stride ever reused its routing")
    return out


def _bench_mutation_sweep(spec: BenchSpec, *, smoke: bool) -> dict:
    """Replay the Zipf stream under per-batch churn; live vs compacted.

    One private datastore mutates across the whole sweep (equal inserts and
    deletes keep its size constant); each churn point starts from a fully
    compacted state. Every search runs at full fan-out and full probe so the
    live (delta + tombstone) and compacted answers are bit-identical by the
    mutation-equivalence contract — making the p50 gap a pure measurement of
    what the delta scan costs.
    """
    from ..ann.flat import FlatIndex
    from ..datastore.embeddings import TopicModel

    churns = (0.0, 0.01, 0.05)
    corpus = make_corpus(
        spec.n_docs, n_topics=spec.n_topics, dim=spec.dim, seed=spec.seed + 5
    )
    config = HermesConfig(
        n_clusters=spec.n_clusters,
        clusters_to_search=spec.n_clusters,
        k=spec.k,
    )
    datastore = cluster_datastore(corpus.embeddings, config)
    searcher = HermesSearcher(datastore, config=config)
    full_probe = max(s.index.nlist for s in datastore.shards)
    pool = trivia_queries(
        corpus.topic_model, spec.n_unique, seed=spec.seed + 8
    ).embeddings
    model = corpus.topic_model
    fresh_model = TopicModel(
        centers=model.centers,
        weights=model.weights,
        spread=model.spread,
        rng_seed=spec.seed + 9,
    )
    rng = np.random.default_rng(spec.seed + 6)
    stream = _stream(spec, rng)
    queries = pool[stream]

    def full_search(qb):
        return searcher.search(
            qb,
            k=spec.k,
            clusters_to_search=datastore.n_clusters,
            deep_nprobe=full_probe,
        ).ids

    live = np.arange(len(datastore.assignments))
    points = []
    for churn in churns:
        # Fractional accumulator: churn * batch is < 1 at small batches, so
        # rounding per batch would silently mutate nothing and make the
        # overhead measurement vacuous; carry the remainder instead.
        mut_acc = 0.0
        mutated = 0
        live_lat = []
        peak_delta = 0
        for start in range(0, len(queries), spec.batch):
            mut_acc += churn * spec.batch
            n_mut = int(mut_acc)
            mut_acc -= n_mut
            mutated += n_mut
            if n_mut:
                fresh, _ = fresh_model.sample_documents(n_mut)
                new_ids = datastore.add_documents(fresh)
                victims = rng.choice(
                    np.concatenate([live, new_ids]), size=n_mut, replace=False
                )
                datastore.delete_documents(victims)
                live = np.setdiff1d(
                    np.concatenate([live, new_ids]), victims, assume_unique=True
                )
            peak_delta = max(peak_delta, datastore.delta_rows())
            qb = queries[start : start + spec.batch]
            t0 = time.perf_counter()
            full_search(qb)
            live_lat.append(time.perf_counter() - t0)

        live_vecs = datastore.reconstruct_vectors()[live]
        exact = FlatIndex(spec.dim, "ip")
        exact.add(live_vecs)
        _, truth_pos = exact.search(pool, spec.k)
        truth = live[truth_pos]
        live_ids = full_search(pool)
        ndcg_live = float(ndcg(live_ids, truth))

        datastore.compact()
        compacted_ids = full_search(pool)
        ndcg_compacted = float(ndcg(compacted_ids, truth))
        identical = bool(np.array_equal(live_ids, compacted_ids))

        compacted_lat = []
        for start in range(0, len(queries), spec.batch):
            qb = queries[start : start + spec.batch]
            t0 = time.perf_counter()
            full_search(qb)
            compacted_lat.append(time.perf_counter() - t0)

        p50_live = float(np.percentile(live_lat, 50) * 1e3)
        p50_compacted = float(np.percentile(compacted_lat, 50) * 1e3)
        points.append(
            {
                "churn": churn,
                "mutations": mutated,
                "peak_delta_rows": peak_delta,
                "p50_live_ms": p50_live,
                "p50_compacted_ms": p50_compacted,
                "overhead_frac": p50_live / p50_compacted - 1.0,
                "ndcg_live": ndcg_live,
                "ndcg_compacted": ndcg_compacted,
                "bit_identical": identical,
            }
        )

    if not smoke:
        for p in points:
            if p["churn"] > 0 and p["peak_delta_rows"] == 0:
                raise AssertionError(
                    f"mutation sweep: churn {p['churn']:.0%} accumulated no "
                    "delta rows — the mutation path was not exercised"
                )
            if not p["bit_identical"] or p["ndcg_live"] != p["ndcg_compacted"]:
                raise AssertionError(
                    f"mutation sweep: live != compacted at churn {p['churn']:.0%}"
                )
            if p["churn"] == 0.01 and p["overhead_frac"] > MUTATION_OVERHEAD_CEILING:
                raise AssertionError(
                    f"mutation sweep: {p['overhead_frac']:.0%} p50 overhead at 1% "
                    f"churn exceeds the {MUTATION_OVERHEAD_CEILING:.0%} ceiling"
                )
    return {"churns": list(churns), "points": points}


def run_benchmarks(
    *, smoke: bool = False, out: "str | Path | None" = "BENCH_serve.json"
) -> dict:
    """Run the full harness; returns (and optionally writes) the report."""
    spec = BenchSpec.smoke() if smoke else BenchSpec()
    searcher, pool, truth = _make_stack(spec)
    report = {
        "bench": "serve",
        "smoke": smoke,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "n_docs": spec.n_docs,
            "dim": spec.dim,
            "n_clusters": spec.n_clusters,
            "n_unique": spec.n_unique,
            "n_requests": spec.n_requests,
            "batch": spec.batch,
            "alpha": spec.alpha,
            "capacity": spec.capacity,
            "k": spec.k,
            "numpy": np.__version__,
            **cpu_metadata(),
        },
        "exact_path": _bench_exact_path(spec, searcher, pool, truth, smoke=smoke),
        "semantic_path": _bench_semantic_path(spec, searcher, pool, truth),
        "batcher": _bench_batcher(spec, searcher, pool, truth),
        "stride_reuse": _bench_stride_reuse(spec, smoke=smoke),
        "mutation_sweep": _bench_mutation_sweep(spec, smoke=smoke),
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format_report(report: dict) -> str:
    e = report["exact_path"]
    s = report["semantic_path"]
    b = report["batcher"]
    r = report["stride_reuse"]
    lines = [
        f"serve bench (smoke={report['smoke']}, alpha={e['alpha']}, "
        f"{report['meta']['n_unique']} unique / {e['n_requests']} requests, "
        f"cpus={report['meta']['cpu_count']}, "
        f"affinity={report['meta']['cpu_affinity']})",
        f"  exact    hit={e['hit_rate']:.0%} "
        f"cached={e['cached_mean_ms']:.2f} ms "
        f"uncached={e['uncached_mean_ms']:.2f} ms "
        f"speedup={e['speedup']:.2f}x "
        f"NDCG {e['ndcg']:.4f} == {e['uncached_ndcg']:.4f} (bit-identical)",
        f"  semantic hit={s['hit_rate']:.0%} "
        f"(exact {s['exact_hits']} / semantic {s['semantic_hits']} / "
        f"routing {s['routing_hits']} / miss {s['misses']}) "
        f"speedup={s['speedup']:.2f}x NDCG delta {s['ndcg_delta']:+.4f}",
        f"  batcher  {b['requests']} requests -> {b['batches']} batches "
        f"(mean {b['mean_batch']:.1f}, max {b['max_batch']}), "
        f"{b['throughput_qps']:.0f} QPS, NDCG {b['ndcg']:.4f}",
        f"  sessions reuse={r['reused']['routing_reuse_fraction']:.0%} of strides, "
        f"stability {r['reused']['routing_stability']:.2f}, "
        f"overlap {r['reused']['document_overlap']:.2f}, "
        f"prefix hit {r['reused']['measured_prefix_hit_rate']:.0%} "
        f"(fresh {r['fresh']['wall_s']:.2f} s -> "
        f"reused {r['reused']['wall_s']:.2f} s)",
    ]
    for p in report["mutation_sweep"]["points"]:
        lines.append(
            f"  churn {p['churn']:>4.0%} "
            f"p50 live={p['p50_live_ms']:.2f} ms "
            f"compacted={p['p50_compacted_ms']:.2f} ms "
            f"({p['overhead_frac']:+.0%}), "
            f"NDCG {p['ndcg_live']:.4f} == {p['ndcg_compacted']:.4f} "
            f"({'bit-identical' if p['bit_identical'] else 'DIVERGED'})"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes so the harness fits tier-1 CI time budgets",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="report path (default: ./BENCH_serve.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke, out=args.out)
    print(_format_report(report))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
