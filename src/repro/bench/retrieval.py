"""Retrieval microbenchmark: before/after wall-clock for the IVF fast path.

Hermes's premise is that CPU-side retrieval dominates RAG latency at scale
(§2, Figs. 6-8), so the vector-search hot path must be as fast as the
hardware allows. This harness times the optimised search engine (compacted
CSR lists + cell-major batched scan + ADC + threaded shard fan-out) against
the retained pre-optimisation reference path
(:meth:`repro.ann.ivf.IVFIndex.search_reference`), asserts the two return
identical results, and writes ``BENCH_retrieval.json``.

Run it from the repo root::

    python benchmarks/bench_retrieval.py            # full run (~50k vectors)
    python benchmarks/bench_retrieval.py --smoke    # seconds, for CI budgets

or, once installed, via the console entry ``hermes-bench-retrieval``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ann.distances import as_matrix
from ..ann.flat import FlatIndex
from ..ann.ivf import IVFIndex
from ..ann.quantization import make_quantizer
from ..core.clustering import split_datastore_evenly
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..obs.metrics import get_registry
from ..obs.trace import disable_tracing, enable_tracing
from .sysinfo import cpu_metadata


@dataclass(frozen=True)
class BenchSpec:
    """Workload sizes for one harness run."""

    n_vectors: int = 50_000
    dim: int = 64
    n_train: int = 10_000
    nlist: int = 224
    # The paper's deep-search operating point (§4.2 uses nProbe=128 for the
    # deep pass); this is where the batched scan matters most.
    nprobe: int = 128
    k: int = 10
    batches: tuple[int, ...] = (1, 32)
    repeats: int = 3
    hier_clusters: int = 10
    hier_batch: int = 32
    hier_deep_nprobe: int = 128
    seed: int = 0

    @classmethod
    def smoke(cls) -> "BenchSpec":
        return cls(
            n_vectors=2_500,
            dim=32,
            n_train=2_500,
            nlist=32,
            nprobe=8,
            k=5,
            batches=(1, 8),
            repeats=1,
            hier_clusters=4,
            hier_batch=8,
            hier_deep_nprobe=16,
        )


def _make_data(spec: BenchSpec) -> tuple[np.ndarray, np.ndarray]:
    """Topic-structured corpus + a query pool drawn near stored vectors."""
    rng = np.random.default_rng(spec.seed)
    n_topics = 32
    centers = rng.normal(scale=4.0, size=(n_topics, spec.dim))
    topic = rng.integers(0, n_topics, size=spec.n_vectors)
    data = (centers[topic] + rng.normal(size=(spec.n_vectors, spec.dim))).astype(
        np.float32
    )
    pool = max(spec.batches + (spec.hier_batch,))
    queries = data[rng.choice(spec.n_vectors, pool, replace=False)] + rng.normal(
        scale=0.05, size=(pool, spec.dim)
    ).astype(np.float32)
    return data, queries.astype(np.float32)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_equivalent(name: str, ref, fast, *, atol: float = 5e-3) -> None:
    ref_d, ref_i = ref
    fast_d, fast_i = fast
    if not np.array_equal(ref_i, fast_i):
        raise AssertionError(f"{name}: fast-path ids diverge from reference")
    finite = np.isfinite(ref_d)
    if not np.array_equal(finite, np.isfinite(fast_d)):
        raise AssertionError(f"{name}: fast-path padding diverges from reference")
    # ids must match exactly; distances only up to float32 accumulation noise
    # (ADC reassociates the reduction, so ~1e-3 absolute at |d| ~ 1e2).
    if not np.allclose(ref_d[finite], fast_d[finite], rtol=1e-3, atol=atol):
        raise AssertionError(f"{name}: fast-path distances diverge from reference")


def _bench_single_indices(spec: BenchSpec, data, queries, metric: str) -> list[dict]:
    rows: list[dict] = []
    train = data[: spec.n_train]

    flat = FlatIndex(spec.dim, metric)
    flat.add(data)
    for batch in spec.batches:
        q = queries[:batch]
        rows.append(
            {
                "index": "flat",
                "batch": batch,
                "before_s": None,
                "after_s": _best_of(lambda: flat.search(q, spec.k), spec.repeats),
                "speedup": None,
                "equivalent": None,
            }
        )

    schemes = [
        ("ivf_flat", "flat"),
        ("ivf_sq8", "sq8"),
        ("ivf_pq8", "pq8"),
        ("ivf_opq8", "opq8"),
    ]
    pruned_counter = get_registry().counter(
        "ivf_cells_pruned_total",
        "probed (query, cell) pairs skipped by the streaming scan's "
        "triangle-inequality bound",
    )
    for name, scheme in schemes:
        index = IVFIndex(
            spec.dim,
            metric,
            nlist=spec.nlist,
            nprobe=spec.nprobe,
            quantizer=make_quantizer(scheme, spec.dim),
        )
        index.train(train)
        index.add(data)
        # Warm every lazy scan structure (compaction, ADC norms, pruning
        # radii) up front: the rows time steady-state serving, matching how
        # a deployed index arrives warm from the v4 persistence format.
        index.warm_scan_state()
        streaming = index.quantizer.adc_dense_advantage <= 1.0
        for batch in spec.batches:
            q = queries[:batch]
            ref = index.search_reference(q, spec.k)
            fast = index.search(q, spec.k)
            unpruned = index.search(q, spec.k, prune=False)
            _assert_equivalent(f"{name}/batch{batch}", ref, fast)
            _assert_equivalent(f"{name}/batch{batch}/prune=False", ref, unpruned)
            before = _best_of(lambda: index.search_reference(q, spec.k), spec.repeats)
            after = _best_of(lambda: index.search(q, spec.k), spec.repeats)
            # PR-7 baseline: the dense/sparse strategies without threshold
            # pruning — isolates what the streaming scan adds on top.
            baseline = _best_of(
                lambda: index.search(q, spec.k, prune=False), spec.repeats
            )
            pruned_before = pruned_counter.total()
            index.search(q, spec.k)
            cells_pruned = pruned_counter.total() - pruned_before
            rows.append(
                {
                    "index": name,
                    "batch": batch,
                    "before_s": before,
                    "after_s": after,
                    "baseline_s": baseline,
                    "speedup": before / after,
                    "pruned_speedup": baseline / after,
                    "cells_pruned": int(cells_pruned),
                    "strategy": "streaming" if streaming else "dense/sparse",
                    "equivalent": True,
                }
            )
    return rows


def _hierarchical_reference(searcher, queries, k, m, nprobe):
    """The pre-optimisation hierarchical path: sequential shards, per-query
    reference IVF scans, row-by-row candidate merge."""
    q = as_matrix(queries)
    routing = searcher.router.route(q, searcher.datastore, m, exclude=frozenset())
    fanout = routing.fanout
    nq = len(q)
    cand_d = np.full((nq, fanout * k), np.inf, dtype=np.float32)
    cand_i = np.full((nq, fanout * k), -1, dtype=np.int64)
    for shard in searcher.datastore.shards:
        hit_q, hit_slot = np.nonzero(routing.clusters == shard.shard_id)
        if not len(hit_q):
            continue
        dists, local = shard.index.search_reference(q[hit_q], k, nprobe=nprobe)
        ids = np.full_like(local, -1)
        valid = local >= 0
        ids[valid] = shard.global_ids[local[valid]]
        for row, slot, d_row, i_row in zip(hit_q, hit_slot, dists, ids):
            cand_d[row, slot * k : (slot + 1) * k] = d_row
            cand_i[row, slot * k : (slot + 1) * k] = i_row
    order = np.argsort(cand_d, axis=1)[:, :k]
    rows = np.arange(nq)[:, np.newaxis]
    return cand_d[rows, order], cand_i[rows, order]


def _bench_hierarchical(spec: BenchSpec, data, queries) -> dict:
    config = HermesConfig(
        n_clusters=spec.hier_clusters,
        clusters_to_search=min(3, spec.hier_clusters),
        deep_nprobe=spec.hier_deep_nprobe,
        k=spec.k,
        quantization="sq8",
        metric="ip",
    )
    datastore = split_datastore_evenly(data, config, seed=spec.seed)
    for shard in datastore.shards:
        shard.index.compact()
    sequential = HermesSearcher(datastore)
    threaded = HermesSearcher(datastore, max_workers=spec.hier_clusters)
    q = queries[: spec.hier_batch]
    m = config.clusters_to_search

    ref = _hierarchical_reference(sequential, q, spec.k, m, spec.hier_deep_nprobe)
    seq = sequential.search(q)
    thr = threaded.search(q)
    _assert_equivalent("hierarchical/sequential", ref, (seq.distances, seq.ids))
    _assert_equivalent("hierarchical/threaded", ref, (thr.distances, thr.ids))

    before = _best_of(
        lambda: _hierarchical_reference(sequential, q, spec.k, m, spec.hier_deep_nprobe),
        spec.repeats,
    )
    after_seq = _best_of(lambda: sequential.search(q), spec.repeats)
    after_thr = _best_of(lambda: threaded.search(q), spec.repeats)
    return {
        "n_clusters": spec.hier_clusters,
        "clusters_to_search": m,
        "batch": spec.hier_batch,
        "deep_nprobe": spec.hier_deep_nprobe,
        "before_s": before,
        "after_sequential_s": after_seq,
        "after_threaded_s": after_thr,
        "speedup": before / after_thr,
        "threading_speedup": after_seq / after_thr,
        "equivalent": True,
    }


def _bench_tracing(spec: BenchSpec, data, queries) -> dict:
    """Tracing-overhead check on the IVF-SQ8 deep-search operating point.

    Times the same batched search with the tracer disabled (the default: all
    instrumentation collapses to a shared null context) and enabled, so the
    report shows what the observability layer costs in each mode. The
    acceptance bar is <5% overhead with tracing *disabled* relative to an
    uninstrumented build — visible here as ``disabled_s`` tracking the
    ``ivf_sq8`` ``after_s`` rows, which exercise the identical code path.
    """
    index = IVFIndex(
        spec.dim,
        "l2",
        nlist=spec.nlist,
        nprobe=spec.nprobe,
        quantizer=make_quantizer("sq8", spec.dim),
    )
    index.train(data[: spec.n_train])
    index.add(data)
    index.compact()
    batch = max(spec.batches)
    q = queries[:batch]
    repeats = max(spec.repeats, 3)
    disabled = _best_of(lambda: index.search(q, spec.k), repeats)
    tracer = enable_tracing()
    try:

        def traced() -> None:
            tracer.clear()  # keep the span list from growing across repeats
            index.search(q, spec.k)

        enabled = _best_of(traced, repeats)
    finally:
        disable_tracing()
    return {
        "index": "ivf_sq8",
        "batch": batch,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "enabled_overhead": enabled / disabled - 1.0,
    }


#: Span names aggregated by ``--profile``, outermost first. ``sample`` and
#: ``shard_search``/``ivf_scan`` are children of ``route`` / ``deep_search``
#: respectively, so the rows overlap by design — each answers "how much wall
#: clock did this kernel absorb", not "what sums to 100%".
_PROFILE_SPANS = ("route", "sample", "deep_search", "shard_search", "ivf_scan", "merge")


def _profile_kernels(spec: BenchSpec, data, queries) -> dict:
    """Per-kernel time breakdown of one hierarchical batch, from obs spans.

    Runs the paper's operating point once under the process-wide tracer
    (which the private per-call tracer cannot see: ``ivf_scan`` spans report
    to the process tracer) and aggregates wall-clock per span name.
    """
    config = HermesConfig(
        n_clusters=spec.hier_clusters,
        clusters_to_search=min(3, spec.hier_clusters),
        deep_nprobe=spec.hier_deep_nprobe,
        k=spec.k,
        quantization="sq8",
        metric="ip",
    )
    datastore = split_datastore_evenly(data, config, seed=spec.seed)
    for shard in datastore.shards:
        shard.index.warm_scan_state()
    searcher = HermesSearcher(datastore, max_workers=spec.hier_clusters)
    q = queries[: spec.hier_batch]
    searcher.search(q)  # warm every lazy structure outside the traced run
    tracer = enable_tracing()
    try:
        tracer.clear()
        searcher.search(q)
        roots = tracer.finished_roots()
    finally:
        disable_tracing()
    profile: dict = {
        "batch": spec.hier_batch,
        "n_clusters": spec.hier_clusters,
        "deep_nprobe": spec.hier_deep_nprobe,
        "retrieval_total_s": sum(r.duration_s for r in roots),
    }
    for name in _PROFILE_SPANS:
        spans = [s for root in roots for s in root.find_all(name)]
        profile[name] = {
            "count": len(spans),
            "total_s": sum(s.duration_s for s in spans),
        }
    return profile


def run_benchmarks(
    *,
    smoke: bool = False,
    out: "str | Path | None" = "BENCH_retrieval.json",
    profile: bool = False,
) -> dict:
    """Run the full harness; returns (and optionally writes) the report."""
    spec = BenchSpec.smoke() if smoke else BenchSpec()
    data, queries = _make_data(spec)
    report = {
        "bench": "retrieval",
        "smoke": smoke,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "n_vectors": spec.n_vectors,
            "dim": spec.dim,
            "nlist": spec.nlist,
            "nprobe": spec.nprobe,
            "k": spec.k,
            "repeats": spec.repeats,
            "numpy": np.__version__,
            **cpu_metadata(),
        },
        "single_index": _bench_single_indices(spec, data, queries, "l2"),
        "hierarchical": _bench_hierarchical(spec, data, queries),
        "tracing": _bench_tracing(spec, data, queries),
    }
    if profile:
        report["profile"] = _profile_kernels(spec, data, queries)
    report["counters"] = {
        "ivf_cells_pruned_total": get_registry()
        .counter("ivf_cells_pruned_total", "see single_index rows")
        .total(),
        "ivf_blocks_pruned_total": get_registry()
        .counter("ivf_blocks_pruned_total", "see single_index rows")
        .total(),
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format_report(report: dict) -> str:
    lines = [
        f"retrieval bench (smoke={report['smoke']}, "
        f"n={report['meta']['n_vectors']}, dim={report['meta']['dim']}, "
        f"cpus={report['meta']['cpu_count']})"
    ]
    for row in report["single_index"]:
        if row["before_s"] is None:
            lines.append(
                f"  {row['index']:<10s} batch={row['batch']:<3d} "
                f"after={row['after_s'] * 1e3:8.2f} ms"
            )
        else:
            pruned = (
                f" pruned={row['pruned_speedup']:4.2f}x"
                f" cells={row['cells_pruned']}"
                if row.get("strategy") == "streaming"
                else ""
            )
            lines.append(
                f"  {row['index']:<10s} batch={row['batch']:<3d} "
                f"before={row['before_s'] * 1e3:8.2f} ms "
                f"after={row['after_s'] * 1e3:8.2f} ms "
                f"speedup={row['speedup']:5.2f}x{pruned}"
            )
    h = report["hierarchical"]
    lines.append(
        f"  hierarchical {h['n_clusters']} shards batch={h['batch']}: "
        f"before={h['before_s'] * 1e3:.2f} ms "
        f"seq={h['after_sequential_s'] * 1e3:.2f} ms "
        f"threaded={h['after_threaded_s'] * 1e3:.2f} ms "
        f"(speedup {h['speedup']:.2f}x, threading {h['threading_speedup']:.2f}x)"
    )
    t = report["tracing"]
    lines.append(
        f"  tracing {t['index']} batch={t['batch']}: "
        f"disabled={t['disabled_s'] * 1e3:.2f} ms "
        f"enabled={t['enabled_s'] * 1e3:.2f} ms "
        f"(enabled overhead {t['enabled_overhead']:+.1%})"
    )
    if "profile" in report:
        p = report["profile"]
        parts = ", ".join(
            f"{name}={p[name]['total_s'] * 1e3:.2f} ms/{p[name]['count']}"
            for name in _PROFILE_SPANS
        )
        lines.append(
            f"  profile batch={p['batch']} "
            f"total={p['retrieval_total_s'] * 1e3:.2f} ms: {parts}"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes so the harness fits tier-1 CI time budgets",
    )
    parser.add_argument(
        "--out",
        default="BENCH_retrieval.json",
        help="report path (default: ./BENCH_retrieval.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="add a per-kernel time breakdown (route/sample/deep/scan/merge) "
        "from obs spans under the report's 'profile' key",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke, out=args.out, profile=args.profile)
    print(_format_report(report))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
