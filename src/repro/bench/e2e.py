"""End-to-end serving benchmark: the live stride pipeline, all disciplines.

Where ``bench_serve`` measures the serving *components* (cache, batcher,
sessions), this harness measures the composed system: the
:class:`~repro.serving.pipeline.RAGServingPipeline` drives real batched
retrieval through the frontend per generation stride while prefill/decode
advance on the calibrated inference clock. Two sections, written to
``BENCH_e2e.json``:

- **disciplines** — one request cohort served under ``sequential``,
  ``pipelined``, and ``lookahead`` scheduling (fresh stack per mode):
  measured mean/p99 TTFT and E2E, per-request energy, NDCG@k of every
  stride's served ids against brute-force truth for that stride's true
  query, and the speculation hit/miss split. Full runs assert the
  acceptance floor: **lookahead E2E beats sequential at equal NDCG@k**
  (within the drift tolerance) and pipelined E2E beats sequential.
- **trace** — a traced lookahead cohort: validates the span-tree invariants
  and measures the cpu/gpu *overlap seconds* (speculative retrieval spans
  intersected with same-request inference spans), asserting the overlap is
  real on full runs.

Run from the repo root::

    python benchmarks/bench_e2e.py            # full run
    python benchmarks/bench_e2e.py --smoke    # seconds, for CI budgets

or, once installed, via the console entry ``hermes-bench-e2e``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..experiments import serve_pipeline
from ..obs.trace import Tracer
from ..obs.validate import validate_trace
from .sysinfo import cpu_metadata

#: Full-run acceptance: lookahead may lose at most this much NDCG@k vs
#: sequential (the verified-speculation drift tolerance).
NDCG_TOLERANCE = serve_pipeline.NDCG_TOLERANCE


@dataclass(frozen=True)
class BenchSpec:
    """Workload sizes for one harness run."""

    docs: int = 1_200
    dim: int = 48
    n_topics: int = 6
    n_clusters: int = 6
    clusters_to_search: int = 2
    n_long: int = 24
    n_short: int = 8
    long_tokens: int = 96
    short_tokens: int = 8
    n_strides: int = 6
    stride_tokens: int = 16
    k: int = 10
    speculation_threshold: float = 0.95
    trace_requests: int = 4
    seed: int = 0

    @classmethod
    def smoke(cls) -> "BenchSpec":
        return cls(
            docs=150,
            dim=32,
            n_topics=4,
            n_clusters=4,
            n_long=6,
            n_short=2,
            n_strides=4,
            trace_requests=2,
        )


def _bench_disciplines(spec: BenchSpec, *, smoke: bool) -> dict:
    t0 = time.perf_counter()
    report = serve_pipeline.run(
        docs=spec.docs,
        dim=spec.dim,
        n_topics=spec.n_topics,
        n_clusters=spec.n_clusters,
        clusters_to_search=spec.clusters_to_search,
        n_long=spec.n_long,
        n_short=spec.n_short,
        long_tokens=spec.long_tokens,
        short_tokens=spec.short_tokens,
        n_strides=spec.n_strides,
        stride_tokens=spec.stride_tokens,
        k=spec.k,
        speculation_threshold=spec.speculation_threshold,
        seed=spec.seed,
    )
    wall = time.perf_counter() - t0
    by_mode = {p.mode: p for p in report.points}
    seq, pipe, look = (
        by_mode["sequential"], by_mode["pipelined"], by_mode["lookahead"]
    )
    if not smoke:
        if look.mean_e2e_s >= seq.mean_e2e_s:
            raise AssertionError(
                f"e2e: lookahead E2E {look.mean_e2e_s:.3f}s did not beat "
                f"sequential {seq.mean_e2e_s:.3f}s"
            )
        if pipe.mean_e2e_s >= seq.mean_e2e_s:
            raise AssertionError(
                f"e2e: pipelined E2E {pipe.mean_e2e_s:.3f}s did not beat "
                f"sequential {seq.mean_e2e_s:.3f}s"
            )
        if look.ndcg < seq.ndcg - NDCG_TOLERANCE:
            raise AssertionError(
                f"e2e: lookahead NDCG@{spec.k} {look.ndcg:.3f} below "
                f"sequential {seq.ndcg:.3f} - {NDCG_TOLERANCE} tolerance"
            )
        if look.lookahead_hits <= 0:
            raise AssertionError("e2e: speculation never hit on the full run")
    return {
        "wall_s": wall,
        "n_requests": report.n_requests,
        "n_strides": report.n_strides,
        "chunks": report.chunks,
        "k": report.k,
        "speculation_threshold": report.speculation_threshold,
        "e2e_speedup_lookahead": seq.mean_e2e_s / look.mean_e2e_s,
        "e2e_speedup_pipelined": seq.mean_e2e_s / pipe.mean_e2e_s,
        "ndcg_delta_lookahead": look.ndcg - seq.ndcg,
        "ndcg_delta_pipelined": pipe.ndcg - seq.ndcg,
        "modes": {p.mode: asdict(p) for p in report.points},
    }


def _span_intervals(root, name: str, **attr_filter) -> list:
    out = []
    for span in root.children:
        if span.name != name:
            continue
        if any(span.attrs.get(k) != v for k, v in attr_filter.items()):
            continue
        out.append((span.start_s, span.end_s))
    return out


def _bench_trace(spec: BenchSpec, *, smoke: bool) -> dict:
    """Traced lookahead cohort: invariants + measured cpu/gpu overlap."""
    tracer = Tracer(enabled=True)
    serve_pipeline.run(
        ("lookahead",),
        docs=spec.docs if smoke else min(spec.docs, 400),
        dim=spec.dim,
        n_topics=spec.n_topics,
        n_clusters=spec.n_clusters,
        clusters_to_search=spec.clusters_to_search,
        n_long=spec.trace_requests,
        n_short=1,
        long_tokens=spec.long_tokens,
        short_tokens=spec.short_tokens,
        n_strides=spec.n_strides,
        stride_tokens=spec.stride_tokens,
        k=spec.k,
        speculation_threshold=spec.speculation_threshold,
        seed=spec.seed,
        tracer=tracer,
    )
    roots = tracer.finished_roots()
    validate_trace(roots)

    overlap_s = 0.0
    retrieval_s = 0.0
    for root in roots:
        gpu = [
            (s.start_s, s.end_s)
            for s in root.children
            if s.worker == "gpu" and s.name in ("prefill", "decode")
        ]
        for start, end in _span_intervals(root, "retrieval"):
            retrieval_s += end - start
            for g0, g1 in gpu:
                overlap_s += max(0.0, min(end, g1) - max(start, g0))
    if not smoke and overlap_s <= 0.0:
        raise AssertionError(
            "trace: no retrieval span overlapped an inference span — the "
            "pipeline is not actually overlapping work"
        )
    return {
        "roots": len(roots),
        "spans": sum(1 + len(r.children) for r in roots),
        "retrieval_span_s": retrieval_s,
        "cpu_gpu_overlap_s": overlap_s,
        "overlap_fraction": overlap_s / retrieval_s if retrieval_s else 0.0,
        "invariants_ok": True,
    }


def run_benchmarks(
    *, smoke: bool = False, out: "str | Path | None" = "BENCH_e2e.json"
) -> dict:
    """Run the full harness; returns (and optionally writes) the report."""
    spec = BenchSpec.smoke() if smoke else BenchSpec()
    report = {
        "bench": "e2e",
        "smoke": smoke,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "docs": spec.docs,
            "dim": spec.dim,
            "n_clusters": spec.n_clusters,
            "n_requests": spec.n_long + spec.n_short,
            "n_strides": spec.n_strides,
            "stride_tokens": spec.stride_tokens,
            "k": spec.k,
            "speculation_threshold": spec.speculation_threshold,
            "numpy": np.__version__,
            **cpu_metadata(),
        },
        "disciplines": _bench_disciplines(spec, smoke=smoke),
        "trace": _bench_trace(spec, smoke=smoke),
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def _format_report(report: dict) -> str:
    d = report["disciplines"]
    t = report["trace"]
    lines = [
        f"e2e bench (smoke={report['smoke']}, {d['n_requests']} requests x "
        f"{d['n_strides']} strides, {d['chunks']} chunks, k={d['k']}, "
        f"cpus={report['meta']['cpu_count']}, "
        f"affinity={report['meta']['cpu_affinity']})",
    ]
    for mode in ("sequential", "pipelined", "lookahead"):
        p = d["modes"][mode]
        hits = p["lookahead_hits"] + p["lookahead_misses"]
        spec = (
            f", spec hit {p['lookahead_hit_rate']:.0%} "
            f"({p['lookahead_hits']}/{hits})"
            if hits
            else ""
        )
        lines.append(
            f"  {mode:10s} TTFT {p['mean_ttft_s']:.3f} s, "
            f"E2E {p['mean_e2e_s']:.3f} s (p99 {p['p99_e2e_s']:.3f}), "
            f"retrieval {p['mean_retrieval_s'] * 1e3:.1f} ms, "
            f"energy {p['mean_energy_j']:.0f} J, "
            f"NDCG@{d['k']} {p['ndcg']:.3f}{spec}"
        )
    lines.append(
        f"  speedup vs sequential: pipelined {d['e2e_speedup_pipelined']:.3f}x, "
        f"lookahead {d['e2e_speedup_lookahead']:.3f}x "
        f"(NDCG delta {d['ndcg_delta_lookahead']:+.3f})"
    )
    lines.append(
        f"  trace    {t['roots']} requests, {t['spans']} spans, invariants OK; "
        f"cpu/gpu overlap {t['cpu_gpu_overlap_s'] * 1e3:.1f} ms "
        f"({t['overlap_fraction']:.0%} of retrieval span time)"
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes so the harness fits tier-1 CI time budgets",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e2e.json",
        help="report path (default: ./BENCH_e2e.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke, out=args.out)
    print(_format_report(report))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
