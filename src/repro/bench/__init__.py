"""Microbenchmark harnesses seeding the repo's perf trajectory (BENCH_*)."""

from .build import run_benchmarks as run_build_benchmarks
from .e2e import run_benchmarks as run_e2e_benchmarks
from .retrieval import run_benchmarks
from .serve import run_benchmarks as run_serve_benchmarks
from .sysinfo import cpu_metadata

__all__ = [
    "cpu_metadata",
    "run_benchmarks",
    "run_build_benchmarks",
    "run_e2e_benchmarks",
    "run_serve_benchmarks",
]
