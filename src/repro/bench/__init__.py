"""Microbenchmark harnesses seeding the repo's perf trajectory (BENCH_*)."""

from .build import run_benchmarks as run_build_benchmarks
from .retrieval import run_benchmarks

__all__ = ["run_benchmarks", "run_build_benchmarks"]
