"""Microbenchmark harnesses seeding the repo's perf trajectory (BENCH_*)."""

from .retrieval import run_benchmarks

__all__ = ["run_benchmarks"]
