"""Host metadata recorded in benchmark reports.

Benchmark numbers only reproduce on comparable hardware, and the core count
the kernel *allows* this process to use is often smaller than the count the
host *has* (container cpusets, ``taskset``, CI runners). Reports record both
so a reader can tell a slow machine from a restricted one.
"""

from __future__ import annotations

import os


def cpu_metadata() -> dict:
    """CPU visibility of this process.

    ``cpu_count`` is the host's logical core count; ``cpu_affinity`` is the
    size of this process's scheduling mask (``None`` where the platform has
    no ``sched_getaffinity``) — the number threaded benchmark sections
    actually scale with.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = None
    return {"cpu_count": os.cpu_count(), "cpu_affinity": affinity}
