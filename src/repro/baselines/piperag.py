"""PipeRAG baseline [Jiang et al. 2024]: pipeline retrieval under inference.

PipeRAG overlaps the CPU retrieval for stride *i+1* with the GPU inference of
stride *i*, accepting slightly stale context. Two pieces reproduce the
paper's treatment (§3 Takeaway 3):

- the **execution discipline** is the ``pipelined=True`` flag of
  :class:`repro.llm.generation.GenerationConfig` (stride cost becomes
  ``max(retrieval, inference)`` after the first stride); and
- PipeRAG's **adaptive nProbe**: when retrieval would overflow the pipeline
  window, PipeRAG shrinks nProbe to fit — trading quality for speed, which is
  exactly the compromise the paper criticises at large datastore sizes.
"""

from __future__ import annotations

from dataclasses import replace

from ..llm.generation import GenerationConfig
from ..perfmodel.measurements import NPROBE_EXPONENT, RetrievalCostModel


def piperag_config(base: GenerationConfig) -> GenerationConfig:
    """The PipeRAG serving discipline: pipelining on, no prefix cache."""
    return replace(base, pipelined=True)


def adaptive_nprobe(
    cost_model: RetrievalCostModel,
    datastore_tokens: float,
    batch: int,
    *,
    inference_window_s: float,
    max_nprobe: int = 128,
    min_nprobe: int = 1,
) -> int:
    """Largest nProbe whose retrieval fits the pipeline window.

    Inverts the calibrated latency model
    ``latency(nprobe) = latency(max) * (nprobe/max)**alpha``; returns
    ``max_nprobe`` when even the full depth fits (no quality sacrifice) and
    ``min_nprobe`` when nothing fits (retrieval stays on the critical path).
    """
    if inference_window_s <= 0:
        raise ValueError("inference_window_s must be positive")
    if not 1 <= min_nprobe <= max_nprobe:
        raise ValueError("require 1 <= min_nprobe <= max_nprobe")
    full = cost_model.batch_latency(datastore_tokens, batch, nprobe=max_nprobe)
    if full <= inference_window_s:
        return max_nprobe
    ratio = inference_window_s / full
    nprobe = int(max_nprobe * ratio ** (1.0 / NPROBE_EXPONENT))
    return max(min_nprobe, min(nprobe, max_nprobe))


def quality_proxy(nprobe: int, *, reference_nprobe: int = 128) -> float:
    """Monotone retrieval-quality proxy in [0, 1] for an nProbe choice.

    Follows the saturating NDCG-vs-nProbe shape of the paper's Fig. 12: most
    quality arrives by nProbe ~32 and the remainder by 128. Used to report
    what PipeRAG's nProbe sacrifice costs at scale.
    """
    if nprobe <= 0:
        raise ValueError("nprobe must be positive")
    import math

    capped = min(nprobe, reference_nprobe)
    return math.log2(1 + capped) / math.log2(1 + reference_nprobe)
