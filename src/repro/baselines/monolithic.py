"""Monolithic retrieval baseline: one big IVF index on one node.

This is the paper's unoptimized baseline — the entire datastore behind a
single IVF-SQ8 index with nProbe 128 — whose linear latency scaling motivates
Hermes (§3 Takeaway 1). The class wraps the real index (for accuracy
experiments) and exposes the exact brute-force ground truth used by NDCG and
recall evaluation.
"""

from __future__ import annotations

import numpy as np

from ..ann.flat import FlatIndex
from ..ann.ivf import IVFIndex
from ..ann.quantization import make_quantizer


class MonolithicRetriever:
    """Single-index retrieval over the full corpus.

    Parameters
    ----------
    embeddings:
        Full corpus ``(n, d)`` matrix.
    metric:
        Similarity metric; the paper's pipeline reranks by inner product.
    quantization:
        Table 1 scheme for the IVF payload (default the paper's SQ8).
    nprobe:
        Default search depth (the paper's production value is 128).
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        metric: str = "ip",
        quantization: str = "sq8",
        nlist: int | None = None,
        nprobe: int = 128,
        train_seed: int = 0,
    ) -> None:
        emb = np.asarray(embeddings, dtype=np.float32)
        if emb.ndim != 2 or not len(emb):
            raise ValueError("embeddings must be a non-empty (n, d) matrix")
        dim = emb.shape[1]
        self.index = IVFIndex(
            dim,
            metric,
            nlist=nlist,
            nprobe=nprobe,
            quantizer=make_quantizer(quantization, dim),
            train_seed=train_seed,
        )
        self.index.train(emb)
        self.index.add(emb)
        self._exact = FlatIndex(dim, metric)
        self._exact.add(emb)

    @property
    def ntotal(self) -> int:
        return self.index.ntotal

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k over the whole datastore."""
        return self.index.search(queries, k, nprobe=nprobe)

    def ground_truth(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exhaustive brute-force top-k (the paper's NDCG reference)."""
        return self._exact.search(queries, k)

    def memory_bytes(self) -> int:
        return self.index.memory_bytes()
