"""Baselines the paper compares Hermes against.

Monolithic single-index retrieval, the naive broadcast split, PipeRAG
pipelining, and RAGCache prefix caching (plus their combination with Hermes).
"""

from .monolithic import MonolithicRetriever
from .naive_split import NaiveSplitRetriever
from .piperag import adaptive_nprobe, piperag_config, quality_proxy
from .ragcache import (
    combined_config,
    ragcache_config,
    simulate_cache_hit_rate,
    stride_overlap_fraction,
)

__all__ = [
    "MonolithicRetriever",
    "NaiveSplitRetriever",
    "adaptive_nprobe",
    "piperag_config",
    "quality_proxy",
    "combined_config",
    "ragcache_config",
    "simulate_cache_hit_rate",
    "stride_overlap_fraction",
]
