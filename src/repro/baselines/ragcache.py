"""RAGCache baseline [Jin et al. 2024]: cache document prefill state.

RAGCache observes that successive retrieval strides often return overlapping
documents, so the KV tensors of already-prefilled chunks can be reused. The
paper grants it an *ideal 100% hit rate* (§3 Takeaway 3) — after the first
stride only newly generated tokens are prefilled — implemented by the
``prefix_cached=True`` generation flag. This module adds the non-ideal
analysis: measuring the real cross-stride document overlap of a retrieval
trace, which determines how much of the ideal saving a real deployment gets.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..llm.generation import GenerationConfig
from ..llm.kvcache import PrefixCache


def ragcache_config(base: GenerationConfig) -> GenerationConfig:
    """The RAGCache serving discipline: ideal prefix caching, no pipelining."""
    return replace(base, prefix_cached=True)


def combined_config(base: GenerationConfig) -> GenerationConfig:
    """Hermes/PipeRAG/RAGCache stack: pipelining + prefix caching together."""
    return replace(base, pipelined=True, prefix_cached=True)


def stride_overlap_fraction(stride_results: list[np.ndarray]) -> float:
    """Mean fraction of stride *i*'s documents already seen at stride *i-1*.

    ``stride_results`` is one query's retrieved-id matrix per stride (each
    ``(k,)``). This is the quantity RAGCache's real hit rate tracks.

    Vectorized: uniform-``k`` traces stack into ``(n-1, k)`` previous/current
    matrices and a single broadcasted membership test replaces the per-row
    Python sets (``-1`` padding never matches because current ids are masked
    to valid entries first). Ragged traces fall back to per-pair ``np.isin``.
    """
    if len(stride_results) < 2:
        raise ValueError("need at least two strides to measure overlap")
    strides = [np.asarray(s).ravel() for s in stride_results]
    lengths = {len(s) for s in strides}
    if len(lengths) == 1 and lengths != {0}:
        prev = np.stack(strides[:-1])
        cur = np.stack(strides[1:])
        valid = cur >= 0
        # (n-1, k, k) membership: does cur[r, i] appear anywhere in prev[r]?
        seen = (cur[:, :, np.newaxis] == prev[:, np.newaxis, :]).any(axis=2)
        counts = valid.sum(axis=1)
        rows = counts > 0
        if not rows.any():
            raise ValueError("no valid documents in stride results")
        hits = (seen & valid).sum(axis=1)
        return float(np.mean(hits[rows] / counts[rows]))
    overlaps = []
    for prev, cur in zip(strides, strides[1:]):
        cur = cur[cur >= 0]
        if not len(cur):
            continue
        overlaps.append(float(np.isin(cur, prev[prev >= 0]).mean()))
    if not overlaps:
        raise ValueError("no valid documents in stride results")
    return float(np.mean(overlaps))


def simulate_cache_hit_rate(
    stride_results: list[np.ndarray], *, capacity: int = 4096, chunk_tokens: int = 100
) -> float:
    """Replay a stride trace through a real LRU prefix cache.

    Returns the measured hit rate — the non-ideal counterpart of the paper's
    100% assumption, useful for sensitivity studies.
    """
    cache = PrefixCache(capacity=capacity)
    for stride in stride_results:
        for doc in np.asarray(stride).ravel():
            doc = int(doc)
            if doc < 0:
                continue
            if not cache.lookup(doc):
                cache.insert(doc, chunk_tokens)
    return cache.stats.hit_rate
