"""Naive distributed retrieval baseline: shard everything, search everything.

Commercial distributed vector databases (Milvus, Elasticsearch, and the
literature the paper cites in §7 "Scaling Retrieval") horizontally shard the
datastore and broadcast every query to every node, aggregating results. That
cuts per-node latency and memory but, as the paper's Fig. 18 shows, caps
throughput and wastes energy because all N nodes do deep work for every
query. This wrapper builds the random equal split and exposes the
broadcast-search semantics.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import ClusteredDatastore, split_datastore_evenly
from ..core.config import HermesConfig
from ..core.hierarchical import ExhaustiveSplitSearcher, SearchResult


class NaiveSplitRetriever:
    """Random equal sharding with broadcast search."""

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        config: HermesConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or HermesConfig()
        self.datastore: ClusteredDatastore = split_datastore_evenly(
            embeddings, self.config, seed=seed
        )
        self._searcher = ExhaustiveSplitSearcher(self.datastore, config=self.config)

    @property
    def n_shards(self) -> int:
        return self.datastore.n_clusters

    def search(self, queries: np.ndarray, k: int | None = None) -> SearchResult:
        """Broadcast the batch to all shards and aggregate the union top-k."""
        return self._searcher.search(queries, k=k)

    def memory_bytes(self) -> int:
        return self.datastore.memory_bytes()
