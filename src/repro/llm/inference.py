"""Prefill/decode latency and energy model for LLM serving.

Calibrated to the paper's measured operating points for Gemma2-9B on an
A6000 Ada at batch 32 with 512 input / 256 output tokens and stride 16:

- prefill: 132 QPS → 0.242 s per batch, 2.2 J/query (≈290 W effective);
- decode: 67 QPS per 16-token stride → 0.478 s per stride-batch,
  2.2 J/query/stride (≈147 W effective, decode is memory-bound).

Other (model, GPU, batch, sequence) points scale from these anchors with the
standard serving cost shape: prefill is compute-bound (∝ params x tokens x
batch / effective TFLOPS), decode is bandwidth-bound (∝ params x tokens /
effective bandwidth, nearly batch-independent until the compute roof).
Tensor parallelism divides both with an all-reduce efficiency loss and
multiplies power by the GPU count — reproducing the paper's observation that
adding GPUs to small models wastes energy for little speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import A6000_ADA, GPUPlatform, tensor_parallel_speedup
from .models import GEMMA2_9B, ModelSpec

#: Anchor operating point (Gemma2-9B, A6000 Ada, batch 32).
ANCHOR_MODEL = GEMMA2_9B
ANCHOR_GPU = A6000_ADA
ANCHOR_BATCH = 32
ANCHOR_INPUT_TOKENS = 512
ANCHOR_STRIDE_TOKENS = 16
ANCHOR_PREFILL_LATENCY_S = 32 / 132.0  # 132 QPS at batch 32
ANCHOR_DECODE_STRIDE_LATENCY_S = 32 / 67.0  # 67 QPS per 16-token stride
ANCHOR_PREFILL_POWER_W = 290.0
ANCHOR_DECODE_POWER_W = 147.0

#: Below this many tokens x batch, prefill latency stops shrinking (kernel
#: launch and scheduling floors dominate).
PREFILL_FLOOR_FRACTION = 0.15


@dataclass(frozen=True)
class StageCost:
    """Latency and energy of one inference stage execution (whole batch)."""

    latency_s: float
    energy_j: float
    power_w: float


@dataclass(frozen=True)
class InferenceModel:
    """Serving cost model for one (model, GPU platform) pair.

    Parameters
    ----------
    model:
        The LLM being served.
    gpu:
        GPU platform; ``n_gpus`` defaults to the minimum count whose combined
        memory fits the model (matching the paper's Fig. 17 configurations).
    """

    model: ModelSpec = ANCHOR_MODEL
    gpu: GPUPlatform = ANCHOR_GPU
    n_gpus: int | None = None

    def __post_init__(self) -> None:
        required = self.gpu.gpus_required(self.model.min_mem_gb)
        if self.n_gpus is None:
            object.__setattr__(self, "n_gpus", required)
        elif self.n_gpus < required:
            raise ValueError(
                f"{self.model.name} needs >= {required}x {self.gpu.name} "
                f"({self.model.min_mem_gb} GB), got {self.n_gpus}"
            )

    # -- scaling helpers ------------------------------------------------------
    def _compute_scale(self) -> float:
        """Prefill slowdown vs. the anchor configuration (per token x query)."""
        model_ratio = self.model.params_b / ANCHOR_MODEL.params_b
        flops_ratio = ANCHOR_GPU.peak_tflops / self.gpu.peak_tflops
        tp = tensor_parallel_speedup(self.n_gpus)
        return model_ratio * flops_ratio / tp

    def _bandwidth_scale(self) -> float:
        """Decode slowdown vs. the anchor configuration (per token)."""
        model_ratio = self.model.params_b / ANCHOR_MODEL.params_b
        bw_ratio = ANCHOR_GPU.mem_bandwidth_gbs / self.gpu.mem_bandwidth_gbs
        tp = tensor_parallel_speedup(self.n_gpus)
        return model_ratio * bw_ratio / tp

    # -- stages ------------------------------------------------------------------
    def prefill(self, batch: int, input_tokens: int) -> StageCost:
        """Cost of prefilling *input_tokens* of context for a batch."""
        if batch <= 0 or input_tokens <= 0:
            raise ValueError("batch and input_tokens must be positive")
        work_ratio = (batch * input_tokens) / (ANCHOR_BATCH * ANCHOR_INPUT_TOKENS)
        latency = ANCHOR_PREFILL_LATENCY_S * self._compute_scale() * max(
            work_ratio, PREFILL_FLOOR_FRACTION
        )
        power = ANCHOR_PREFILL_POWER_W / ANCHOR_GPU.tdp_w * self.gpu.tdp_w * self.n_gpus
        return StageCost(latency_s=latency, energy_j=power * latency, power_w=power)

    def decode(self, batch: int, n_tokens: int) -> StageCost:
        """Cost of generating *n_tokens* per query for a batch.

        Decode is bandwidth-bound: weights stream once per token regardless
        of batch, so latency is batch-independent until the batch saturates
        compute; a mild superlinear term models that roof.
        """
        if batch <= 0 or n_tokens <= 0:
            raise ValueError("batch and n_tokens must be positive")
        token_ratio = n_tokens / ANCHOR_STRIDE_TOKENS
        batch_factor = max(1.0, (batch / ANCHOR_BATCH) ** 0.3)
        latency = (
            ANCHOR_DECODE_STRIDE_LATENCY_S
            * self._bandwidth_scale()
            * token_ratio
            * batch_factor
        )
        power = ANCHOR_DECODE_POWER_W / ANCHOR_GPU.tdp_w * self.gpu.tdp_w * self.n_gpus
        return StageCost(latency_s=latency, energy_j=power * latency, power_w=power)

    # -- conveniences -------------------------------------------------------------
    def prefill_qps(self, batch: int, input_tokens: int) -> float:
        """Steady-state prefill throughput in queries/s."""
        return batch / self.prefill(batch, input_tokens).latency_s

    def decode_stride_qps(self, batch: int, stride_tokens: int) -> float:
        """Steady-state per-stride decode throughput in queries/s."""
        return batch / self.decode(batch, stride_tokens).latency_s

    def generation_latency(
        self, batch: int, input_tokens: int, output_tokens: int
    ) -> float:
        """Prefill + full decode latency, no retrieval (GPU-only inference)."""
        pre = self.prefill(batch, input_tokens)
        dec = self.decode(batch, output_tokens)
        return pre.latency_s + dec.latency_s


def effective_decode_interval(model: InferenceModel, batch: int, stride: int) -> float:
    """Time between successive retrievals during decode (one stride batch).

    This is the window Hermes targets when sizing clusters so retrieval hides
    under inference (Fig. 10's "pipeline gap").
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    return model.decode(batch, stride).latency_s
