"""Retrieval-stride perplexity model (paper Fig. 5).

Prior work (RETRO, In-Context RALM, PipeRAG) shows that retrieving fresh
context more often (smaller stride) lowers perplexity, letting a model with
half the parameters match a larger one. Fig. 5 plots perplexity vs. stride
for GPT-2 762M, GPT-2 1.5B, and RETRO 578M; the paper uses it to justify its
stride-16 default (stride 4 is accuracy-optimal but 12x more expensive
end-to-end).

We model the published curves with a saturating log law:

``PPL(s) = ppl_no_retrieval - gain / (1 + beta * log2(s))``

so perplexity degrades smoothly toward the no-retrieval ceiling as the
stride grows, with retrieval-trained models (RETRO) both gaining more and
degrading faster. Constants are fit to the qualitative anchors of Fig. 5:
RETRO 578M at stride 4 matches GPT-2 1.5B, and loses that advantage by
stride ~64.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerplexityCurve:
    """Stride→perplexity law for one model."""

    name: str
    ppl_no_retrieval: float
    retrieval_gain: float
    stride_sensitivity: float

    def __post_init__(self) -> None:
        if self.ppl_no_retrieval <= 1.0:
            raise ValueError("perplexity floor must exceed 1.0")
        if self.retrieval_gain < 0 or self.stride_sensitivity < 0:
            raise ValueError("gain and sensitivity must be non-negative")

    def perplexity(self, stride: int) -> float:
        """Perplexity when retrieving every *stride* generated tokens."""
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        import math

        damping = 1.0 + self.stride_sensitivity * math.log2(stride)
        return self.ppl_no_retrieval - self.retrieval_gain / damping


# Fitted to Fig. 5's qualitative anchors: larger models have lower ceilings;
# RETRO's retrieval-aware training extracts much more from frequent retrieval.
GPT2_762M = PerplexityCurve(
    name="GPT-2 762M", ppl_no_retrieval=37.5, retrieval_gain=9.0, stride_sensitivity=0.30
)
GPT2_1_5B = PerplexityCurve(
    name="GPT-2 1.5B", ppl_no_retrieval=32.0, retrieval_gain=8.0, stride_sensitivity=0.30
)
RETRO_578M = PerplexityCurve(
    name="RETRO 578M", ppl_no_retrieval=42.0, retrieval_gain=22.0, stride_sensitivity=0.45
)

PERPLEXITY_CURVES = {
    "gpt2_762m": GPT2_762M,
    "gpt2_1_5b": GPT2_1_5B,
    "retro_578m": RETRO_578M,
}


def perplexity_vs_stride(curve: PerplexityCurve, strides: list[int]) -> list[float]:
    """Evaluate a curve over a stride sweep."""
    return [curve.perplexity(s) for s in strides]
