"""LLM inference substrate: model zoo, serving cost model, strided generation.

Replaces the paper's vLLM-served HuggingFace models with calibrated
analytical serving models (see DESIGN.md, "Substitutions").
"""

from .generation import (
    GenerationConfig,
    GenerationResult,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
    steady_state_throughput_qps,
)
from .inference import InferenceModel, StageCost, effective_decode_interval
from .kvcache import CacheStats, IdealPrefixCache, PrefixCache
from .models import GEMMA2_9B, MODELS, OPT_30B, PHI_1_5, ModelSpec, get_model
from .perplexity import (
    GPT2_762M,
    GPT2_1_5B,
    PERPLEXITY_CURVES,
    RETRO_578M,
    PerplexityCurve,
    perplexity_vs_stride,
)

__all__ = [
    "GenerationConfig",
    "GenerationResult",
    "RetrievalCost",
    "constant_retrieval",
    "simulate_generation",
    "steady_state_throughput_qps",
    "InferenceModel",
    "StageCost",
    "effective_decode_interval",
    "CacheStats",
    "IdealPrefixCache",
    "PrefixCache",
    "GEMMA2_9B",
    "MODELS",
    "OPT_30B",
    "PHI_1_5",
    "ModelSpec",
    "get_model",
    "GPT2_762M",
    "GPT2_1_5B",
    "PERPLEXITY_CURVES",
    "RETRO_578M",
    "PerplexityCurve",
    "perplexity_vs_stride",
]
