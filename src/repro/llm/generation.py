"""Strided RAG generation timeline.

Composes the four pipeline stages of the paper's Fig. 3 — query encoding,
retrieval, prefill, decode — into TTFT / end-to-end latency and per-device
energy, under the execution disciplines the paper compares:

- **sequential** (unoptimized baseline): every stride runs
  retrieve → prefill → decode back to back;
- **prefix-cached** (RAGCache): prefill after the first stride shrinks to the
  newly generated tokens (ideal 100% KV hit rate, §3 Takeaway 3);
- **pipelined** (PipeRAG): the retrieval for stride *i+1* overlaps the
  inference of stride *i*, so each stride costs
  ``max(retrieval, inference)`` after the first — which is why pipelining
  stops helping once retrieval dwarfs inference on large datastores;
- any combination (Hermes composes with both).

Retrieval is supplied per stride as a :class:`RetrievalCost`, so monolithic,
naively split, and Hermes retrieval all plug into the same timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from typing import TYPE_CHECKING

from ..obs.trace import Tracer
from ..perfmodel.measurements import EncoderCostModel
from .inference import InferenceModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.power import EnergyMeter
from .kvcache import IdealPrefixCache


@dataclass(frozen=True)
class RetrievalCost:
    """Latency and energy of one batched retrieval call."""

    latency_s: float
    energy_j: float

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.energy_j < 0:
            raise ValueError("retrieval latency and energy must be non-negative")


#: Supplies the retrieval cost of stride *i* (0-based).
RetrievalProvider = Callable[[int], RetrievalCost]


def constant_retrieval(cost: RetrievalCost) -> RetrievalProvider:
    """Provider returning the same cost every stride (steady-state serving)."""

    def provide(stride_index: int) -> RetrievalCost:
        del stride_index
        return cost

    return provide


@dataclass(frozen=True)
class GenerationConfig:
    """Serving configuration for one generation run (paper §5 defaults)."""

    batch: int = 32
    input_tokens: int = 512
    output_tokens: int = 256
    stride: int = 16
    pipelined: bool = False
    prefix_cached: bool = False

    def __post_init__(self) -> None:
        if min(self.batch, self.input_tokens, self.output_tokens, self.stride) <= 0:
            raise ValueError("batch, token counts, and stride must be positive")

    @property
    def n_strides(self) -> int:
        """Number of retrieval strides to generate all output tokens."""
        return math.ceil(self.output_tokens / self.stride)


@dataclass(frozen=True)
class GenerationResult:
    """Latency/energy outcome of one simulated generation batch."""

    ttft_s: float
    e2e_s: float
    encode_s: float
    retrieval_s: float
    prefill_s: float
    decode_s: float
    first_retrieval_s: float
    first_prefill_s: float
    cpu_energy_j: float
    gpu_energy_j: float
    config: GenerationConfig

    @property
    def total_energy_j(self) -> float:
        return self.cpu_energy_j + self.gpu_energy_j

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Per-stage busy time (sums can exceed e2e when pipelined)."""
        return {
            "encoding": self.encode_s,
            "retrieval": self.retrieval_s,
            "prefill": self.prefill_s,
            "decoding": self.decode_s,
        }

    @property
    def retrieval_fraction_of_ttft(self) -> float:
        """Retrieval share of TTFT (the paper quotes 61% @10B, 94% @100B)."""
        if self.ttft_s <= 0:
            return 0.0
        return self.first_retrieval_s / self.ttft_s


def simulate_generation(
    retrieval: RetrievalProvider,
    inference: InferenceModel,
    config: GenerationConfig,
    *,
    encoder: EncoderCostModel | None = None,
    meter: "EnergyMeter | None" = None,
    tracer: Tracer | None = None,
) -> GenerationResult:
    """Run the strided-generation timeline and return its latency/energy.

    The query is encoded once; each of the ``n_strides`` strides retrieves,
    prefills (full context, or the cached fraction under RAGCache), and
    decodes ``stride`` tokens. Under pipelining, stride *i*'s retrieval
    overlaps stride *i-1*'s inference; energy is unaffected by overlap (both
    devices are busy), only wall-clock latency changes.

    A :class:`~repro.hardware.power.EnergyMeter` may be passed to receive
    per-stage energy intervals (RAPL-style device + label accounting),
    letting the Figs. 7/14/17 energy breakdowns be audited stage by stage.
    """
    encoder = encoder or EncoderCostModel()
    n_strides = config.n_strides
    cache = IdealPrefixCache(
        input_tokens=config.input_tokens, stride_tokens=config.stride
    )

    encode_s = encoder.batch_latency(config.batch)
    cpu_energy = 0.0
    gpu_energy = encoder.batch_energy(config.batch)

    retrieval_costs = [retrieval(i) for i in range(n_strides)]
    prefill_costs = []
    decode_costs = []
    for i in range(n_strides):
        fraction = cache.prefill_fraction(i) if config.prefix_cached else 1.0
        tokens = max(1, int(round(config.input_tokens * fraction)))
        prefill_costs.append(inference.prefill(config.batch, tokens))
        remaining = config.output_tokens - i * config.stride
        decode_costs.append(inference.decode(config.batch, min(config.stride, remaining)))

    retrieval_s = sum(r.latency_s for r in retrieval_costs)
    prefill_s = sum(p.latency_s for p in prefill_costs)
    decode_s = sum(d.latency_s for d in decode_costs)
    cpu_energy += sum(r.energy_j for r in retrieval_costs)
    gpu_energy += sum(p.energy_j for p in prefill_costs)
    gpu_energy += sum(d.energy_j for d in decode_costs)

    if meter is not None:
        meter.record(
            "gpu", encoder.power_w, encode_s, label="encoding"
        )
        for r in retrieval_costs:
            power = r.energy_j / r.latency_s if r.latency_s > 0 else 0.0
            meter.record("cpu", power, r.latency_s, label="retrieval")
        for p in prefill_costs:
            meter.record("gpu", p.power_w, p.latency_s, label="prefill")
        for d in decode_costs:
            meter.record("gpu", d.power_w, d.latency_s, label="decoding")

    ttft_s = encode_s + retrieval_costs[0].latency_s + prefill_costs[0].latency_s

    if not config.pipelined:
        e2e_s = encode_s + retrieval_s + prefill_s + decode_s
    else:
        # Stride i's retrieval overlaps stride i-1's prefill+decode.
        e2e_s = encode_s + retrieval_costs[0].latency_s
        for i in range(n_strides):
            inference_block = prefill_costs[i].latency_s + decode_costs[i].latency_s
            if i + 1 < n_strides:
                e2e_s += max(inference_block, retrieval_costs[i + 1].latency_s)
            else:
                e2e_s += inference_block

    if tracer is not None and tracer.enabled:
        _emit_generation_trace(
            tracer, config, encode_s, retrieval_costs, prefill_costs, decode_costs, e2e_s
        )

    return GenerationResult(
        ttft_s=ttft_s,
        e2e_s=e2e_s,
        encode_s=encode_s,
        retrieval_s=retrieval_s,
        prefill_s=prefill_s,
        decode_s=decode_s,
        first_retrieval_s=retrieval_costs[0].latency_s,
        first_prefill_s=prefill_costs[0].latency_s,
        cpu_energy_j=cpu_energy,
        gpu_energy_j=gpu_energy,
        config=config,
    )


def _emit_generation_trace(
    tracer: Tracer,
    config: GenerationConfig,
    encode_s: float,
    retrieval_costs: list,
    prefill_costs: list,
    decode_costs: list,
    e2e_s: float,
) -> None:
    """Reconstruct the strided timeline as a span tree on a virtual clock.

    Time runs from 0; retrieval spans live on worker ``"cpu"``, GPU stages on
    ``"gpu"``. Under pipelining, stride *i+1*'s retrieval span starts with
    stride *i*'s prefill — the cross-worker overlap is visible in the trace —
    and the cursor advances by ``max(inference, retrieval)``, mirroring the
    latency arithmetic above. The root closes at the final cursor, which
    equals ``e2e_s`` up to floating-point association order.
    """
    n = config.n_strides
    root = tracer.start_span(
        "generation",
        start_s=0.0,
        worker="timeline",
        batch=config.batch,
        strides=n,
        pipelined=config.pipelined,
        prefix_cached=config.prefix_cached,
        e2e_s=e2e_s,
    )
    tracer.record("encode", start_s=0.0, end_s=encode_s, parent=root, worker="gpu")
    t = encode_s
    if not config.pipelined:
        for i in range(n):
            r = retrieval_costs[i].latency_s
            tracer.record(
                "retrieval", start_s=t, end_s=t + r, parent=root, worker="cpu", stride=i
            )
            t += r
            p = prefill_costs[i].latency_s
            tracer.record(
                "prefill", start_s=t, end_s=t + p, parent=root, worker="gpu", stride=i
            )
            t += p
            d = decode_costs[i].latency_s
            tracer.record(
                "decode", start_s=t, end_s=t + d, parent=root, worker="gpu", stride=i
            )
            t += d
        root.finish(t)
        return
    r0 = retrieval_costs[0].latency_s
    tracer.record(
        "retrieval", start_s=t, end_s=t + r0, parent=root, worker="cpu", stride=0
    )
    t += r0
    for i in range(n):
        p = prefill_costs[i].latency_s
        d = decode_costs[i].latency_s
        block = p + d  # same grouping as the e2e arithmetic above
        prefill_end = t + p
        block_end = t + block
        tracer.record(
            "prefill", start_s=t, end_s=prefill_end, parent=root, worker="gpu", stride=i
        )
        tracer.record(
            "decode",
            start_s=prefill_end,
            end_s=block_end,
            parent=root,
            worker="gpu",
            stride=i,
        )
        if i + 1 < n:
            r = retrieval_costs[i + 1].latency_s
            tracer.record(
                "retrieval",
                start_s=t,
                end_s=t + r,
                parent=root,
                worker="cpu",
                stride=i + 1,
            )
            t += max(block, r)
        else:
            t = block_end
    root.finish(t)


def steady_state_throughput_qps(
    retrieval_latency_s: float,
    inference: InferenceModel,
    config: GenerationConfig,
) -> float:
    """Saturated-pipeline *per-stride* throughput: queries flowing through
    one retrieval+inference stride slot per second.

    With retrieval on CPU nodes and inference on GPUs running concurrently on
    different batches, each stride slot costs ``max(retrieval, prefill +
    decode)`` and admits ``batch`` queries. A full request performing
    ``config.n_strides`` strides therefore completes at ``1/n_strides`` of
    this rate (see :mod:`repro.serving` for the event-driven validation).
    """
    prefill = inference.prefill(config.batch, config.input_tokens).latency_s
    decode = inference.decode(config.batch, config.stride).latency_s
    bottleneck = max(retrieval_latency_s, prefill + decode)
    if bottleneck <= 0:
        return math.inf
    return config.batch / bottleneck
