"""Inference model zoo.

The paper serves three open models (its §5): Phi-1.5 (1.3B), Gemma2-9B (the
default), and OPT-30B, plus the BGE-Large encoder. Each is described by the
parameters the inference cost model needs: parameter count, FP16 memory
footprint (which fixes the tensor-parallel degree per GPU — Fig. 17's OPT
needs 2x A6000 Ada, Gemma2 needs 2x L4), and the reference operating points
measured in the paper for Gemma2-9B on the A6000 Ada.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """A servable LLM.

    ``min_mem_gb`` includes weights, activations, and KV cache at the paper's
    batch sizes; it decides ``GPUPlatform.gpus_required``.
    """

    name: str
    params_b: float
    min_mem_gb: float

    def __post_init__(self) -> None:
        if self.params_b <= 0:
            raise ValueError("params_b must be positive")
        if self.min_mem_gb <= 0:
            raise ValueError("min_mem_gb must be positive")


PHI_1_5 = ModelSpec(name="Phi-1.5 (1.3B)", params_b=1.3, min_mem_gb=6.0)
GEMMA2_9B = ModelSpec(name="Gemma2 (9B)", params_b=9.0, min_mem_gb=26.0)
OPT_30B = ModelSpec(name="OPT (30B)", params_b=30.0, min_mem_gb=70.0)

#: Registry keyed by the short names used in experiment configs.
MODELS: dict[str, ModelSpec] = {
    "phi_1_5": PHI_1_5,
    "gemma2_9b": GEMMA2_9B,
    "opt_30b": OPT_30B,
}


def get_model(key: str) -> ModelSpec:
    """Look up a model by registry key."""
    try:
        return MODELS[key]
    except KeyError:
        raise ValueError(f"unknown model {key!r}; known: {sorted(MODELS)}") from None
