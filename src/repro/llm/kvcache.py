"""Key-value / prefix cache model (the RAGCache substrate).

RAGCache [Jin et al. 2024] caches the KV tensors of previously prefilled
document chunks so that re-retrieving overlapping documents across strides
skips their prefill computation. The paper's comparison assumes an *ideal
100% hit rate* for subsequent strides (§3 Takeaway 3), which this module
supports as the default policy while also providing a real LRU cache with
document-id keys for non-ideal studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@dataclass
class PrefixCache:
    """LRU cache of per-document KV prefixes.

    Keys are document (chunk) ids; values are the token counts whose prefill
    is saved on a hit. ``capacity`` is in cached documents (a KV-byte budget
    maps linearly onto it for fixed chunk lengths).
    """

    capacity: int = 1024
    _entries: OrderedDict = field(default_factory=OrderedDict)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, doc_id: int) -> bool:
        """Probe for a document's KV prefix; updates LRU order and stats."""
        if doc_id in self._entries:
            self._entries.move_to_end(doc_id)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, doc_id: int, token_count: int) -> None:
        """Cache a document's prefix, evicting the LRU entry if full."""
        if token_count <= 0:
            raise ValueError(f"token_count must be positive, got {token_count}")
        if doc_id in self._entries:
            self._entries.move_to_end(doc_id)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[doc_id] = token_count

    def saved_tokens(self, doc_ids: list[int]) -> int:
        """Total prefill tokens skipped for the hitting subset of *doc_ids*."""
        return sum(self._entries[d] for d in doc_ids if d in self._entries)


@dataclass(frozen=True)
class IdealPrefixCache:
    """The paper's RAGCache assumption: every re-prefill after the first hits.

    ``prefill_fraction(stride_index)`` returns the fraction of prefill work
    that must still run at a given stride: the full prompt on stride 0, then
    only the newly generated tokens afterwards.
    """

    input_tokens: int = 512
    stride_tokens: int = 16

    def prefill_fraction(self, stride_index: int) -> float:
        if stride_index < 0:
            raise ValueError("stride_index must be non-negative")
        if stride_index == 0:
            return 1.0
        return self.stride_tokens / (self.input_tokens + self.stride_tokens)
