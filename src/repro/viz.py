"""Terminal plotting for experiment output (the artifact's plot step).

The paper's artifact renders matplotlib figures; this environment is
offline-only, so the harness renders Unicode charts instead: multi-series
line charts, horizontal bar charts, and shaded heatmaps, all pure text. The
experiment runner uses these via :func:`render_figure` so
``python -m repro.experiments.runner`` visually reproduces the evaluation.
"""

from __future__ import annotations

import math
from typing import Sequence

from .metrics.reporting import FigureResult, Series

#: Per-series plot markers, cycled.
MARKERS = "ox+*#@%&"
#: Shade ramp for heatmaps, light to dark.
SHADES = " ░▒▓█"


def _nice_num(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.1e}"
    return f"{value:.3g}"


def _scale(value: float, lo: float, hi: float, *, log: bool) -> float:
    """Map *value* to [0, 1] given axis bounds."""
    if log:
        if value <= 0 or lo <= 0:
            raise ValueError("log axis requires positive values")
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def line_chart(
    series: "Sequence[Series]",
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render multiple (x, y) series on one character canvas.

    Each series gets a marker from :data:`MARKERS`; a legend follows the
    axes. Both axes support log scaling (needed for the paper's
    datastore-size sweeps).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    if not xs:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = MARKERS[si % len(MARKERS)]
        for x, y in zip(s.x, s.y):
            col = round(_scale(x, x_lo, x_hi, log=logx) * (width - 1))
            row = round((1.0 - _scale(y, y_lo, y_hi, log=logy)) * (height - 1))
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top, y_bottom = _nice_num(y_hi), _nice_num(y_lo)
    label_width = max(len(y_top), len(y_bottom))
    for r, row in enumerate(canvas):
        if r == 0:
            label = y_top.rjust(label_width)
        elif r == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_left, x_right = _nice_num(x_lo), _nice_num(x_hi)
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (label_width + 2) + x_left + " " * max(gap, 1) + x_right)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart (used for the normalized-metric figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("nothing to plot")
    vmax = max(values)
    if vmax <= 0:
        raise ValueError("values must contain something positive")
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = round(width * max(value, 0.0) / vmax)
        bar = "█" * filled
        lines.append(f"{str(label).rjust(label_width)} |{bar} {_nice_num(value)}")
    return "\n".join(lines)


def heatmap(
    matrix: "Sequence[Sequence[float]]",
    *,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Shaded-cell heatmap (used for the Fig. 19 cluster-size grid)."""
    rows = [list(map(float, row)) for row in matrix]
    if not rows or not rows[0]:
        raise ValueError("matrix must be non-empty")
    n_cols = len(rows[0])
    if any(len(r) != n_cols for r in rows):
        raise ValueError("matrix rows must have equal length")
    flat = [v for row in rows for v in row]
    lo, hi = min(flat), max(flat)
    span = hi - lo or 1.0

    def shade(value: float) -> str:
        level = int((value - lo) / span * (len(SHADES) - 1))
        return SHADES[level] * 2

    row_labels = list(row_labels or [""] * len(rows))
    label_width = max(len(str(l)) for l in row_labels)
    lines = [title] if title else []
    if col_labels is not None:
        header = " " * (label_width + 1) + " ".join(
            str(c)[:2].rjust(2) for c in col_labels
        )
        lines.append(header)
    for label, row in zip(row_labels, rows):
        cells = " ".join(shade(v) for v in row)
        lines.append(f"{str(label).rjust(label_width)} {cells}")
    lines.append(f"scale: {SHADES[1]}={_nice_num(lo)} .. {SHADES[-1]}={_nice_num(hi)}")
    return "\n".join(lines)


def render_figure(
    figure: FigureResult, *, logx: bool = False, logy: bool = False
) -> str:
    """Chart + data table for one reproduced figure."""
    chart = line_chart(
        figure.series,
        title=f"{figure.figure_id}: {figure.description}",
        logx=logx,
        logy=logy,
    )
    return chart + "\n\n" + figure.render()
