"""Load generation and cluster-access traces.

The paper's multi-node tool pairs per-node measurements with "a trace of the
top clusters accessed during the deep search based on TriviaQA" (its Fig. 15)
to model end-to-end behaviour, and analyses access-frequency imbalance on
Natural Questions queries (its Fig. 13). This module provides both artefacts:
batched query traces from a :class:`~repro.datastore.queries.QuerySet`, and
the per-cluster access bookkeeping derived from routing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BatchRouting:
    """Deep-search routing of one query batch.

    ``clusters`` is an ``(batch, m)`` int matrix: the clusters each query
    deep-searches (``-1`` entries are ignored, supporting variable fan-out).
    """

    clusters: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.clusters)
        if arr.ndim != 2:
            raise ValueError(f"clusters must be 2-D (batch, m), got shape {arr.shape}")
        object.__setattr__(self, "clusters", arr.astype(np.int64))

    @property
    def batch_size(self) -> int:
        return len(self.clusters)

    def node_loads(self, n_clusters: int) -> np.ndarray:
        """Queries routed to each cluster in this batch (length n_clusters)."""
        flat = self.clusters.ravel()
        valid = flat[flat >= 0]
        if valid.size and valid.max() >= n_clusters:
            raise ValueError(
                f"routing references cluster {valid.max()} but only {n_clusters} exist"
            )
        return np.bincount(valid, minlength=n_clusters).astype(np.int64)


@dataclass
class ClusterAccessTrace:
    """Accumulated routing decisions across many batches (Fig. 13/15 traces)."""

    n_clusters: int
    batches: list[BatchRouting] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {self.n_clusters}")

    def record(self, routing: BatchRouting) -> None:
        self.batches.append(routing)

    def __len__(self) -> int:
        return len(self.batches)

    def access_counts(self) -> np.ndarray:
        """Total deep-search accesses per cluster across the trace."""
        counts = np.zeros(self.n_clusters, dtype=np.int64)
        for batch in self.batches:
            counts += batch.node_loads(self.n_clusters)
        return counts

    def access_frequency(self) -> np.ndarray:
        """Access counts normalised to probabilities."""
        counts = self.access_counts().astype(np.float64)
        total = counts.sum()
        if total == 0:
            return counts
        return counts / total

    def imbalance(self) -> float:
        """Hottest/coldest cluster access ratio (the paper reports >2x)."""
        counts = self.access_counts()
        coldest = counts.min()
        if coldest == 0:
            return float("inf")
        return float(counts.max()) / float(coldest)

    def mean_loads(self) -> np.ndarray:
        """Average per-batch queries routed to each cluster."""
        if not self.batches:
            return np.zeros(self.n_clusters)
        return self.access_counts() / len(self.batches)


class LoadGenerator:
    """Cycles a query set into fixed-size batches (the Fig. 15 load source)."""

    def __init__(self, embeddings: np.ndarray, *, batch_size: int, seed: int = 0) -> None:
        emb = np.asarray(embeddings, dtype=np.float32)
        if emb.ndim != 2 or not len(emb):
            raise ValueError("embeddings must be a non-empty (n, d) matrix")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.embeddings = emb
        self.batch_size = batch_size
        self._order = np.random.default_rng(seed).permutation(len(emb))
        self._cursor = 0

    def next_batch(self) -> np.ndarray:
        """Return the next ``(batch_size, d)`` batch, recycling the pool."""
        picks = []
        remaining = self.batch_size
        while remaining > 0:
            take = min(remaining, len(self._order) - self._cursor)
            picks.append(self._order[self._cursor : self._cursor + take])
            self._cursor += take
            remaining -= take
            if self._cursor >= len(self._order):
                self._cursor = 0
        return self.embeddings[np.concatenate(picks)]

    def batches(self, n_batches: int) -> list[np.ndarray]:
        """Generate *n_batches* consecutive batches."""
        if n_batches <= 0:
            raise ValueError(f"n_batches must be positive, got {n_batches}")
        return [self.next_batch() for _ in range(n_batches)]
