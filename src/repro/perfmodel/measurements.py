"""Calibrated on-device measurement anchors (the paper's Fig. 15 tables).

The paper's multi-node analysis tool measures latency/power/energy of single
index clusters and inference stages on real hardware across batch sizes,
strides, and sequence lengths, builds a lookup table, and aggregates it to
model multi-node behaviour. This module is that lookup table, with entries
*calibrated to the paper's reported operating points* instead of live
measurements:

- **Retrieval** (IVF-SQ8, nProbe 128, 32-core Xeon Gold 6448Y): per-batch
  latency 5.62 s at a 100B-token datastore, scaling linearly with datastore
  tokens. This single anchor reproduces the paper's E2E numbers exactly:
  101.8 s at 100B and 909.1 s at 1T (16 strides), and its TTFT retrieval
  shares (61% @10B, 94% @100B).
- **Encoding** (BGE-Large-like): 0.115 s per batch of 32.
- **Inference** (Gemma2-9B on A6000 Ada, FP16): prefill 132 QPS at batch 32
  with 512 input tokens (2.2 J/query); decode 67 QPS per 16-token stride
  (2.2 J/query/stride).

Everything else is derived by scaling laws around these anchors (see each
function's docstring). Note on the paper's internal units: its Fig. 6 quotes
retrieval "5.62 s at 10B", but its own E2E latencies (12.0 s @100M, 101.8 s
@100B, 909.1 s @1T with 16 strides) are only mutually consistent if 5.62 s is
the per-stride retrieval at **100B**; we calibrate to the E2E-consistent
interpretation and record the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.cpu import CPUPlatform, XEON_GOLD_6448Y

#: Anchor: per-batch retrieval latency (s) at the reference configuration.
REF_RETRIEVAL_LATENCY_S = 5.62
#: Reference datastore size (tokens) for the retrieval anchor.
REF_DATASTORE_TOKENS = 100e9
#: Reference nProbe of the anchor (the paper's production setting).
REF_NPROBE = 128
#: Reference batch size of the anchor.
REF_BATCH = 32
#: Sub-linear exponent of latency in nProbe (centroid scan amortisation).
NPROBE_EXPONENT = 0.8
#: Mild super-unit exponent on extra scheduling waves (work-stealing slack).
WAVE_EFFICIENCY_EXPONENT = 0.97

#: Bytes per stored vector for IVF-SQ8 (Table 1) plus int64 ids.
SQ8_BYTES_PER_VECTOR = 768 + 8
#: Tokens per chunk in the paper's token accounting: a 10B-token index over
#: 100M documents (Fig. 4) implies 100 tokens per stored vector.
TOKENS_PER_VECTOR = 100

#: Encoder (BGE-Large-like) anchor: seconds per batch of 32 queries.
REF_ENCODE_LATENCY_S = 0.115
#: Encoder runs on the inference GPU at this power (W).
ENCODE_POWER_W = 180.0


def vectors_for_tokens(tokens: float) -> float:
    """Datastore vectors (chunks) for a size in tokens."""
    if tokens < 0:
        raise ValueError(f"tokens must be non-negative, got {tokens}")
    return tokens / TOKENS_PER_VECTOR


def index_memory_bytes(tokens: float) -> float:
    """Resident bytes of an IVF-SQ8 index over *tokens* of text.

    Linear in datastore size (Fig. 7 right): ~76 GB at 10B tokens, ~7.7 TB at
    1T tokens ("nearly 10 TB" in the paper).
    """
    n_vec = vectors_for_tokens(tokens)
    centroid_bytes = math.sqrt(max(n_vec, 1.0)) * 768 * 4  # fp32 nlist centroids
    return n_vec * SQ8_BYTES_PER_VECTOR + centroid_bytes


@dataclass(frozen=True)
class RetrievalCostModel:
    """Latency/energy model for one IVF-SQ8 shard on one CPU node.

    The FAISS execution model the paper describes (§6 Takeaway 1) schedules
    one thread per query with work stealing: a batch no larger than the core
    count finishes in one "wave" whose latency equals the single-query
    latency; larger batches take ``ceil(batch / cores)`` waves with a small
    efficiency gain from overlap.
    """

    platform: CPUPlatform = XEON_GOLD_6448Y

    def single_query_latency(
        self, datastore_tokens: float, *, nprobe: int = REF_NPROBE, freq_ghz: float | None = None
    ) -> float:
        """Latency (s) of one query against one shard at full parallelism."""
        if datastore_tokens < 0:
            raise ValueError("datastore_tokens must be non-negative")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        base = REF_RETRIEVAL_LATENCY_S * (datastore_tokens / REF_DATASTORE_TOKENS)
        base *= (nprobe / REF_NPROBE) ** NPROBE_EXPONENT
        base /= self.platform.relative_speed
        if freq_ghz is not None:
            base *= self.platform.slowdown_at(freq_ghz)
        return base

    def waves(self, batch: int) -> float:
        """Scheduling waves for a batch on this platform's cores.

        One-thread-per-query work stealing: a batch no larger than the core
        count completes in one single-query latency; beyond that, occupancy
        grows continuously (queries interleave rather than marching in strict
        waves), with a small efficiency gain from overlap.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        occupancy = max(1.0, batch / self.platform.cores)
        return occupancy**WAVE_EFFICIENCY_EXPONENT

    def batch_latency(
        self,
        datastore_tokens: float,
        batch: int,
        *,
        nprobe: int = REF_NPROBE,
        freq_ghz: float | None = None,
    ) -> float:
        """Latency (s) for a batch of queries against one shard."""
        if batch == 0:
            return 0.0
        single = self.single_query_latency(
            datastore_tokens, nprobe=nprobe, freq_ghz=freq_ghz
        )
        return single * self.waves(batch)

    def utilization(self, batch: int) -> float:
        """Fraction of cores busy during the batch (last wave may be partial)."""
        if batch <= 0:
            return 0.0
        per_wave = min(batch, self.platform.cores)
        return per_wave / self.platform.cores

    def batch_energy(
        self,
        datastore_tokens: float,
        batch: int,
        *,
        nprobe: int = REF_NPROBE,
        freq_ghz: float | None = None,
    ) -> float:
        """Energy (J) for a batch against one shard at the given frequency."""
        latency = self.batch_latency(
            datastore_tokens, batch, nprobe=nprobe, freq_ghz=freq_ghz
        )
        freq = self.platform.max_freq_ghz if freq_ghz is None else freq_ghz
        power = self.platform.power_at(freq, utilization=self.utilization(batch))
        return power * latency

    def throughput_qps(
        self, datastore_tokens: float, batch: int, *, nprobe: int = REF_NPROBE
    ) -> float:
        """Steady-state queries/s of back-to-back batches on one shard."""
        latency = self.batch_latency(datastore_tokens, batch, nprobe=nprobe)
        if latency <= 0:
            return math.inf
        return batch / latency


@dataclass(frozen=True)
class EncoderCostModel:
    """Query-encoding (BGE-Large-like) latency/energy on the inference GPU."""

    ref_latency_s: float = REF_ENCODE_LATENCY_S
    ref_batch: int = REF_BATCH
    power_w: float = ENCODE_POWER_W

    def batch_latency(self, batch: int) -> float:
        """Encoding latency per batch; near-linear above the reference batch."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if batch <= self.ref_batch:
            # Small batches underutilise the GPU; latency is nearly flat.
            return self.ref_latency_s * (0.5 + 0.5 * batch / self.ref_batch)
        return self.ref_latency_s * (batch / self.ref_batch) ** 0.9

    def batch_energy(self, batch: int) -> float:
        return self.power_w * self.batch_latency(batch)


# Fig. 4-specific measured entries: a 10B-token (100M-doc) index at batch
# sizes 32 and 128, comparing HNSW vs IVF. These reproduce the figure's
# reported ratios (HNSW ~2.4x faster, ~2.3x more memory).
FIG4_MEASUREMENTS = {
    # (index_type, batch): (latency_s, throughput_qps)
    ("ivf", 32): (0.58, 55.0),
    ("ivf", 128): (0.97, 131.0),
    ("hnsw", 32): (0.24, 133.0),
    ("hnsw", 128): (0.40, 321.0),
}
#: Fig. 4 memory footprints (GB) for the 10B-token index.
FIG4_MEMORY_GB = {"ivf": 71.0, "hnsw": 166.0}
