"""Multi-node performance analysis tool (the paper's Fig. 15 methodology).

Calibrated single-node measurement models plus trace-driven multi-node
aggregation of latency, energy, and throughput.
"""

from .aggregate import (
    DistributedRetrievalResult,
    DVFSPolicy,
    MultiNodeModel,
    PhaseResult,
    expected_deep_loads,
)
from .measurements import (
    FIG4_MEASUREMENTS,
    FIG4_MEMORY_GB,
    REF_BATCH,
    REF_DATASTORE_TOKENS,
    REF_NPROBE,
    REF_RETRIEVAL_LATENCY_S,
    SQ8_BYTES_PER_VECTOR,
    TOKENS_PER_VECTOR,
    EncoderCostModel,
    RetrievalCostModel,
    index_memory_bytes,
    vectors_for_tokens,
)
from .trace import BatchRouting, ClusterAccessTrace, LoadGenerator

__all__ = [
    "DistributedRetrievalResult",
    "DVFSPolicy",
    "MultiNodeModel",
    "PhaseResult",
    "expected_deep_loads",
    "FIG4_MEASUREMENTS",
    "FIG4_MEMORY_GB",
    "REF_BATCH",
    "REF_DATASTORE_TOKENS",
    "REF_NPROBE",
    "REF_RETRIEVAL_LATENCY_S",
    "SQ8_BYTES_PER_VECTOR",
    "TOKENS_PER_VECTOR",
    "EncoderCostModel",
    "RetrievalCostModel",
    "index_memory_bytes",
    "vectors_for_tokens",
    "BatchRouting",
    "ClusterAccessTrace",
    "LoadGenerator",
]
