"""Multi-node aggregation: the paper's Fig. 15 analysis tool.

Given per-node measurement models (:mod:`repro.perfmodel.measurements`), a
fleet (:class:`repro.hardware.node.NodeCluster`), and a routing trace, this
module computes end-to-end retrieval latency, energy, and throughput for the
three serving organisations the paper compares:

- **monolithic**: one node holds the whole datastore;
- **naive split**: every node searches every query batch, results are
  aggregated (commercial distributed vector DBs);
- **Hermes**: a cheap sample phase on all nodes ranks clusters, then only the
  routed subset runs the deep search — optionally with the paper's two DVFS
  policies (§4.2 and Fig. 21) trimming node frequencies.

Latency of a phase is the slowest participating node; energy sums active
nodes plus idle draw of the rest for the phase duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..hardware.dvfs import frequency_for_target, operating_point
from ..hardware.node import NodeCluster
from .measurements import RetrievalCostModel


class DVFSPolicy(Enum):
    """Frequency-scaling policies for the Hermes deep-search phase."""

    #: All nodes run at maximum frequency.
    NONE = "none"
    #: Underloaded nodes slow down to match the slowest cluster in the batch
    #: (the paper's 10.1-14.5% savings).
    BASELINE = "baseline"
    #: All nodes slow down to match the *inference* latency the retrieval is
    #: pipelined under (the paper's enhanced 18.8-22.1% savings).
    ENHANCED = "enhanced"


@dataclass(frozen=True)
class PhaseResult:
    """Latency/energy of one retrieval phase across the fleet."""

    latency_s: float
    energy_j: float
    per_node_latency_s: np.ndarray
    per_node_energy_j: np.ndarray

    @property
    def nodes_active(self) -> int:
        return int(np.count_nonzero(self.per_node_latency_s > 0))


@dataclass(frozen=True)
class DistributedRetrievalResult:
    """Full Hermes (or naive-split) retrieval outcome for one batch."""

    latency_s: float
    energy_j: float
    sample: PhaseResult | None
    deep: PhaseResult

    @property
    def clusters_deep_searched(self) -> int:
        return self.deep.nodes_active


class MultiNodeModel:
    """Aggregates calibrated per-node costs into fleet-level metrics."""

    def __init__(self, cluster: NodeCluster) -> None:
        if not len(cluster):
            raise ValueError("cluster must contain at least one node")
        self.cluster = cluster
        self._cost_models = [RetrievalCostModel(platform=n.cpu) for n in cluster]

    # -- single-node organisations -----------------------------------------
    def monolithic(
        self, datastore_tokens: float, batch: int, *, nprobe: int = 128
    ) -> PhaseResult:
        """One node searches the entire datastore (the paper's baseline)."""
        cost = self._cost_models[0]
        latency = cost.batch_latency(datastore_tokens, batch, nprobe=nprobe)
        energy = cost.batch_energy(datastore_tokens, batch, nprobe=nprobe)
        per_lat = np.zeros(len(self.cluster))
        per_en = np.zeros(len(self.cluster))
        per_lat[0] = latency
        per_en[0] = energy
        return PhaseResult(
            latency_s=latency,
            energy_j=energy,
            per_node_latency_s=per_lat,
            per_node_energy_j=per_en,
        )

    # -- fleet phases ------------------------------------------------------------
    def _phase(
        self,
        per_node_batch: np.ndarray,
        *,
        nprobe: int,
        dvfs: DVFSPolicy = DVFSPolicy.NONE,
        latency_target_s: float | None = None,
        period_s: float | None = None,
    ) -> PhaseResult:
        """Run one phase where node *i* searches ``per_node_batch[i]`` queries.

        Under :attr:`DVFSPolicy.BASELINE` every node slows to just meet the
        slowest node's max-frequency latency; under :attr:`DVFSPolicy.ENHANCED`
        the target additionally stretches to ``latency_target_s`` (the
        pipelined inference window).

        Energy accounting separates **idle** draw — every node pays idle
        power for the accounting window ``period_s`` (defaults to the phase
        latency; in steady-state pipelined serving the batch period is set by
        the slowest pipeline stage, so comparisons across DVFS policies pass
        a common period) — from **dynamic** energy, which scales with the
        chosen frequency squared per unit work (cubic power x inverse-linear
        time).
        """
        n = len(self.cluster)
        loads = np.asarray(per_node_batch, dtype=np.int64)
        if len(loads) != n:
            raise ValueError(f"expected {n} per-node loads, got {len(loads)}")
        busy = np.zeros(n)
        for i, (node, cost) in enumerate(zip(self.cluster, self._cost_models)):
            if loads[i] > 0:
                busy[i] = cost.batch_latency(
                    node.shard_tokens, int(loads[i]), nprobe=nprobe
                )
        max_busy = float(busy.max()) if busy.size else 0.0

        if dvfs is DVFSPolicy.ENHANCED:
            if latency_target_s is None:
                raise ValueError("ENHANCED DVFS requires latency_target_s")
            target = max(max_busy, latency_target_s)
        else:
            target = max_busy

        per_lat = np.zeros(n)
        per_dyn = np.zeros(n)
        for i, (node, cost) in enumerate(zip(self.cluster, self._cost_models)):
            if loads[i] == 0:
                continue
            if dvfs is DVFSPolicy.NONE:
                freq = node.cpu.max_freq_ghz
            else:
                freq = frequency_for_target(node.cpu, busy[i], target)
            point = operating_point(
                node.cpu,
                busy[i],
                freq,
                utilization=cost.utilization(int(loads[i])),
            )
            per_lat[i] = point.latency_s
            per_dyn[i] = (
                node.cpu.power_at(freq, utilization=cost.utilization(int(loads[i])))
                - node.cpu.idle_power_w
            ) * point.latency_s
        phase_latency = float(per_lat.max()) if per_lat.size else 0.0
        period = max(phase_latency, period_s or 0.0)
        per_en = per_dyn + np.array(
            [node.cpu.idle_power_w * period for node in self.cluster]
        )
        return PhaseResult(
            latency_s=phase_latency,
            energy_j=float(per_en.sum()),
            per_node_latency_s=per_lat,
            per_node_energy_j=per_en,
        )

    def naive_split(
        self, batch: int, *, nprobe: int = 128
    ) -> DistributedRetrievalResult:
        """Every node searches the whole batch; results are aggregated."""
        loads = np.full(len(self.cluster), batch, dtype=np.int64)
        deep = self._phase(loads, nprobe=nprobe)
        return DistributedRetrievalResult(
            latency_s=deep.latency_s, energy_j=deep.energy_j, sample=None, deep=deep
        )

    def hermes(
        self,
        batch: int,
        deep_loads: np.ndarray,
        *,
        sample_nprobe: int = 8,
        deep_nprobe: int = 128,
        dvfs: DVFSPolicy = DVFSPolicy.NONE,
        latency_target_s: float | None = None,
        period_s: float | None = None,
    ) -> DistributedRetrievalResult:
        """Hermes hierarchical retrieval: sample all, deep-search the routed.

        ``deep_loads[i]`` is the number of the batch's queries whose top-m
        routing includes cluster *i* (from a
        :class:`~repro.perfmodel.trace.BatchRouting` or an expected-load
        vector). The sample phase always runs the full batch on every node.
        """
        sample_loads = np.full(len(self.cluster), batch, dtype=np.int64)
        sample = self._phase(sample_loads, nprobe=sample_nprobe)
        deep = self._phase(
            np.asarray(deep_loads),
            nprobe=deep_nprobe,
            dvfs=dvfs,
            latency_target_s=latency_target_s,
            period_s=period_s,
        )
        return DistributedRetrievalResult(
            latency_s=sample.latency_s + deep.latency_s,
            energy_j=sample.energy_j + deep.energy_j,
            sample=sample,
            deep=deep,
        )

    # -- throughput --------------------------------------------------------------
    def throughput_qps(self, batch: int, result: DistributedRetrievalResult) -> float:
        """Steady-state fleet throughput for back-to-back identical batches.

        The fleet is a pipeline: a new batch can start its sample phase while
        the previous one deep-searches, so throughput is gated by the busier
        of the two phases (per-node max busy time).
        """
        stage_times = []
        if result.sample is not None:
            stage_times.append(float(result.sample.per_node_latency_s.max()))
        stage_times.append(float(result.deep.per_node_latency_s.max()))
        bottleneck = max(t for t in stage_times if t >= 0)
        if bottleneck <= 0:
            return math.inf
        return batch / bottleneck


def expected_deep_loads(
    batch: int, access_frequency: np.ndarray, clusters_searched: int
) -> np.ndarray:
    """Expected per-node deep-search loads from a cluster access distribution.

    Each query deep-searches ``clusters_searched`` clusters; cluster *i*
    participates proportionally to its trace access frequency. Loads are the
    expected query counts per node (rounded, preserving the total).
    """
    freq = np.asarray(access_frequency, dtype=np.float64)
    if freq.ndim != 1 or not len(freq):
        raise ValueError("access_frequency must be a non-empty 1-D distribution")
    if clusters_searched <= 0 or clusters_searched > len(freq):
        raise ValueError(
            f"clusters_searched must be in [1, {len(freq)}], got {clusters_searched}"
        )
    if not np.isclose(freq.sum(), 1.0):
        raise ValueError("access_frequency must sum to 1")
    raw = batch * clusters_searched * freq
    loads = np.floor(raw).astype(np.int64)
    shortfall = batch * clusters_searched - int(loads.sum())
    if shortfall > 0:
        order = np.argsort(raw - loads)[::-1]
        loads[order[:shortfall]] += 1
    return np.minimum(loads, batch)
