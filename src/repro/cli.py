"""Command-line interface mirroring the paper artifact's workflow.

The Hermes artifact ships shell scripts for index construction, search/model
profiling, accuracy evaluation, multi-node aggregation, and plot generation
(its Appendix A.5 steps). This CLI exposes the same workflow over the
reproduction::

    hermes-repro build --docs 50000 --clusters 10 --algorithm auto
    hermes-repro build-index --docs 20000 --clusters 10 --out store/
    hermes-repro accuracy --store store/ --clusters-searched 3
    hermes-repro profile --tokens 1e10 --batch 128
    hermes-repro multinode --tokens 1e12 --clusters 10 --batch 128 --dvfs enhanced
    hermes-repro serve-sim --tokens 1e10 --batches 16
    hermes-repro cache --alphas 0 0.5 1.0 1.5 --out cache_sweep.json
    hermes-repro faults --killed 0 1 2 3 --out faults.json
    hermes-repro overload --loads 0.5 1 2 --out overload.json
    hermes-repro mutate --churns 0 0.01 0.05 --smoke
    hermes-repro serve --requests 16 --strides 4 --out serve.json
    hermes-repro trace retrieval --out trace.json
    hermes-repro reproduce --fast

Every subcommand is also reachable as ``python -m repro.cli <cmd>``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_build(args: argparse.Namespace) -> int:
    import time

    from .core.build_cache import BuildCache, CacheStats, cached_cluster_datastore
    from .core.config import HermesConfig
    from .core.store_io import save_datastore
    from .datastore.embeddings import make_corpus

    corpus = make_corpus(args.docs, n_topics=args.topics, dim=args.dim, seed=args.seed)
    config = HermesConfig(
        n_clusters=args.clusters,
        clusters_to_search=min(3, args.clusters),
        quantization=args.quantization,
        kmeans_algorithm=args.algorithm,
        build_workers=args.workers,
    )
    stats = CacheStats()
    cache = BuildCache(args.cache_dir, stats=stats) if args.cache_dir else BuildCache(stats=stats)
    start = time.perf_counter()
    datastore = cached_cluster_datastore(
        corpus.embeddings, config, cache=cache, use_cache=not args.no_cache
    )
    elapsed = time.perf_counter() - start
    print(
        f"built clustered datastore: {datastore.ntotal} docs, "
        f"{datastore.n_clusters} shards, imbalance {datastore.imbalance:.2f}x, "
        f"{datastore.memory_bytes() / 1e6:.1f} MB in {elapsed:.2f} s "
        f"(algorithm={args.algorithm})"
    )
    if args.no_cache:
        print("build-cache: disabled (--no-cache)")
    else:
        print(f"{stats.summary()} [{cache.directory}]")
    if args.out:
        save_datastore(datastore, args.out)
        print(f"exported -> {args.out}")
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    from .core.clustering import cluster_datastore, split_datastore_evenly
    from .core.config import HermesConfig
    from .core.store_io import save_datastore
    from .datastore.embeddings import make_corpus

    corpus = make_corpus(
        args.docs, n_topics=args.topics, dim=args.dim, seed=args.seed
    )
    config = HermesConfig(
        n_clusters=args.clusters,
        clusters_to_search=min(3, args.clusters),
        quantization=args.quantization,
    )
    if args.strategy == "clustered":
        datastore = cluster_datastore(corpus.embeddings, config)
    else:
        datastore = split_datastore_evenly(corpus.embeddings, config)
    save_datastore(datastore, args.out)
    print(
        f"built {args.strategy} datastore: {datastore.ntotal} docs, "
        f"{datastore.n_clusters} shards, imbalance {datastore.imbalance:.2f}x, "
        f"{datastore.memory_bytes() / 1e6:.1f} MB -> {args.out}"
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .baselines.monolithic import MonolithicRetriever
    from .core.hierarchical import HermesSearcher
    from .core.store_io import load_datastore
    from .datastore.embeddings import TopicModel
    from .datastore.queries import trivia_queries
    from .metrics.ndcg import ndcg

    datastore = load_datastore(args.store)
    dim = datastore.shards[0].index.dim
    # NDCG against brute force over the deployed (quantized) vectors; the
    # query topic geometry must match the build seed (same --seed/--topics).
    vectors = datastore.reconstruct_vectors()
    model = TopicModel.create(n_topics=args.topics, dim=dim, seed=args.seed)
    queries = trivia_queries(model, args.queries)
    mono = MonolithicRetriever(vectors)
    _, truth = mono.ground_truth(queries.embeddings, args.k)
    searcher = HermesSearcher(datastore)
    result = searcher.search(
        queries.embeddings, k=args.k, clusters_to_search=args.clusters_searched
    )
    score = ndcg(result.ids, truth)
    print(
        f"NDCG @ {args.clusters_searched} clusters searched: {score:.4f} "
        f"({args.queries} queries, k={args.k})"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .metrics.reporting import format_table
    from .perfmodel.measurements import (
        RetrievalCostModel,
        index_memory_bytes,
    )
    from .hardware.cpu import get_cpu

    cost = RetrievalCostModel(platform=get_cpu(args.cpu))
    rows = []
    for nprobe in args.nprobes:
        latency = cost.batch_latency(args.tokens, args.batch, nprobe=nprobe)
        energy = cost.batch_energy(args.tokens, args.batch, nprobe=nprobe)
        rows.append(
            (nprobe, latency, args.batch / latency, energy, energy / args.batch)
        )
    print(
        format_table(
            ["nProbe", "latency (s)", "QPS", "J/batch", "J/query"],
            rows,
            title=(
                f"retrieval profile: {args.tokens:.3g} tokens, batch "
                f"{args.batch}, {cost.platform.name}"
            ),
        )
    )
    print(f"index memory: {index_memory_bytes(args.tokens) / 1e9:.1f} GB (IVF-SQ8)")
    return 0


def _cmd_multinode(args: argparse.Namespace) -> int:
    from .experiments.common import build_fleet
    from .perfmodel.aggregate import DVFSPolicy, expected_deep_loads

    fleet = build_fleet(args.tokens, n_clusters=args.clusters, cpu_key=args.cpu)
    loads = expected_deep_loads(
        args.batch, fleet.access_frequency, args.clusters_searched
    )
    dvfs = DVFSPolicy(args.dvfs)
    kwargs = {}
    if dvfs is DVFSPolicy.ENHANCED:
        kwargs["latency_target_s"] = args.inference_window
    hermes = fleet.model.hermes(args.batch, loads, dvfs=dvfs, **kwargs)
    naive = fleet.model.naive_split(args.batch)
    mono = fleet.model.monolithic(args.tokens, args.batch)
    print(f"fleet: {args.clusters}x {fleet.model.cluster[0].cpu.name}")
    print(f"monolithic : {mono.latency_s:9.3f} s  {mono.energy_j:10.0f} J")
    print(f"naive split: {naive.latency_s:9.3f} s  {naive.energy_j:10.0f} J")
    print(
        f"hermes     : {hermes.latency_s:9.3f} s  {hermes.energy_j:10.0f} J "
        f"({args.clusters_searched} clusters deep, dvfs={args.dvfs})"
    )
    print(
        f"speedup vs monolithic: {mono.latency_s / hermes.latency_s:.2f}x; "
        f"energy vs naive: {naive.energy_j / hermes.energy_j:.2f}x; "
        f"throughput: {fleet.model.throughput_qps(args.batch, hermes):.0f} QPS"
    )
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from .datastore.embeddings import zipf_weights
    from .llm.generation import GenerationConfig
    from .perfmodel.aggregate import expected_deep_loads
    from .serving import PipelineSimulator, plan_from_models

    config = GenerationConfig(
        batch=args.batch, stride=args.stride, output_tokens=args.output_tokens
    )
    shard_tokens = [args.tokens / args.clusters] * args.clusters
    loads = expected_deep_loads(
        args.batch, zipf_weights(args.clusters, exponent=0.45), args.clusters_searched
    )
    plan = plan_from_models(config, shard_tokens=shard_tokens, deep_loads=loads)
    sim = PipelineSimulator(plan, batch_size=args.batch)
    report = sim.run(args.batches)
    print(
        f"simulated {args.batches} batches of {args.batch}: "
        f"makespan {report.makespan_s:.1f} s, throughput {report.throughput_qps:.1f} QPS"
    )
    print(
        f"latency mean {report.mean_latency_s:.1f} s / p99 "
        f"{report.latency_percentile(99):.1f} s; TTFT mean {report.mean_ttft_s:.2f} s"
    )
    print(
        f"gpu utilization {report.gpu_utilization:.0%}; hottest node "
        f"{report.node_utilization.max():.0%}"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments import serve_cache
    from .metrics.reporting import format_table
    from .obs.metrics import get_registry

    points = serve_cache.run(
        tuple(args.alphas),
        n_unique=args.unique,
        n_requests=args.requests,
        batch=args.batch,
        k=args.k,
        capacity=args.capacity,
        jitter=args.jitter,
        seed=args.seed,
    )
    print(
        format_table(
            serve_cache.TABLE_HEADERS,
            serve_cache.table_rows(points),
            title=(
                f"serve cache skew sweep: {args.unique} unique queries, "
                f"{args.requests} requests, batch {args.batch}, "
                f"capacity {args.capacity}, k={args.k}"
            ),
        )
    )
    snapshot = get_registry().snapshot()
    print("cache metrics:")
    for name in sorted(snapshot):
        if name.startswith(("retrieval_cache_", "frontend_")):
            print(f"  {name} = {snapshot[name]:g}")
    if args.out:
        serve_cache.write_artifact(points, args.out, k=args.k)
        print(f"skew sweep -> {args.out}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .experiments import fig_faults

    points = fig_faults.run(
        tuple(args.killed), k=args.k, n_queries=args.queries, seed=args.seed
    )
    for p in points:
        print(
            f"killed={p.killed} {p.killed_shards}: "
            f"hermes NDCG@{args.k} {p.hermes.ndcg:.3f} "
            f"(affected {p.hermes.affected_frac:.0%}, "
            f"p50 {p.hermes.p50_ms:.1f} ms, p99 {p.hermes.p99_ms:.1f} ms) | "
            f"split NDCG@{args.k} {p.split.ndcg:.3f} "
            f"(affected {p.split.affected_frac:.0%}, "
            f"p50 {p.split.p50_ms:.1f} ms, p99 {p.split.p99_ms:.1f} ms)"
        )
    if args.out:
        fig_faults.write_artifact(points, args.out, k=args.k)
        print(f"degradation curve -> {args.out}")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from .experiments import overload
    from .metrics.reporting import format_table
    from .obs.metrics import get_registry

    if args.smoke:
        loads = tuple(args.loads) if 2.0 in args.loads else tuple(args.loads) + (2.0,)
        report = overload.run(
            loads,
            n_requests=min(args.requests, 480),
            deadline_ms=args.deadline_ms,
            max_queue=args.max_queue,
            k=args.k,
            n_failover_queries=64,
            seed=args.seed,
        )
    else:
        report = overload.run(
            tuple(args.loads),
            n_requests=args.requests,
            deadline_ms=args.deadline_ms,
            max_queue=args.max_queue,
            k=args.k,
            seed=args.seed,
        )
    print(
        format_table(
            overload.TABLE_HEADERS,
            overload.table_rows(report),
            title=(
                f"overload sweep: capacity {report.capacity_qps:.0f} qps, "
                f"deadline {report.deadline_ms:.0f} ms, max queue {report.max_queue}"
            ),
        )
    )
    print("failover (mid-run node kill):")
    for p in report.failover:
        print(
            f"  {p.config:12s} NDCG@{args.k} before {p.ndcg_before:.3f} / "
            f"after {p.ndcg_after:.3f}"
            + (f", failovers {p.failovers}, replicas out {p.replicas_out}"
               if p.config == "replicated" else "")
        )
    snapshot = get_registry().snapshot()
    print("overload metrics:")
    for name in sorted(snapshot):
        if name.startswith(("serving_", "retrieval_failovers", "retrieval_replica",
                            "retrieval_deadline", "retrieval_retry_budget")):
            print(f"  {name} = {snapshot[name]:g}")
    if args.out:
        overload.write_artifact(report, args.out)
        print(f"overload artifact -> {args.out}")
    if args.smoke:
        problems = overload.smoke_check(report)
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print("smoke checks passed: admission goodput >= unbounded at 2x; failover holds NDCG")
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    from .experiments import mutation
    from .metrics.reporting import format_table
    from .obs.metrics import get_registry

    report = mutation.run(
        tuple(args.churns),
        docs=args.docs,
        n_queries=args.queries,
        batch=args.batch,
        k=args.k,
        seed=args.seed,
    )
    print(
        format_table(
            mutation.TABLE_HEADERS,
            mutation.table_rows(report),
            title=(
                f"live-mutation churn sweep: {report.docs} docs, "
                f"{report.n_queries} queries, batch {report.batch}, k={report.k}"
            ),
        )
    )
    snapshot = get_registry().snapshot()
    print("mutation metrics:")
    for name in sorted(snapshot):
        if name.startswith(("datastore_", "retrieval_cache_stale_generation")):
            print(f"  {name} = {snapshot[name]:g}")
    if args.out:
        mutation.write_artifact(report, args.out)
        print(f"mutation artifact -> {args.out}")
    if args.smoke:
        problems = mutation.smoke_check(report)
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print(
            "smoke checks passed: no deleted leaks, inserts retrievable, "
            "live == compacted at full probe"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .experiments import serve_pipeline
    from .metrics.reporting import format_table
    from .obs.metrics import get_registry

    n_long = max(args.requests * 3 // 4, 1)
    n_short = max(args.requests - n_long, 1)
    if args.smoke:
        n_long, n_short = min(n_long, 6), min(n_short, 2)
    report = serve_pipeline.run(
        docs=args.docs,
        n_long=n_long,
        n_short=n_short,
        n_strides=args.strides,
        stride_tokens=args.stride_tokens,
        k=args.k,
        speculation_threshold=args.speculation_threshold,
        deadline_s=args.deadline_s,
        seed=args.seed,
    )
    print(
        format_table(
            serve_pipeline.TABLE_HEADERS,
            serve_pipeline.table_rows(report),
            title=(
                f"live serving pipeline: {report.n_requests} requests x "
                f"{report.n_strides} strides over {report.chunks} chunks, "
                f"k={report.k}, spec threshold {report.speculation_threshold}"
            ),
        )
    )
    snapshot = get_registry().snapshot()
    print("pipeline metrics:")
    for name in sorted(snapshot):
        if name.startswith("pipeline_"):
            print(f"  {name} = {snapshot[name]:g}")
    if args.out:
        serve_pipeline.write_artifact(report, args.out)
        print(f"serving artifact -> {args.out}")
    if args.smoke:
        problems = serve_pipeline.smoke_check(report)
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print(
            "smoke checks passed: overlapped E2E beats sequential at equal "
            "NDCG; TTFT discipline-independent; speculation exercised"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments import tracing

    run = tracing.run(args.experiment, seed=args.seed)
    out = args.out or f"trace-{args.experiment}.json"
    path = run.write(out)
    print(
        f"traced {args.experiment}: {len(run.roots)} root span(s), "
        f"{run.n_spans} total, invariants OK"
    )
    print(f"chrome trace -> {path} (open in chrome://tracing or ui.perfetto.dev)")
    print()
    print(run.breakdown())
    if args.metrics and run.metrics:
        print()
        print("metrics:")
        for name, value in sorted(run.metrics.items()):
            print(f"  {name} = {value:g}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.runner import run_all

    run_all(fast=args.fast)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hermes-repro",
        description="Hermes (ISCA'25) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "build", help="build a clustered datastore through the fingerprinted cache"
    )
    p.add_argument("--docs", type=int, default=50_000)
    p.add_argument("--topics", type=int, default=10)
    p.add_argument("--dim", type=int, default=64)
    p.add_argument("--clusters", type=int, default=10)
    p.add_argument("--quantization", default="sq8")
    p.add_argument(
        "--algorithm",
        choices=("auto", "lloyd", "minibatch", "reference"),
        default="auto",
        help="K-means variant for the split and shard coarse quantizers",
    )
    p.add_argument("--workers", type=int, default=None, help="build thread count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-dir", default=None, help="build-cache location override")
    p.add_argument("--no-cache", action="store_true", help="always rebuild")
    p.add_argument("--out", default=None, help="also export the datastore here")
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("build-index", help="build and save a clustered datastore")
    p.add_argument("--docs", type=int, default=20_000)
    p.add_argument("--topics", type=int, default=10)
    p.add_argument("--dim", type=int, default=64)
    p.add_argument("--clusters", type=int, default=10)
    p.add_argument("--quantization", default="sq8")
    p.add_argument("--strategy", choices=("clustered", "split"), default="clustered")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_build_index)

    p = sub.add_parser("accuracy", help="evaluate a saved datastore's NDCG")
    p.add_argument("--store", required=True)
    p.add_argument("--topics", type=int, default=10)
    p.add_argument("--queries", type=int, default=64)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--clusters-searched", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_accuracy)

    p = sub.add_parser("profile", help="profile retrieval latency/energy")
    p.add_argument("--tokens", type=float, default=10e9)
    p.add_argument("--batch", type=int, default=128)
    p.add_argument("--cpu", default="xeon_gold_6448y")
    p.add_argument("--nprobes", type=int, nargs="+", default=[8, 32, 128])
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("multinode", help="run the multi-node aggregation model")
    p.add_argument("--tokens", type=float, default=1e12)
    p.add_argument("--clusters", type=int, default=10)
    p.add_argument("--clusters-searched", type=int, default=3)
    p.add_argument("--batch", type=int, default=128)
    p.add_argument("--cpu", default="xeon_gold_6448y")
    p.add_argument("--dvfs", choices=("none", "baseline", "enhanced"), default="none")
    p.add_argument("--inference-window", type=float, default=1.7)
    p.set_defaults(func=_cmd_multinode)

    p = sub.add_parser("serve-sim", help="event-driven serving simulation")
    p.add_argument("--tokens", type=float, default=10e9)
    p.add_argument("--clusters", type=int, default=10)
    p.add_argument("--clusters-searched", type=int, default=3)
    p.add_argument("--batch", type=int, default=128)
    p.add_argument("--stride", type=int, default=16)
    p.add_argument("--output-tokens", type=int, default=256)
    p.add_argument("--batches", type=int, default=8)
    p.set_defaults(func=_cmd_serve_sim)

    p = sub.add_parser(
        "cache", help="serve-time retrieval-cache skew sweep (hit rate vs latency)"
    )
    p.add_argument(
        "--alphas", type=float, nargs="+", default=[0.0, 0.5, 1.0, 1.5],
        help="Zipf exponents of the request stream to sweep",
    )
    p.add_argument("--unique", type=int, default=128, help="unique query pool size")
    p.add_argument("--requests", type=int, default=1024)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--capacity", type=int, default=512, help="cache entries (LRU)")
    p.add_argument(
        "--jitter", type=float, default=0.0,
        help="perturbation scale for near-duplicate requests (semantic tier)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write the JSON artifact here")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "faults", help="fault sweep: graceful degradation vs killed nodes"
    )
    p.add_argument(
        "--killed", type=int, nargs="+", default=[0, 1, 2, 3, 5],
        help="killed-node counts to sweep (fleet has 10 nodes)",
    )
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--queries", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write the JSON artifact here")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "overload",
        help="open-loop overload sweep: goodput/p99/shedding + replica failover",
    )
    p.add_argument(
        "--loads", type=float, nargs="+", default=[0.5, 1.0, 2.0],
        help="offered load as multiples of calibrated capacity",
    )
    p.add_argument("--requests", type=int, default=600, help="requests per load point")
    p.add_argument("--deadline-ms", type=float, default=50.0)
    p.add_argument(
        "--max-queue", type=int, default=None,
        help="admission queue bound (default: derived from calibrated capacity)",
    )
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write the JSON artifact here")
    p.add_argument(
        "--smoke", action="store_true",
        help="reduced sizes + assert the overload/failover acceptance properties",
    )
    p.set_defaults(func=_cmd_overload)

    p = sub.add_parser(
        "mutate",
        help="live-mutation churn sweep: delta/tombstone serving vs compacted",
    )
    p.add_argument(
        "--churns", type=float, nargs="+", default=[0.0, 0.01, 0.05],
        help="per-batch insert+delete rates as fractions of the batch size",
    )
    p.add_argument("--docs", type=int, default=3000)
    p.add_argument("--queries", type=int, default=128)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write the JSON artifact here")
    p.add_argument(
        "--smoke", action="store_true",
        help="assert the mutation integrity/equivalence properties",
    )
    p.set_defaults(func=_cmd_mutate)

    p = sub.add_parser(
        "serve",
        help="live end-to-end serving: sequential vs pipelined vs lookahead",
    )
    p.add_argument("--docs", type=int, default=400)
    p.add_argument("--requests", type=int, default=16, help="cohort size")
    p.add_argument("--strides", type=int, default=4)
    p.add_argument("--stride-tokens", type=int, default=16)
    p.add_argument("--k", type=int, default=10)
    p.add_argument(
        "--speculation-threshold", type=float, default=0.95,
        help="cosine floor for accepting a speculative (lookahead) retrieval",
    )
    p.add_argument(
        "--deadline-s", type=float, default=None,
        help="per-request end-to-end wall budget propagated into retrieval",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write the JSON artifact here")
    p.add_argument(
        "--smoke", action="store_true",
        help="reduced cohort + assert the pipelining acceptance properties",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace", help="run a seeded traced experiment and export a Chrome trace"
    )
    p.add_argument(
        "experiment",
        choices=("retrieval", "generation", "serve-sim", "e2e"),
        help="which pipeline slice to trace",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", default=None, help="artifact path (default trace-<experiment>.json)"
    )
    p.add_argument(
        "--metrics", action="store_true", help="also print the metrics snapshot"
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("reproduce", help="regenerate every paper table/figure")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
