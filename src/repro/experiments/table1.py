"""Table 1: IVF quantization schemes — recall vs. encoded vector size.

The paper sweeps Flat/SQ8/SQ4/PQ256/OPQ256/PQ384/OPQ384 payload codecs inside
an IVF index on 768-dim BGE embeddings and picks SQ8 as the scheme that
shrinks vectors 4x with almost no recall loss (0.958 → 0.942). We rebuild the
sweep on a 768-dim synthetic corpus: one IVF index per codec (identical
clustering via a shared train seed), recall@k against exhaustive Flat search.

Expected shape: Flat ≳ SQ8 ≫ SQ4 ≈ PQ384 ≈ OPQ384 > OPQ256 ≳ PQ256, with
code sizes 3072 / 768 / 384 / 384 / 384 / 256 / 256 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ann.flat import FlatIndex
from ..ann.ivf import IVFIndex
from ..ann.quantization import make_quantizer
from ..datastore.embeddings import make_corpus
from ..datastore.queries import trivia_queries
from ..metrics.recall import recall_at_k
from ..metrics.reporting import format_table

#: The Table 1 rows, in paper order.
SCHEMES = ("flat", "sq8", "sq4", "pq256", "opq256", "pq384", "opq384")

#: Paper values for side-by-side reporting.
PAPER_RECALL = {
    "flat": 0.958,
    "sq8": 0.942,
    "sq4": 0.748,
    "pq256": 0.585,
    "opq256": 0.596,
    "pq384": 0.748,
    "opq384": 0.742,
}
PAPER_VECTOR_BYTES = {
    "flat": 3072,
    "sq8": 768,
    "sq4": 384,
    "pq256": 256,
    "opq256": 256,
    "pq384": 384,
    "opq384": 384,
}


@dataclass(frozen=True)
class QuantizationRow:
    """One measured Table 1 row."""

    scheme: str
    recall: float
    vector_bytes: int
    paper_recall: float
    paper_vector_bytes: int


def run(
    *,
    n_docs: int = 3000,
    n_queries: int = 48,
    dim: int = 768,
    k: int = 5,
    nlist: int = 20,
    nprobe: int = 16,
    schemes: tuple[str, ...] = SCHEMES,
) -> list[QuantizationRow]:
    """Measure recall@k and code size for each quantization scheme.

    ``nlist``/``nprobe`` are fixed across schemes so the recall differences
    isolate the quantization loss; their defaults put the Flat row near the
    paper's 0.958 (some loss from the shared IVF routing, as in the paper).
    """
    corpus = make_corpus(n_docs, n_topics=10, dim=dim, spread=0.35, seed=1)
    queries = trivia_queries(corpus.topic_model, n_queries)

    exact = FlatIndex(dim, "ip")
    exact.add(corpus.embeddings)
    _, truth = exact.search(queries.embeddings, k)

    rows = []
    for scheme in schemes:
        quantizer = make_quantizer(scheme, dim, train_seed=0)
        index = IVFIndex(
            dim, "ip", nlist=nlist, nprobe=nprobe, quantizer=quantizer, train_seed=0
        )
        index.train(corpus.embeddings)
        index.add(corpus.embeddings)
        _, retrieved = index.search(queries.embeddings, k)
        rows.append(
            QuantizationRow(
                scheme=scheme,
                recall=recall_at_k(retrieved, truth),
                vector_bytes=quantizer.code_size(),
                paper_recall=PAPER_RECALL[scheme],
                paper_vector_bytes=PAPER_VECTOR_BYTES[scheme],
            )
        )
    return rows


def render(rows: list[QuantizationRow]) -> str:
    """Format the measured-vs-paper Table 1."""
    return format_table(
        ["Scheme", "Recall", "Vector bytes", "Paper recall", "Paper bytes"],
        [
            (r.scheme.upper(), r.recall, r.vector_bytes, r.paper_recall, r.paper_vector_bytes)
            for r in rows
        ],
        title="Table 1: IVF quantization schemes (measured vs. paper)",
    )


def sq8_is_knee(rows: list[QuantizationRow]) -> bool:
    """The paper's selection criterion: SQ8 ~matches Flat recall at 1/4 size.

    True when SQ8 is within 3 recall points of Flat while every cheaper codec
    loses visibly more recall than SQ8 does — i.e. "quantization methods
    other than SQ8 offer minimal benefits relative to their impact on recall"
    (§2.1).
    """
    by = {r.scheme: r for r in rows}
    flat, sq8 = by["flat"], by["sq8"]
    cheaper = [r for r in rows if r.vector_bytes < sq8.vector_bytes]
    return (flat.recall - sq8.recall) <= 0.03 and all(
        r.recall < sq8.recall - 0.02 for r in cheaper
    )
