"""Figure 19: optimal cluster size across inference serving scenarios.

Different applications have different sequence shapes (coding tasks: short
outputs; conversation: long outputs — the paper cites production traces), and
the inference window they create determines how large a Hermes cluster can be
while retrieval still hides under inference. This experiment reproduces both
panels:

- **left**: inference latency across (batch, input/output shape) grid;
- **right**: the largest hidden cluster size for each input length at a fixed
  output shape — the paper's example: with 32 output tokens, growing input
  from 32 to 2048 tokens lets clusters grow from ~34B to ~114B tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.inference import InferenceModel
from .common import monolithic_retrieval_cost

#: (input_tokens, output_tokens) scenarios of the left panel.
SEQUENCE_SCENARIOS = ((32, 4), (256, 32))
BATCHES = (8, 16, 32, 64, 128, 256)

#: Input lengths of the right panel (fixed output 32, stride 16).
INPUT_LENGTHS = (32, 256, 2048)


@dataclass(frozen=True)
class InferenceLatencyCell:
    """One (batch, sequence shape) inference latency."""

    batch: int
    input_tokens: int
    output_tokens: int
    latency_s: float


def inference_latency_grid(
    *,
    batches: tuple[int, ...] = BATCHES,
    scenarios: tuple[tuple[int, int], ...] = SEQUENCE_SCENARIOS,
) -> list[InferenceLatencyCell]:
    """Left panel: full-generation inference latency across the grid."""
    inference = InferenceModel()
    cells = []
    for batch in batches:
        for input_tokens, output_tokens in scenarios:
            latency = inference.generation_latency(batch, input_tokens, output_tokens)
            cells.append(
                InferenceLatencyCell(
                    batch=batch,
                    input_tokens=input_tokens,
                    output_tokens=output_tokens,
                    latency_s=latency,
                )
            )
    return cells


@dataclass(frozen=True)
class OptimalClusterCell:
    """One input-length's inference window and hidden cluster size."""

    input_tokens: int
    inference_window_s: float
    optimal_cluster_tokens: float


def optimal_cluster_sizes(
    *,
    input_lengths: tuple[int, ...] = INPUT_LENGTHS,
    batch: int = 128,
    stride: int = 16,
) -> list[OptimalClusterCell]:
    """Right panel: largest cluster hidden under each scenario's window."""
    inference = InferenceModel()
    unit = monolithic_retrieval_cost(1e9, batch).latency_s  # s per 1B tokens
    cells = []
    for input_tokens in input_lengths:
        window = (
            inference.prefill(batch, input_tokens).latency_s
            + inference.decode(batch, stride).latency_s
        )
        cells.append(
            OptimalClusterCell(
                input_tokens=input_tokens,
                inference_window_s=window,
                optimal_cluster_tokens=1e9 * window / unit,
            )
        )
    return cells


def run() -> dict[str, list]:
    """Both panels of Figure 19."""
    return {
        "inference_grid": inference_latency_grid(),
        "optimal_clusters": optimal_cluster_sizes(),
    }
