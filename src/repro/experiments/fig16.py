"""Figure 16: time-to-first-token across datastore sizes.

TTFT is dominated by the *first* retrieval, which neither pipelining nor
prefix caching can hide — so the paper's Baseline and Hermes/PipeRAG/RAGCache
bars differ only through Hermes's distributed hierarchical retrieval. The
headline: a 9.1x TTFT improvement at the trillion-token scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.generation import GenerationConfig
from .common import StrategyOutcome, compare_strategies

#: Datastore sizes on the x axis.
SIZES = (1e9, 10e9, 1e12)


@dataclass(frozen=True)
class TTFTPoint:
    """TTFT of each strategy at one datastore size."""

    datastore_tokens: float
    outcomes: dict[str, StrategyOutcome]

    def normalized_ttft(self) -> dict[str, float]:
        base = self.outcomes["baseline"].ttft_s
        return {name: o.ttft_s / base for name, o in self.outcomes.items()}

    def hermes_ttft_speedup(self) -> float:
        return self.outcomes["baseline"].ttft_s / self.outcomes["hermes"].ttft_s

    def pipelining_helps_ttft(self) -> bool:
        """The paper's negative result: PipeRAG/RAGCache don't cut TTFT."""
        base = self.outcomes["baseline"].ttft_s
        return (
            self.outcomes["piperag"].ttft_s < 0.99 * base
            or self.outcomes["ragcache"].ttft_s < 0.99 * base
        )


def run(
    sizes: tuple[float, ...] = SIZES, *, config: GenerationConfig | None = None
) -> list[TTFTPoint]:
    """The Figure 16 sweep."""
    cfg = config or GenerationConfig(batch=128)
    return [
        TTFTPoint(datastore_tokens=s, outcomes=compare_strategies(s, cfg))
        for s in sizes
    ]
