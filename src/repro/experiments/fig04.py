"""Figure 4: HNSW vs IVF — latency, throughput, and memory.

The paper compares the two index families on a 10B-token (100M-doc) index:
HNSW is >2.4x faster (0.40 s vs 0.97 s per batch-128; 321 vs 131 QPS) but
needs 2.3x the memory (166 GB vs 71 GB) — which is why Hermes builds on IVF.

Two reproductions are reported:

- **at-scale**: the paper's measured 10B-token operating points from the
  calibrated lookup table (``FIG4_MEASUREMENTS``), including the derived
  ratios;
- **in-vivo**: both index types built for real on a small corpus at matched
  recall, measuring actual wall-clock search time and
  ``memory_bytes()`` — demonstrating the same latency-vs-memory trade-off
  emerges from the real data structures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


from ..ann.flat import FlatIndex
from ..ann.hnsw import HNSWIndex
from ..ann.ivf import IVFIndex
from ..ann.quantization import make_quantizer
from ..datastore.embeddings import make_corpus
from ..datastore.queries import trivia_queries
from ..metrics.recall import recall_at_k
from ..perfmodel.measurements import FIG4_MEASUREMENTS, FIG4_MEMORY_GB


@dataclass(frozen=True)
class ScaleComparison:
    """The 10B-token comparison from calibrated measurements."""

    batch: int
    ivf_latency_s: float
    hnsw_latency_s: float
    ivf_qps: float
    hnsw_qps: float
    ivf_memory_gb: float
    hnsw_memory_gb: float

    @property
    def latency_advantage(self) -> float:
        """HNSW speedup over IVF (the paper reports >2.4x at batch 128)."""
        return self.ivf_latency_s / self.hnsw_latency_s

    @property
    def memory_overhead(self) -> float:
        """HNSW memory cost over IVF (the paper reports 2.3x)."""
        return self.hnsw_memory_gb / self.ivf_memory_gb


def at_scale(batch: int = 128) -> ScaleComparison:
    """The paper's 10B-token numbers from the measurement table."""
    ivf_lat, ivf_qps = FIG4_MEASUREMENTS[("ivf", batch)]
    hnsw_lat, hnsw_qps = FIG4_MEASUREMENTS[("hnsw", batch)]
    return ScaleComparison(
        batch=batch,
        ivf_latency_s=ivf_lat,
        hnsw_latency_s=hnsw_lat,
        ivf_qps=ivf_qps,
        hnsw_qps=hnsw_qps,
        ivf_memory_gb=FIG4_MEMORY_GB["ivf"],
        hnsw_memory_gb=FIG4_MEMORY_GB["hnsw"],
    )


@dataclass(frozen=True)
class InVivoComparison:
    """Real small-index measurement of the same trade-off."""

    ivf_recall: float
    hnsw_recall: float
    ivf_latency_s: float
    hnsw_latency_s: float
    ivf_memory_bytes: int
    hnsw_memory_bytes: int

    @property
    def memory_overhead(self) -> float:
        return self.hnsw_memory_bytes / self.ivf_memory_bytes


def in_vivo(
    *, n_docs: int = 2000, n_queries: int = 32, dim: int = 48, k: int = 5
) -> InVivoComparison:
    """Build both index types for real and measure recall/latency/memory.

    Configurations are chosen so both reach comparable recall, isolating the
    latency/memory trade-off the figure is about.
    """
    corpus = make_corpus(n_docs, n_topics=8, dim=dim, spread=0.4, seed=2)
    queries = trivia_queries(corpus.topic_model, n_queries)
    exact = FlatIndex(dim, "ip")
    exact.add(corpus.embeddings)
    _, truth = exact.search(queries.embeddings, k)

    ivf = IVFIndex(dim, "ip", nprobe=8, quantizer=make_quantizer("sq8", dim))
    ivf.train(corpus.embeddings)
    ivf.add(corpus.embeddings)

    hnsw = HNSWIndex(dim, "ip", m=12, ef_construction=48, ef_search=48)
    hnsw.add(corpus.embeddings)

    start = time.perf_counter()
    _, ivf_ids = ivf.search(queries.embeddings, k)
    ivf_latency = time.perf_counter() - start

    start = time.perf_counter()
    _, hnsw_ids = hnsw.search(queries.embeddings, k)
    hnsw_latency = time.perf_counter() - start

    return InVivoComparison(
        ivf_recall=recall_at_k(ivf_ids, truth),
        hnsw_recall=recall_at_k(hnsw_ids, truth),
        ivf_latency_s=ivf_latency,
        hnsw_latency_s=hnsw_latency,
        ivf_memory_bytes=ivf.memory_bytes(),
        hnsw_memory_bytes=hnsw.memory_bytes(),
    )


def run(batches: tuple[int, ...] = (32, 128)) -> dict[int, ScaleComparison]:
    """The figure's at-scale sweep over batch sizes."""
    return {b: at_scale(b) for b in batches}
