"""Serve-time cache skew sweep: hit rate and latency vs request popularity.

Hermes's serve traffic is heavily skewed (Fig. 13): NQ-like workloads
concentrate on a few hot topics, so the same queries recur. This experiment
quantifies what the serve-time retrieval cache
(:mod:`repro.serving.cache`) buys as a function of that skew: a Zipf-``α``
request stream over a fixed pool of unique queries is replayed twice per
``α`` — once through the cache-fronted :class:`~repro.serving.frontend.
ServingFrontend` and once straight through the searcher — and the sweep
reports hit rate, latency (mean/p50/p99 per batch), modelled TTFT, and
NDCG@k against exact ground truth for both paths.

At ``α = 0`` every pool query is equally likely (worst case for a cache
smaller than the pool); as ``α`` grows the head of the pool dominates and
the hit rate climbs — the shape ``hermes-repro cache`` prints.

Optional ``jitter`` perturbs a fraction of requests so they are *near*
duplicates instead of exact ones, exercising the semantic tier; its NDCG
column then measures the accuracy cost of threshold-based result reuse.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.hierarchical import HermesSearcher
from ..datastore.embeddings import zipf_weights
from ..datastore.queries import trivia_queries
from ..llm.inference import InferenceModel
from ..metrics.ndcg import ndcg
from ..serving.cache import CacheConfig, RetrievalCache
from ..serving.frontend import ServingFrontend
from .common import (
    accuracy_corpus,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
)

#: Prefill context fed to the TTFT model (the paper's serving anchor).
TTFT_INPUT_TOKENS = 512


@dataclass(frozen=True)
class SkewPoint:
    """One Zipf-``α`` operating point of the sweep."""

    alpha: float
    n_requests: int
    hit_rate: float
    exact_hits: int
    semantic_hits: int
    routing_hits: int
    misses: int
    evictions: int
    cached_mean_ms: float
    cached_p50_ms: float
    cached_p99_ms: float
    uncached_mean_ms: float
    uncached_p50_ms: float
    uncached_p99_ms: float
    speedup: float
    cached_ndcg: float
    uncached_ndcg: float
    cached_ttft_ms: float
    uncached_ttft_ms: float


def request_stream(
    n_unique: int, n_requests: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf-``alpha`` draws of pool indices (``alpha=0`` is uniform)."""
    if n_unique <= 0 or n_requests <= 0:
        raise ValueError("n_unique and n_requests must be positive")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    weights = zipf_weights(n_unique, exponent=alpha)
    return rng.choice(n_unique, size=n_requests, p=weights)


def _percentiles(latencies_s: list) -> tuple:
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e3
    return float(arr.mean()), float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def run(
    alphas: tuple = (0.0, 0.5, 1.0, 1.5),
    *,
    n_unique: int = 128,
    n_requests: int = 1024,
    batch: int = 32,
    k: int = 10,
    capacity: int = 512,
    semantic_threshold: float | None = 0.995,
    routing_threshold: float | None = 0.98,
    jitter: float = 0.0,
    seed: int = 0,
) -> list:
    """Sweep the request skew; returns one :class:`SkewPoint` per ``α``.

    Each point uses a *fresh* cache (no cross-``α`` warm state) but the same
    shared accuracy corpus, searcher, and query pool, so only the request
    distribution varies along the sweep.
    """
    corpus = accuracy_corpus()
    searcher = HermesSearcher(clustered_accuracy_datastore())
    pool = trivia_queries(corpus.topic_model, n_unique, seed=seed + 7).embeddings
    _, pool_truth = monolithic_accuracy_retriever().ground_truth(pool, k)
    inference = InferenceModel()
    prefill_s = inference.prefill(batch, TTFT_INPUT_TOKENS).latency_s

    points = []
    for alpha in alphas:
        rng = np.random.default_rng(seed)
        stream = request_stream(n_unique, n_requests, float(alpha), rng)
        queries = pool[stream].copy()
        if jitter > 0:
            jittered = rng.random(n_requests) < 0.5
            queries[jittered] += rng.normal(
                scale=jitter, size=(int(jittered.sum()), pool.shape[1])
            ).astype(np.float32)
        truth = pool_truth[stream]

        cache = RetrievalCache(
            CacheConfig(
                capacity=capacity,
                semantic_threshold=semantic_threshold,
                routing_threshold=routing_threshold,
            )
        )
        frontend = ServingFrontend(searcher, cache=cache)

        cached_lat, cached_ids = [], []
        uncached_lat, uncached_ids = [], []
        for start in range(0, n_requests, batch):
            qb = queries[start : start + batch]
            t0 = time.perf_counter()
            res = frontend.search(qb, k=k)
            cached_lat.append(time.perf_counter() - t0)
            cached_ids.append(res.ids)
            t0 = time.perf_counter()
            raw = searcher.search(qb, k=k)
            uncached_lat.append(time.perf_counter() - t0)
            uncached_ids.append(raw.ids)

        c_mean, c_p50, c_p99 = _percentiles(cached_lat)
        u_mean, u_p50, u_p99 = _percentiles(uncached_lat)
        stats = cache.stats
        points.append(
            SkewPoint(
                alpha=float(alpha),
                n_requests=n_requests,
                hit_rate=stats.hit_rate,
                exact_hits=stats.exact_hits,
                semantic_hits=stats.semantic_hits,
                routing_hits=stats.routing_hits,
                misses=stats.misses,
                evictions=stats.evictions,
                cached_mean_ms=c_mean,
                cached_p50_ms=c_p50,
                cached_p99_ms=c_p99,
                uncached_mean_ms=u_mean,
                uncached_p50_ms=u_p50,
                uncached_p99_ms=u_p99,
                speedup=u_mean / c_mean if c_mean > 0 else float("inf"),
                cached_ndcg=ndcg(np.concatenate(cached_ids), truth),
                uncached_ndcg=ndcg(np.concatenate(uncached_ids), truth),
                cached_ttft_ms=(c_mean / 1e3 + prefill_s) * 1e3,
                uncached_ttft_ms=(u_mean / 1e3 + prefill_s) * 1e3,
            )
        )
    return points


def table_rows(points: list) -> list:
    """Rows for :func:`repro.metrics.reporting.format_table`."""
    return [
        (
            p.alpha,
            f"{p.hit_rate:.0%}",
            p.cached_mean_ms,
            p.cached_p50_ms,
            p.cached_p99_ms,
            p.uncached_mean_ms,
            f"{p.speedup:.2f}x",
            p.cached_ttft_ms,
            p.cached_ndcg,
            p.uncached_ndcg,
        )
        for p in points
    ]


TABLE_HEADERS = [
    "alpha",
    "hit rate",
    "mean (ms)",
    "p50 (ms)",
    "p99 (ms)",
    "no-cache mean",
    "speedup",
    "TTFT (ms)",
    "NDCG",
    "no-cache NDCG",
]


def write_artifact(points: list, path: "str | Path", *, k: int = 10) -> Path:
    """Persist the sweep as a JSON artifact (one record per ``α``)."""
    path = Path(path)
    payload = {
        "experiment": "serve_cache_skew_sweep",
        "k": k,
        "points": [asdict(p) for p in points],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
