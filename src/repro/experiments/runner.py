"""Run every reproduced table/figure and print its result.

``python -m repro.experiments.runner`` regenerates the whole evaluation; the
per-figure benchmark files under ``benchmarks/`` call the same entry points
with assertions on the paper shapes.
"""

from __future__ import annotations

import sys

from ..core.build_cache import GLOBAL_STATS
from ..metrics.reporting import format_table
from . import (
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig_faults,
    table1,
)


def run_all(*, fast: bool = False, plots: bool = False, out=sys.stdout) -> None:
    """Regenerate every experiment and write text reports to *out*.

    With ``plots=True`` the figure-shaped experiments also render Unicode
    line charts (the artifact's matplotlib step, terminal edition).
    """
    w = out.write

    def chart(figure, **kwargs) -> None:
        if plots:
            from ..viz import line_chart

            w(line_chart(figure.series, title=figure.figure_id, **kwargs) + "\n\n")

    w(table1.render(table1.run(n_docs=1000 if fast else 3000)) + "\n\n")

    fig4 = fig04.at_scale(128)
    w(
        format_table(
            ["Metric", "IVF", "HNSW", "HNSW/IVF"],
            [
                ("Latency (s)", fig4.ivf_latency_s, fig4.hnsw_latency_s, 1 / fig4.latency_advantage),
                ("Throughput (QPS)", fig4.ivf_qps, fig4.hnsw_qps, fig4.hnsw_qps / fig4.ivf_qps),
                ("Memory (GB)", fig4.ivf_memory_gb, fig4.hnsw_memory_gb, fig4.memory_overhead),
            ],
            title="Figure 4: HNSW vs IVF (10B tokens, batch 128)",
        )
        + "\n\n"
    )

    for fig in fig05.run().values():
        w(fig.render() + "\n\n")
        chart(fig)

    w(fig06.render(fig06.run()) + "\n\n")
    w(fig07.render(fig07.run()) + "\n\n")
    fig8 = fig08.run()
    w(fig8.render() + "\n\n")
    chart(fig8, logx=True)
    w(fig10.to_figure(fig10.run()).render() + "\n")
    w(f"max hidden cluster: {fig10.max_hidden_cluster_tokens():.3g} tokens\n\n")
    fig11_result = fig11.to_figure(fig11.run())
    w(fig11_result.render() + "\n\n")
    chart(fig11_result)

    dse = fig12.run()
    design_point = [p for p in dse["small"] + dse["large"] if p.clusters_searched == 3]
    best = fig12.optimal_config(design_point)
    w(
        f"Figure 12 DSE optimum: sample nProbe {best.sample_nprobe}, "
        f"deep nProbe {best.deep_nprobe} (NDCG {best.ndcg:.3f}, {best.latency_s:.3f}s)\n\n"
    )

    imb = fig13.run()
    w(
        f"Figure 13: size imbalance {imb.size_imbalance:.2f}x, "
        f"access imbalance {imb.access_imbalance:.2f}x\n\n"
    )

    panels = fig14.run()
    for name, points in panels.items():
        w(fig14.render(points, metric="latency") + "\n")
        w(fig14.render(points, metric="energy") + "\n\n")

    for point in fig16.run():
        w(
            f"Figure 16 @{point.datastore_tokens:.0e} tokens: TTFT speedup "
            f"{point.hermes_ttft_speedup():.2f}x\n"
        )
    w("\n")

    for group, points in fig17.run().items():
        for p in points:
            w(
                f"Figure 17 [{group}] {p.label} ({p.n_gpus} GPU): "
                f"{p.hermes_speedup():.2f}x latency, "
                f"{p.hermes_energy_saving():.2f}x energy\n"
            )
    w("\n")

    fig18_result = fig18.to_figure(fig18.run())
    w(fig18_result.render() + "\n\n")
    chart(fig18_result)

    for cell in fig19.optimal_cluster_sizes():
        w(
            f"Figure 19: input {cell.input_tokens} -> optimal cluster "
            f"{cell.optimal_cluster_tokens:.3g} tokens\n"
        )
    w("\n")

    w(f"Figure 20 best platform at 3 clusters: {fig20.best_platform(fig20.run())}\n\n")

    dvfs = fig21.run()
    avg = fig21.average_savings(dvfs)
    w(
        f"Figure 21: mean DVFS savings baseline {avg['baseline']:.1%}, "
        f"enhanced {avg['enhanced']:.1%} (paper: 12.24% / 20.44%)\n\n"
    )

    fault_points = fig_faults.run((0, 1, 3) if fast else fig_faults.KILL_SWEEP)
    fault_fig = fig_faults.to_figure(fault_points)
    w(fault_fig.render() + "\n")
    chart(fault_fig)

    if GLOBAL_STATS.lookups:
        w(f"\n{GLOBAL_STATS.summary()}\n")


if __name__ == "__main__":
    run_all(fast="--fast" in sys.argv, plots="--plots" in sys.argv)
