"""Figure 11: retrieval quality vs clusters deep-searched (the key ablation).

NDCG against exhaustive ground truth, sweeping how many clusters get the
in-depth search, for four strategies:

- **Monolithic**: the single big index (the iso-accuracy target line);
- **Split**: naive random sharding + sampling router — needs nearly all 10
  shards to recover accuracy because shards are topically incoherent;
- **Centroid-Based**: semantic clusters routed by centroid similarity only;
- **Hermes**: semantic clusters routed by document sampling — reaches
  iso-accuracy with ~3 clusters and dominates centroid routing.

This is a *real-search* experiment over the shared accuracy corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..core.hierarchical import HierarchicalSearcher
from ..core.router import CentroidRouter, SampledRouter
from ..metrics.ndcg import ndcg
from ..metrics.reporting import FigureResult
from .common import (
    K_DOCS,
    accuracy_queries,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
    split_accuracy_datastore,
)

#: Deep-search fan-outs swept on the x axis.
CLUSTER_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


@dataclass
class AccuracySweep:
    """NDCG-vs-clusters-searched curves for all strategies."""

    clusters: list[int]
    monolithic: float
    hermes: list[float] = field(default_factory=list)
    centroid: list[float] = field(default_factory=list)
    split: list[float] = field(default_factory=list)

    def hermes_iso_accuracy_clusters(self, tolerance: float = 0.02) -> int:
        """Smallest fan-out where Hermes is within *tolerance* of monolithic."""
        for m, score in zip(self.clusters, self.hermes):
            if score >= self.monolithic - tolerance:
                return m
        return self.clusters[-1]


def run(clusters: tuple[int, ...] = CLUSTER_SWEEP, *, k: int = K_DOCS) -> AccuracySweep:
    """Run the full Figure 11 sweep with real searches."""
    queries = accuracy_queries().embeddings
    mono = monolithic_accuracy_retriever()
    _, truth = mono.ground_truth(queries, k)
    _, mono_ids = mono.search(queries, k)

    clustered = clustered_accuracy_datastore()
    split = split_accuracy_datastore()
    hermes = HierarchicalSearcher(clustered, router=SampledRouter())
    centroid = HierarchicalSearcher(clustered, router=CentroidRouter())
    split_search = HierarchicalSearcher(split, router=SampledRouter())

    sweep = AccuracySweep(clusters=list(clusters), monolithic=ndcg(mono_ids, truth))
    for m in clusters:
        sweep.hermes.append(
            ndcg(hermes.search(queries, k=k, clusters_to_search=m).ids, truth)
        )
        sweep.centroid.append(
            ndcg(centroid.search(queries, k=k, clusters_to_search=m).ids, truth)
        )
        sweep.split.append(
            ndcg(split_search.search(queries, k=k, clusters_to_search=m).ids, truth)
        )
    return sweep


def to_figure(sweep: AccuracySweep) -> FigureResult:
    fig = FigureResult(
        figure_id="fig11",
        description="NDCG vs clusters deep-searched",
    )
    xs = [float(m) for m in sweep.clusters]
    fig.add("Monolithic", xs, [sweep.monolithic] * len(xs))
    fig.add("Split", xs, sweep.split)
    fig.add("Centroid-Based", xs, sweep.centroid)
    fig.add("Hermes", xs, sweep.hermes)
    fig.notes.append(
        f"Hermes reaches iso-accuracy at {sweep.hermes_iso_accuracy_clusters()} clusters"
    )
    return fig
