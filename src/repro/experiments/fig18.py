"""Figure 18: retrieval throughput and energy vs clusters deep-searched.

Hermes's advantage over the naive distributed scheme measured at the
retrieval tier alone: batch 128, NQ-like access skew, ten clusters. The
paper's anchors — searching 3 of 10 clusters delivers 1.81x the throughput
and 1.77x the energy efficiency of searching all 10 (whose throughput is
~290 QPS in their measurement).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.reporting import FigureResult
from .common import FleetSetup, build_fleet
from ..perfmodel.aggregate import expected_deep_loads

CLUSTER_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

#: Fig. 18's fleet: the paper's evaluation datastore (10B tokens) over 10
#: nodes.
DEFAULT_TOTAL_TOKENS = 10e9


@dataclass(frozen=True)
class ClusterSweepPoint:
    """Fleet throughput/energy at one deep-search fan-out."""

    clusters_searched: int
    throughput_qps: float
    energy_per_batch_j: float


def run(
    *,
    batch: int = 128,
    total_tokens: float = DEFAULT_TOTAL_TOKENS,
    clusters: tuple[int, ...] = CLUSTER_SWEEP,
    fleet: FleetSetup | None = None,
) -> list[ClusterSweepPoint]:
    """Sweep the number of clusters receiving the deep search."""
    fleet = fleet or build_fleet(total_tokens)
    points = []
    for m in clusters:
        loads = expected_deep_loads(batch, fleet.access_frequency, m)
        result = fleet.model.hermes(batch, loads)
        points.append(
            ClusterSweepPoint(
                clusters_searched=m,
                throughput_qps=fleet.model.throughput_qps(batch, result),
                energy_per_batch_j=result.energy_j,
            )
        )
    return points


def hermes_vs_naive(points: list[ClusterSweepPoint], *, at: int = 3) -> dict[str, float]:
    """The paper's headline ratios: fan-out *at* vs searching all clusters."""
    by = {p.clusters_searched: p for p in points}
    hermes = by[at]
    naive = by[max(by)]
    return {
        "throughput_gain": hermes.throughput_qps / naive.throughput_qps,
        "energy_saving": naive.energy_per_batch_j / hermes.energy_per_batch_j,
    }


def to_figure(points: list[ClusterSweepPoint]) -> FigureResult:
    fig = FigureResult(
        figure_id="fig18",
        description="Retrieval throughput and energy vs clusters searched",
    )
    xs = [float(p.clusters_searched) for p in points]
    fig.add("Throughput (QPS)", xs, [p.throughput_qps for p in points])
    fig.add("Energy (J/batch)", xs, [p.energy_per_batch_j for p in points])
    ratios = hermes_vs_naive(points)
    fig.notes.append(
        f"3-of-10 clusters: {ratios['throughput_gain']:.2f}x throughput, "
        f"{ratios['energy_saving']:.2f}x energy vs all-10 (paper: 1.81x / 1.77x)"
    )
    return fig
