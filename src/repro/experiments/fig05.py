"""Figure 5: retrieval stride vs. perplexity and retrieval latency.

Left panel: smaller strides (more frequent retrieval) lower perplexity —
RETRO 578M at stride 4 matches GPT-2 1.5B, a model with ~2.6x the parameters.
Right panel: total retrieval time for a generation grows sharply as stride
shrinks (ceil(output/stride) retrievals), with 10B and 100B datastore curves.

The paper's headline cost example: for a 100B datastore, retrieving every 4
tokens instead of every 64 raises end-to-end latency ~12.12x (32.0 s →
388.5 s).
"""

from __future__ import annotations

import math

from ..llm.generation import GenerationConfig, constant_retrieval, simulate_generation
from ..llm.inference import InferenceModel
from ..llm.perplexity import PERPLEXITY_CURVES
from ..metrics.reporting import FigureResult
from .common import monolithic_retrieval_cost

#: Strides swept in the figure.
STRIDES = (2, 4, 8, 16, 32, 64)


def perplexity_panel(strides: tuple[int, ...] = STRIDES) -> FigureResult:
    """Perplexity-vs-stride curves for the three models."""
    fig = FigureResult(
        figure_id="fig5-left",
        description="Perplexity vs retrieval stride (model law fit to Fig. 5)",
    )
    for curve in PERPLEXITY_CURVES.values():
        fig.add(curve.name, strides, [curve.perplexity(s) for s in strides])
    # The paper's claim: RETRO 578M at its optimal stride (4) matches GPT-2
    # 1.5B despite ~2.6x fewer parameters.
    retro4 = PERPLEXITY_CURVES["retro_578m"].perplexity(4)
    gpt15 = PERPLEXITY_CURVES["gpt2_1_5b"].perplexity(16)
    fig.notes.append(
        f"RETRO-578M@stride4 = {retro4:.1f} vs GPT-2-1.5B@stride16 = {gpt15:.1f}"
    )
    return fig


def retrieval_latency_panel(
    strides: tuple[int, ...] = STRIDES,
    *,
    output_tokens: int = 256,
    batch: int = 32,
) -> FigureResult:
    """Total retrieval seconds per generation vs stride, for 10B and 100B."""
    fig = FigureResult(
        figure_id="fig5-right",
        description="Total retrieval latency per generation vs stride",
    )
    for tokens, label in ((10e9, "Retrieval Latency 10B"), (100e9, "Retrieval Latency 100B")):
        per_stride = monolithic_retrieval_cost(tokens, batch).latency_s
        fig.add(
            label,
            strides,
            [per_stride * math.ceil(output_tokens / s) for s in strides],
        )
    return fig


def e2e_stride_cost_ratio(
    *, tokens: float = 100e9, fast_stride: int = 4, slow_stride: int = 64
) -> float:
    """End-to-end latency ratio between two strides (paper: 12.12x @100B)."""
    inference = InferenceModel()
    cost = monolithic_retrieval_cost(tokens, 32)
    fast = simulate_generation(
        constant_retrieval(cost), inference, GenerationConfig(stride=fast_stride)
    )
    slow = simulate_generation(
        constant_retrieval(cost), inference, GenerationConfig(stride=slow_stride)
    )
    return fast.e2e_s / slow.e2e_s


def run() -> dict[str, FigureResult]:
    """Both panels of Figure 5."""
    return {
        "perplexity": perplexity_panel(),
        "retrieval_latency": retrieval_latency_panel(),
    }
