"""Figure 7: retrieval throughput, energy, and memory scaling.

For an IVF-SQ8 index on the 32-core Xeon Gold, each 10x in datastore tokens
costs ~10x in throughput, ~10x in energy per query, and ~10x in resident
memory (§3 Takeaway 2). The paper's anchors: at 100B tokens a single CPU
reaches only ~5.69 QPS; index memory approaches 10 TB at 1T tokens. The GPU
contrast: an A6000 Ada delivers 132 QPS prefill at 2.2 J/query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.inference import InferenceModel
from ..metrics.reporting import format_table
from ..perfmodel.measurements import RetrievalCostModel, index_memory_bytes

#: Datastore sizes (tokens) on the x axis.
SIZES = (100e6, 1e9, 10e9, 100e9, 1e12)


@dataclass(frozen=True)
class ScalingPoint:
    """One datastore size's retrieval system metrics."""

    datastore_tokens: float
    throughput_qps: float
    energy_per_query_j: float
    memory_gb: float


def measure(datastore_tokens: float, *, batch: int = 32) -> ScalingPoint:
    """Throughput / energy / memory at one size (monolithic IVF-SQ8)."""
    cost = RetrievalCostModel()
    qps = cost.throughput_qps(datastore_tokens, batch)
    energy = cost.batch_energy(datastore_tokens, batch) / batch
    return ScalingPoint(
        datastore_tokens=datastore_tokens,
        throughput_qps=qps,
        energy_per_query_j=energy,
        memory_gb=index_memory_bytes(datastore_tokens) / 1e9,
    )


def run(sizes: tuple[float, ...] = SIZES, *, batch: int = 32) -> list[ScalingPoint]:
    """The full Figure 7 sweep."""
    return [measure(s, batch=batch) for s in sizes]


def gpu_contrast(*, batch: int = 32) -> dict[str, float]:
    """The paper's CPU-vs-GPU efficiency contrast (§3 Takeaway 2)."""
    inference = InferenceModel()
    prefill = inference.prefill(batch, 512)
    decode = inference.decode(batch, 16)
    return {
        "gpu_prefill_qps": batch / prefill.latency_s,
        "gpu_prefill_j_per_query": prefill.energy_j / batch,
        "gpu_decode_stride_qps": batch / decode.latency_s,
        "gpu_decode_j_per_query": decode.energy_j / batch,
    }


def render(points: list[ScalingPoint]) -> str:
    return format_table(
        ["Tokens", "Throughput (QPS)", "Energy/query (J)", "Memory (GB)"],
        [
            (f"{p.datastore_tokens:.0e}", p.throughput_qps, p.energy_per_query_j, p.memory_gb)
            for p in points
        ],
        title="Figure 7: IVF-SQ8 scaling trends (Xeon Gold 6448Y)",
    )
