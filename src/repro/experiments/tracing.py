"""Seeded trace-emitting runs behind ``hermes-repro trace``.

Each experiment here is a tiny, deterministic slice of the pipeline run with
tracing enabled, producing a span forest suitable for the Chrome trace
viewer and the latency-breakdown table — the reproduction's analogue of the
paper's Fig. 7/12 stage decompositions:

- ``retrieval``: build a small clustered datastore (build + cache spans) and
  run one traced hierarchical search batch (route/sample, per-shard deep
  search, merge) on the wall clock;
- ``generation``: the strided RAG generation timeline on a virtual clock,
  pipelined and prefix-cached, with cross-worker overlap visible;
- ``serve-sim``: the discrete-event serving simulator's per-batch span
  trees in simulated time — phase children tile each batch's latency
  exactly;
- ``e2e``: the **live** stride-scheduled serving pipeline
  (:class:`~repro.serving.pipeline.RAGServingPipeline`, lookahead
  discipline) on a small corpus: one ``request`` root per served request,
  with measured encode/retrieval spans on worker ``cpu`` overlapping the
  modelled prefill/decode block on worker ``gpu`` — open the artifact in
  the Chrome viewer to see the speculative retrieval running *under* the
  inference block.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.clustering import cluster_datastore
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..datastore.embeddings import make_corpus, zipf_weights
from ..llm.generation import (
    GenerationConfig,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
)
from ..llm.inference import InferenceModel
from ..metrics.reporting import latency_breakdown
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.trace import Tracer, chrome_trace, set_tracer
from ..obs.validate import validate_trace
from ..perfmodel.aggregate import expected_deep_loads
from ..serving import PipelineSimulator, plan_from_models
from . import serve_pipeline

TRACE_EXPERIMENTS = ("retrieval", "generation", "serve-sim", "e2e")


@dataclass
class TraceRun:
    """Outcome of one trace experiment: validated spans + summaries."""

    experiment: str
    roots: list
    metrics: dict
    #: True when the artifact mixes wall-clock and virtual-clock trees.
    mixed_clocks: bool = False

    @property
    def n_spans(self) -> int:
        return sum(1 for r in self.roots for _ in r.walk())

    def breakdown(self) -> str:
        return latency_breakdown(
            self.roots, title=f"latency breakdown: {self.experiment}"
        )

    def chrome(self) -> dict:
        return chrome_trace(self.roots, align_roots=self.mixed_clocks)

    def write(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.chrome(), indent=2))
        return path


def _traced_retrieval(seed: int, tracer: Tracer) -> list:
    """Build a small datastore and run one traced search batch."""
    corpus = make_corpus(2_000, n_topics=4, dim=32, seed=seed)
    config = HermesConfig(
        n_clusters=4,
        clusters_to_search=2,
        nlist=8,
        build_workers=2,
        kmeans_seeds=(0, 1),
    )
    previous = set_tracer(tracer)
    try:
        datastore = cluster_datastore(corpus.embeddings, config)
        queries, _ = corpus.topic_model.sample_documents(8)
        searcher = HermesSearcher(datastore)
        searcher.search(np.asarray(queries), k=5)
    finally:
        set_tracer(previous)
    return tracer.finished_roots()


def _traced_generation(seed: int, tracer: Tracer) -> list:
    del seed  # the timeline is deterministic given the config
    config = GenerationConfig(
        batch=32, output_tokens=64, stride=16, pipelined=True, prefix_cached=True
    )
    simulate_generation(
        constant_retrieval(RetrievalCost(latency_s=0.05, energy_j=25.0)),
        InferenceModel(),
        config,
        tracer=tracer,
    )
    return tracer.finished_roots()


def _traced_e2e(seed: int, tracer: Tracer) -> list:
    """Serve a small cohort through the live pipeline, traced.

    Lookahead discipline so the artifact shows both outcomes: speculative
    retrieval spans running under the inference block (hits) and the wasted
    window + fresh search of a mis-speculation. Every root is a per-request
    virtual timeline starting at t=0, so no cross-clock alignment is needed.
    """
    serve_pipeline.run(
        ("lookahead",),
        docs=200,
        n_long=3,
        n_short=1,
        n_strides=4,
        seed=seed,
        tracer=tracer,
    )
    return tracer.finished_roots()


def _traced_serve_sim(seed: int, tracer: Tracer) -> list:
    config = GenerationConfig(batch=32, output_tokens=48, stride=16)
    n_clusters = 4
    shard_tokens = [2.5e9] * n_clusters
    loads = expected_deep_loads(
        config.batch, zipf_weights(n_clusters, exponent=0.45), 2
    )
    plan = plan_from_models(config, shard_tokens=shard_tokens, deep_loads=loads)
    sim = PipelineSimulator(plan, batch_size=config.batch, tracer=tracer)
    sim.run_poisson(4, mean_interval_s=1.0, seed=seed)
    return tracer.finished_roots()


def run(experiment: str, *, seed: int = 0) -> TraceRun:
    """Run one seeded trace experiment; spans are invariant-validated."""
    if experiment not in TRACE_EXPERIMENTS:
        raise ValueError(
            f"unknown trace experiment {experiment!r}; "
            f"choose from {', '.join(TRACE_EXPERIMENTS)}"
        )
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    try:
        if experiment == "retrieval":
            roots = _traced_retrieval(seed, Tracer(enabled=True))
        elif experiment == "generation":
            roots = _traced_generation(seed, Tracer(enabled=True))
        elif experiment == "serve-sim":
            roots = _traced_serve_sim(seed, Tracer(enabled=True))
        else:  # e2e: the live serving pipeline, per-request timelines
            roots = _traced_e2e(seed, Tracer(enabled=True))
    finally:
        set_registry(previous_registry)
    validate_trace(roots)
    return TraceRun(
        experiment=experiment,
        roots=roots,
        metrics=registry.snapshot(),
        mixed_clocks=False,
    )


__all__ = ["TRACE_EXPERIMENTS", "TraceRun", "run"]
