"""Per-table/figure experiment modules.

Each module regenerates one table or figure from the paper's background,
characterisation, design, or evaluation sections (see DESIGN.md's
per-experiment index). ``runner.run_all()`` regenerates everything.
"""

from . import (
    common,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig_faults,
    mutation,
    overload,
    serve_cache,
    table1,
)

__all__ = [
    "common",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig_faults",
    "mutation",
    "overload",
    "serve_cache",
    "table1",
]
