"""Overload sweep: goodput, tail latency, and failover under excess load.

The north-star deployment serves "heavy traffic from millions of users", so
the serving layer must stay bounded-latency when offered load exceeds
capacity and when nodes die — not just when everything is healthy. This
experiment drives the real serving stack (:class:`DynamicBatcher` →
:class:`ServingFrontend` → :class:`HierarchicalSearcher`) two ways:

- **Open-loop load sweep.** Capacity is first calibrated closed-loop (a
  saturating burst through the batcher). Then, per offered-load multiple
  λ/capacity, a seeded Poisson arrival process replays the query stream
  twice: once through an admission-controlled batcher (bounded queue,
  per-request deadline, CoDel shedding, brownout ladder) and once through
  the legacy unbounded-queue batcher with no deadline. The metric that
  matters is **goodput** — requests completed *within their deadline* per
  second. An unbounded queue completes everything late past capacity, so
  its goodput collapses; admission control rejects the excess in
  microseconds and keeps the admitted requests' p99 inside the deadline.
- **Mid-sweep node kill.** The same query stream runs against a healthy
  fleet, a 2-replica fleet (:func:`replicate_datastore`) that loses one
  replica of *every* cluster mid-run, and an unreplicated fleet that loses
  whole clusters mid-run. Replica failover re-serves each affected call
  from the surviving copy, so NDCG@10 after the kill stays equal to the
  healthy baseline; the unreplicated fleet permanently loses the dead
  clusters' topics and its NDCG drops.

``hermes-repro overload`` prints both sections and writes the JSON
artifact; ``--smoke`` runs a reduced configuration and asserts the
acceptance properties (admission goodput ≥ unbounded goodput at 2×
capacity; failover NDCG equal to healthy while no-replica degrades).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, replace as dc_replace
from pathlib import Path

import numpy as np

from ..core.errors import AdmissionRejectedError, DeadlineExceededError
from ..core.hierarchical import HermesSearcher, RetrievalPolicy, RetryBudget
from ..datastore.queries import trivia_queries
from ..metrics.ndcg import ndcg_single
from ..serving.admission import AdmissionConfig
from ..serving.faults import CrashStop, FaultInjector
from ..serving.frontend import DynamicBatcher, ServingFrontend
from ..serving.replication import kill_replica, replica_groups, replicate_datastore
from .common import (
    accuracy_corpus,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
)

#: Offered-load multiples of calibrated capacity swept by default.
LOAD_SWEEP = (0.5, 1.0, 2.0)
#: Retrieval depth for the quality metric (NDCG@10).
K_OVERLOAD = 10

#: Fleet-survival policy for the failover section (mirrors the fault sweep):
#: one retry for transients, a fast breaker, and a shared retry budget so
#: dead shards cannot multiply retries into a storm.
FAILOVER_POLICY = RetrievalPolicy(max_attempts=2, breaker_threshold=2, breaker_cooldown=4)


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load operating point of one batcher configuration."""

    load: float
    offered_qps: float
    offered: int
    admitted: int
    rejected: int
    shed: int
    completed: int
    within_deadline: int
    goodput_qps: float
    goodput_frac: float
    p50_ms: float
    p99_ms: float
    mean_degradation: float
    ndcg: float


@dataclass(frozen=True)
class FailoverPoint:
    """One fleet configuration of the mid-run node-kill comparison."""

    config: str
    ndcg_before: float
    ndcg_after: float
    failovers: int
    replicas_out: int


@dataclass(frozen=True)
class OverloadReport:
    """Both sections plus the calibration they are normalised against."""

    capacity_qps: float
    deadline_ms: float
    max_queue: int
    admission: tuple
    no_admission: tuple
    failover: tuple


class _Completion:
    """Done-callback sink: records completion wall times off the worker."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.done_s: dict = {}

    def watch(self, idx: int, future) -> None:
        def _done(_f, idx=idx):
            now = self._clock()
            with self._lock:
                self.done_s[idx] = now

        future.add_done_callback(_done)


def _fresh_stack(
    searcher, *, max_batch: int, max_wait_s: float, admission: AdmissionConfig | None
) -> DynamicBatcher:
    frontend = ServingFrontend(searcher)
    return DynamicBatcher(
        frontend, max_batch=max_batch, max_wait_s=max_wait_s, admission=admission
    )


def calibrate_capacity(
    searcher, queries: np.ndarray, *, k: int, max_batch: int, max_wait_s: float
) -> float:
    """Closed-loop saturating burst; returns sustainable requests/second."""
    with _fresh_stack(
        searcher, max_batch=max_batch, max_wait_s=max_wait_s, admission=None
    ) as batcher:
        t0 = time.perf_counter()
        futures = [batcher.submit(q, k=k) for q in queries]
        for f in futures:
            f.result(timeout=120)
        elapsed = time.perf_counter() - t0
    return len(queries) / max(elapsed, 1e-9)


def _run_load_point(
    searcher,
    queries: np.ndarray,
    truth: np.ndarray,
    *,
    load: float,
    offered_qps: float,
    deadline_s: float,
    k: int,
    max_batch: int,
    max_wait_s: float,
    admission: AdmissionConfig | None,
    seed: int,
) -> LoadPoint:
    """Replay a Poisson arrival stream through one batcher configuration.

    Arrivals are compared against the wall clock, so an oversleeping
    ``time.sleep`` is compensated by the following (already-due) requests
    submitting immediately — the *average* offered rate holds even when the
    interarrival gaps are below timer resolution.
    """
    n = len(queries)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / offered_qps, size=n))
    use_deadline = admission is not None

    batcher = _fresh_stack(
        searcher, max_batch=max_batch, max_wait_s=max_wait_s, admission=admission
    )
    completion = _Completion(time.perf_counter)
    futures: dict = {}
    submit_s: dict = {}
    rejected = 0
    try:
        t0 = time.perf_counter()
        for i in range(n):
            delay = arrivals[i] - (time.perf_counter() - t0)
            if delay > 0:
                time.sleep(delay)
            try:
                fut = batcher.submit(
                    queries[i], k=k, deadline_s=deadline_s if use_deadline else None
                )
            except AdmissionRejectedError:
                rejected += 1
                continue
            submit_s[i] = time.perf_counter()
            futures[i] = fut
            completion.watch(i, fut)
        last_submit = time.perf_counter()
        results: dict = {}
        shed = 0
        for i, fut in futures.items():
            try:
                results[i] = fut.result(timeout=120)
            except (DeadlineExceededError, AdmissionRejectedError):
                # Only genuine overload outcomes count as shed; anything else
                # (a crashed worker, a bug in the stack) must propagate, or
                # the goodput numbers silently absorb real failures.
                shed += 1
    finally:
        batcher.close()

    latencies_ms = []
    within = 0
    levels = []
    scores = []
    for i, served in results.items():
        latency = completion.done_s[i] - submit_s[i]
        latencies_ms.append(latency * 1e3)
        if latency <= deadline_s:
            within += 1
        levels.append(served.degradation_level)
        scores.append(ndcg_single(served.ids, truth[i]))
    wall = max(
        (max(completion.done_s.values()) if completion.done_s else last_submit) - t0,
        1e-9,
    )
    lat = np.asarray(latencies_ms) if latencies_ms else np.zeros(1)
    return LoadPoint(
        load=float(load),
        offered_qps=n / max(arrivals[-1], last_submit - t0, 1e-9),
        offered=n,
        admitted=n - rejected,
        rejected=rejected,
        shed=shed,
        completed=len(results),
        within_deadline=within,
        goodput_qps=within / wall,
        goodput_frac=within / n,
        p50_ms=float(np.percentile(lat, 50)),
        p99_ms=float(np.percentile(lat, 99)),
        mean_degradation=float(np.mean(levels)) if levels else 0.0,
        ndcg=float(np.mean(scores)) if scores else 0.0,
    )


def run_load_sweep(
    loads: tuple = LOAD_SWEEP,
    *,
    n_requests: int = 600,
    deadline_ms: float = 50.0,
    max_queue: int | None = None,
    max_batch: int = 32,
    max_wait_s: float = 0.002,
    k: int = K_OVERLOAD,
    seed: int = 0,
) -> tuple:
    """Calibrate capacity, then sweep offered load with/without admission.

    Every request is a unique query (no exact-cache shortcut), so each one
    pays the real route + deep-search path and the calibrated capacity is
    the search fleet's, not the cache's. ``max_queue=None`` derives the
    admission bound from the calibration: half a deadline's worth of work
    at capacity, so a freshly admitted request's queue sojourn leaves the
    other half of its budget for the search itself. Returns
    ``(capacity_qps, max_queue, admission_points, no_admission_points)``.
    """
    corpus = accuracy_corpus()
    searcher = HermesSearcher(clustered_accuracy_datastore())
    pool = trivia_queries(corpus.topic_model, n_requests, seed=seed + 11).embeddings
    _, truth = monolithic_accuracy_retriever().ground_truth(pool, k)

    cal_n = min(max(n_requests // 2, 4 * max_batch), n_requests)
    capacity_qps = calibrate_capacity(
        searcher, pool[:cal_n], k=k, max_batch=max_batch, max_wait_s=max_wait_s
    )

    deadline_s = deadline_ms / 1e3
    if max_queue is None:
        max_queue = max(max_batch, int(capacity_qps * deadline_s * 0.5))
    admission_cfg = AdmissionConfig(
        max_queue=max_queue, default_deadline_s=deadline_s
    )
    with_admission = []
    without = []
    for load in loads:
        offered = float(load) * capacity_qps
        with_admission.append(
            _run_load_point(
                searcher,
                pool,
                truth,
                load=float(load),
                offered_qps=offered,
                deadline_s=deadline_s,
                k=k,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                admission=admission_cfg,
                seed=seed + int(load * 1000),
            )
        )
        without.append(
            _run_load_point(
                searcher,
                pool,
                truth,
                load=float(load),
                offered_qps=offered,
                deadline_s=deadline_s,
                k=k,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                admission=None,
                seed=seed + int(load * 1000),
            )
        )
    return capacity_qps, max_queue, with_admission, without


def run_failover(
    *,
    n_queries: int = 96,
    batch: int = 16,
    kill_clusters: int = 3,
    k: int = K_OVERLOAD,
    seed: int = 0,
) -> tuple:
    """Mid-run node kill: healthy vs 2-replica failover vs no replicas.

    The replicated fleet loses replica 0 of *every* cluster halfway through
    (the worst single-replica-wide event); the unreplicated fleet loses
    ``kill_clusters`` whole clusters. Each half's NDCG@10 is measured
    separately — replication should hold the after-kill half equal to the
    healthy baseline, the unreplicated fleet should degrade.
    """
    corpus = accuracy_corpus()
    clustered = clustered_accuracy_datastore()
    queries = trivia_queries(corpus.topic_model, n_queries, seed=seed + 23).embeddings
    _, truth = monolithic_accuracy_retriever().ground_truth(queries, k)
    rng = np.random.default_rng(seed)
    dead = sorted(
        int(s) for s in rng.choice(clustered.n_clusters, size=kill_clusters, replace=False)
    )

    policy = dc_replace(FAILOVER_POLICY, retry_budget=RetryBudget())
    replicated_ds = replicate_datastore(clustered, 2)
    # Private shard list so the mid-run kill never touches the memoised
    # datastore other experiments share.
    unreplicated_ds = dc_replace(clustered, shards=list(clustered.shards))
    configs = {
        "healthy": (HermesSearcher(clustered, policy=policy), None),
        "replicated": (
            HermesSearcher(replicated_ds, policy=policy),
            lambda: [
                kill_replica(g, 0, seed=seed) for g in replica_groups(replicated_ds)
            ],
        ),
        "unreplicated": (
            HermesSearcher(unreplicated_ds, policy=policy),
            lambda: [
                unreplicated_ds.shards.__setitem__(
                    s,
                    FaultInjector(seed).wrap_shard(
                        unreplicated_ds.shards[s], CrashStop(at_call=0)
                    ),
                )
                for s in dead
            ],
        ),
    }

    half = (n_queries // (2 * batch)) * batch or batch
    points = []
    for name, (searcher, kill) in configs.items():
        frontend = ServingFrontend(searcher)
        halves = {"before": [], "after": []}
        for start in range(0, n_queries, batch):
            if start == half and kill is not None:
                kill()
            result = frontend.search(queries[start : start + batch], k=k)
            side = "before" if start < half else "after"
            for j in range(len(result.ids)):
                halves[side].append(ndcg_single(result.ids[j], truth[start + j]))
        groups = replica_groups(searcher.datastore)
        points.append(
            FailoverPoint(
                config=name,
                ndcg_before=float(np.mean(halves["before"])),
                ndcg_after=float(np.mean(halves["after"])) if halves["after"] else 0.0,
                failovers=sum(g.failovers for g in groups),
                replicas_out=sum(len(g.out_replicas()) for g in groups),
            )
        )
    return tuple(points)


def run(
    loads: tuple = LOAD_SWEEP,
    *,
    n_requests: int = 600,
    deadline_ms: float = 50.0,
    max_queue: int | None = None,
    max_batch: int = 32,
    k: int = K_OVERLOAD,
    n_failover_queries: int = 96,
    seed: int = 0,
) -> OverloadReport:
    """Both sections; see :func:`run_load_sweep` and :func:`run_failover`."""
    capacity_qps, max_queue, with_admission, without = run_load_sweep(
        loads,
        n_requests=n_requests,
        deadline_ms=deadline_ms,
        max_queue=max_queue,
        max_batch=max_batch,
        k=k,
        seed=seed,
    )
    failover = run_failover(n_queries=n_failover_queries, k=k, seed=seed)
    return OverloadReport(
        capacity_qps=capacity_qps,
        deadline_ms=deadline_ms,
        max_queue=max_queue,
        admission=tuple(with_admission),
        no_admission=tuple(without),
        failover=failover,
    )


TABLE_HEADERS = [
    "load",
    "config",
    "offered qps",
    "rejected",
    "shed",
    "goodput qps",
    "goodput",
    "p50 (ms)",
    "p99 (ms)",
    "degr",
    "NDCG",
]


def table_rows(report: OverloadReport) -> list:
    """Rows for :func:`repro.metrics.reporting.format_table`."""
    rows = []
    for label, points in (("admission", report.admission), ("unbounded", report.no_admission)):
        for p in points:
            rows.append(
                (
                    f"{p.load:.1f}x",
                    label,
                    f"{p.offered_qps:.0f}",
                    p.rejected,
                    p.shed,
                    f"{p.goodput_qps:.0f}",
                    f"{p.goodput_frac:.0%}",
                    f"{p.p50_ms:.1f}",
                    f"{p.p99_ms:.1f}",
                    f"{p.mean_degradation:.2f}",
                    f"{p.ndcg:.3f}",
                )
            )
    return rows


def smoke_check(report: OverloadReport) -> list:
    """Acceptance assertions for ``--smoke``; returns the failure list.

    At ≈2× capacity admission-controlled goodput must be at least the
    unbounded queue's, and the replicated fleet's after-kill NDCG must match
    the healthy baseline while the unreplicated fleet degrades below it.
    """
    problems = []
    overload_pts = [
        (a, b)
        for a, b in zip(report.admission, report.no_admission)
        if a.load >= 2.0
    ]
    for adm, unb in overload_pts:
        if adm.goodput_qps < unb.goodput_qps:
            problems.append(
                f"goodput with admission ({adm.goodput_qps:.0f} qps) < without "
                f"({unb.goodput_qps:.0f} qps) at {adm.load:.1f}x capacity"
            )
    if not overload_pts:
        problems.append("no >=2x-capacity load point in the sweep")
    by_name = {p.config: p for p in report.failover}
    healthy = by_name.get("healthy")
    replicated = by_name.get("replicated")
    unreplicated = by_name.get("unreplicated")
    if healthy and replicated and unreplicated:
        if abs(replicated.ndcg_after - healthy.ndcg_after) > 1e-6:
            problems.append(
                f"replicated after-kill NDCG {replicated.ndcg_after:.4f} != "
                f"healthy {healthy.ndcg_after:.4f}"
            )
        if not unreplicated.ndcg_after < healthy.ndcg_after - 1e-3:
            problems.append(
                f"unreplicated after-kill NDCG {unreplicated.ndcg_after:.4f} did "
                f"not degrade below healthy {healthy.ndcg_after:.4f}"
            )
        if replicated.failovers <= 0:
            problems.append("replicated config recorded no failovers after the kill")
    else:
        problems.append("failover section is missing a configuration")
    return problems


def write_artifact(report: OverloadReport, path: "str | Path") -> Path:
    """Persist both sections as a JSON artifact."""
    path = Path(path)
    payload = {
        "experiment": "overload_sweep",
        "description": "open-loop offered-load sweep (goodput/p99/shed/NDCG with "
        "and without admission control) plus mid-run node-kill failover",
        "capacity_qps": report.capacity_qps,
        "deadline_ms": report.deadline_ms,
        "max_queue": report.max_queue,
        "admission": [asdict(p) for p in report.admission],
        "no_admission": [asdict(p) for p in report.no_admission],
        "failover": [asdict(p) for p in report.failover],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
