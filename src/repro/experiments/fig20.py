"""Figure 20: retrieval latency and throughput across CPU platforms.

Hermes retrieval modelled on four server CPUs — Neoverse-N1 (at batch 32 and
128), Xeon Gold 6448Y, Platinum 8380, and Silver 4316 — sweeping the number
of clusters deep-searched, against the Gemma2-9B inference latency line.

Paper shapes to reproduce: the Platinum 8380 achieves the best latency and
throughput; the ARM part trails per-core but its 80 cores let large batches
recover competitive throughput when few clusters are searched.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.generation import GenerationConfig
from ..llm.inference import InferenceModel
from ..perfmodel.aggregate import expected_deep_loads
from .common import build_fleet

#: (label, cpu registry key, batch) series of the figure.
PLATFORM_SERIES = (
    ("Neoverse-N1 (BS=32)", "neoverse_n1", 32),
    ("Neoverse-N1 (BS=128)", "neoverse_n1", 128),
    ("Gold 6448Y", "xeon_gold_6448y", 128),
    ("Platinum 8380", "xeon_platinum_8380", 128),
    ("Silver 4316", "xeon_silver_4316", 128),
)
CLUSTER_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

#: The figure's datastore: the evaluation default (10B tokens, 10 nodes).
DEFAULT_TOTAL_TOKENS = 10e9


@dataclass(frozen=True)
class PlatformPoint:
    """One platform series value at one fan-out."""

    label: str
    cpu_key: str
    batch: int
    clusters_searched: int
    latency_s: float
    throughput_qps: float


def run(
    *,
    total_tokens: float = DEFAULT_TOTAL_TOKENS,
    clusters: tuple[int, ...] = CLUSTER_SWEEP,
    series: tuple[tuple[str, str, int], ...] = PLATFORM_SERIES,
) -> list[PlatformPoint]:
    """Sweep platforms x fan-out."""
    points = []
    for label, cpu_key, batch in series:
        fleet = build_fleet(total_tokens, cpu_key=cpu_key)
        for m in clusters:
            loads = expected_deep_loads(batch, fleet.access_frequency, m)
            result = fleet.model.hermes(batch, loads)
            points.append(
                PlatformPoint(
                    label=label,
                    cpu_key=cpu_key,
                    batch=batch,
                    clusters_searched=m,
                    latency_s=result.latency_s,
                    throughput_qps=fleet.model.throughput_qps(batch, result),
                )
            )
    return points


def inference_latency_line(*, batch: int = 128) -> float:
    """The Gemma2-9B per-stride inference latency reference line."""
    cfg = GenerationConfig(batch=batch)
    inference = InferenceModel()
    return (
        inference.prefill(cfg.batch, cfg.input_tokens).latency_s
        + inference.decode(cfg.batch, cfg.stride).latency_s
    )


def best_platform(points: list[PlatformPoint], *, clusters_searched: int = 3) -> str:
    """Platform with the lowest latency at a fan-out (paper: Platinum 8380)."""
    eligible = [p for p in points if p.clusters_searched == clusters_searched]
    return min(eligible, key=lambda p: p.latency_s).label


def equalizing_batch(
    cpu_key: str,
    target_qps: float,
    *,
    shard_tokens: float = 1e9,
    max_batch: int = 2048,
) -> int | None:
    """Smallest batch size at which a platform reaches *target_qps*.

    The paper's Fig. 20 observation: "by optimizing batch sizes, we can
    equalize throughput across various hardware platforms" — the ARM part's
    80 cores let large batches recover the throughput its weaker cores lose
    at batch 32. Returns ``None`` when even ``max_batch`` falls short.
    """
    from ..hardware.cpu import get_cpu
    from ..perfmodel.measurements import RetrievalCostModel

    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    cost = RetrievalCostModel(platform=get_cpu(cpu_key))
    batch = 1
    while batch <= max_batch:
        if cost.throughput_qps(shard_tokens, batch) >= target_qps:
            return batch
        batch *= 2
    return None
