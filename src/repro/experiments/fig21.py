"""Figure 21: DVFS energy savings vs clusters deep-searched.

Three bars per fan-out: Hermes at max frequency, Hermes with baseline DVFS
(slow the lightly-loaded nodes to the slowest cluster's latency), and Hermes
with enhanced DVFS (slow everything to the pipelined inference latency).

Paper anchors: baseline DVFS saves 10.1-14.5% (average 12.24%); enhanced
saves 18.8-22.1% (average 20.44%), 19.6% at the evaluated 3-cluster point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.generation import GenerationConfig
from ..llm.inference import InferenceModel
from ..perfmodel.aggregate import DVFSPolicy, expected_deep_loads
from .common import FleetSetup, build_fleet

CLUSTER_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

#: Fleet scale where per-cluster search latency sits just below the
#: inference window — the operating condition §4.2 describes ("a faster
#: retrieval does not offer an added benefit"), and the scale at which the
#: modelled savings land on the paper's 12.24% / 20.44% averages.
DEFAULT_TOTAL_TOKENS = 20e9


@dataclass(frozen=True)
class DVFSPoint:
    """Energy of the three policies at one fan-out."""

    clusters_searched: int
    energy_none_j: float
    energy_baseline_j: float
    energy_enhanced_j: float

    @property
    def baseline_savings(self) -> float:
        return 1.0 - self.energy_baseline_j / self.energy_none_j

    @property
    def enhanced_savings(self) -> float:
        return 1.0 - self.energy_enhanced_j / self.energy_none_j


def run(
    *,
    batch: int = 128,
    total_tokens: float = DEFAULT_TOTAL_TOKENS,
    clusters: tuple[int, ...] = CLUSTER_SWEEP,
    fleet: FleetSetup | None = None,
    config: GenerationConfig | None = None,
) -> list[DVFSPoint]:
    """Sweep fan-out under the three DVFS policies."""
    fleet = fleet or build_fleet(total_tokens)
    cfg = config or GenerationConfig(batch=batch)
    inference = InferenceModel()
    window = (
        inference.prefill(cfg.batch, cfg.input_tokens).latency_s
        + inference.decode(cfg.batch, cfg.stride).latency_s
    )
    points = []
    for m in clusters:
        loads = expected_deep_loads(batch, fleet.access_frequency, m)
        # Pipelined serving sets a common batch period (the slower of the
        # deep search at max frequency and the inference window); all three
        # policies pay idle power over that same period so the comparison
        # isolates dynamic-energy savings.
        at_max = fleet.model.hermes(batch, loads, dvfs=DVFSPolicy.NONE)
        period = max(window, at_max.deep.latency_s)
        none = fleet.model.hermes(
            batch, loads, dvfs=DVFSPolicy.NONE, period_s=period
        )
        base = fleet.model.hermes(
            batch, loads, dvfs=DVFSPolicy.BASELINE, period_s=period
        )
        enhanced = fleet.model.hermes(
            batch,
            loads,
            dvfs=DVFSPolicy.ENHANCED,
            latency_target_s=window,
            period_s=period,
        )
        points.append(
            DVFSPoint(
                clusters_searched=m,
                energy_none_j=none.energy_j,
                energy_baseline_j=base.energy_j,
                energy_enhanced_j=enhanced.energy_j,
            )
        )
    return points


def average_savings(points: list[DVFSPoint]) -> dict[str, float]:
    """Mean savings across the sweep (paper: 12.24% / 20.44%)."""
    return {
        "baseline": float(np.mean([p.baseline_savings for p in points])),
        "enhanced": float(np.mean([p.enhanced_savings for p in points])),
    }
