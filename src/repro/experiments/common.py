"""Shared fixtures and cost helpers for the per-figure experiment modules.

Two kinds of experiments exist, mirroring the paper's methodology:

- **accuracy experiments** (Table 1, Figs. 11-13) run *real searches* over a
  small topic-structured corpus — the paper uses a 100M-doc Common Crawl
  subset; we use a deterministic synthetic corpus with the same 10-topic
  cluster structure (see DESIGN.md);
- **scale experiments** (Figs. 4-10, 14, 16-21) use the calibrated multi-node
  analysis tool, exactly as the paper does for its trillion-token numbers.

The accuracy corpus and its clusterings are built once per process and
memoised, since several figures share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..baselines.monolithic import MonolithicRetriever
from ..core.build_cache import cached_cluster_datastore
from ..core.clustering import ClusteredDatastore, split_datastore_evenly
from ..core.config import HermesConfig
from ..datastore.embeddings import SyntheticCorpus, make_corpus, zipf_weights
from ..datastore.queries import QuerySet, natural_questions_queries, trivia_queries
from ..hardware.node import NodeCluster
from ..llm.generation import (
    GenerationConfig,
    GenerationResult,
    RetrievalCost,
    constant_retrieval,
    simulate_generation,
)
from ..llm.inference import InferenceModel
from ..perfmodel.aggregate import (
    DVFSPolicy,
    MultiNodeModel,
    expected_deep_loads,
)
from ..perfmodel.measurements import RetrievalCostModel, index_memory_bytes

#: Documents in the shared accuracy corpus (a scale model of the paper's
#: 100M-doc subset with identical 10-topic structure).
ACCURACY_CORPUS_DOCS = 8000
#: Queries per accuracy evaluation batch.
ACCURACY_QUERIES = 64
#: Documents retrieved per query throughout (paper §5: top-5).
K_DOCS = 5

#: Deep-search access skew used by scale experiments that need a trace-free
#: expected load (hottest/coldest ≈ 2.8x, the paper's Fig. 13 shape).
ACCESS_SKEW_EXPONENT = 0.45


@lru_cache(maxsize=1)
def accuracy_corpus() -> SyntheticCorpus:
    """The shared topic-structured corpus for accuracy experiments."""
    return make_corpus(ACCURACY_CORPUS_DOCS, n_topics=10, dim=64, spread=0.35, seed=0)


@lru_cache(maxsize=1)
def accuracy_queries() -> QuerySet:
    """TriviaQA-like queries over the shared corpus."""
    return trivia_queries(accuracy_corpus().topic_model, ACCURACY_QUERIES)


@lru_cache(maxsize=1)
def nq_queries() -> QuerySet:
    """NQ-like (popularity-skewed) queries over the shared corpus."""
    return natural_questions_queries(accuracy_corpus().topic_model, 512)


@lru_cache(maxsize=4)
def clustered_accuracy_datastore(config: HermesConfig | None = None) -> ClusteredDatastore:
    """Hermes clustering of the shared corpus (memoised per config).

    Builds go through the fingerprinted build cache, so re-running any
    experiment with an identical config loads the datastore from disk
    instead of re-clustering (disable with ``HERMES_BUILD_CACHE=0``).
    """
    return cached_cluster_datastore(accuracy_corpus().embeddings, config or HermesConfig())


@lru_cache(maxsize=1)
def split_accuracy_datastore() -> ClusteredDatastore:
    """Naive random split of the shared corpus."""
    return split_datastore_evenly(accuracy_corpus().embeddings, HermesConfig())


@lru_cache(maxsize=1)
def monolithic_accuracy_retriever() -> MonolithicRetriever:
    """Monolithic IVF (and exact ground truth) over the shared corpus."""
    return MonolithicRetriever(accuracy_corpus().embeddings)


# ---------------------------------------------------------------------------
# Scale-experiment helpers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetSetup:
    """A modelled deployment: fleet + shard sizes + access skew."""

    model: MultiNodeModel
    shard_tokens: list[float]
    access_frequency: np.ndarray

    @property
    def n_clusters(self) -> int:
        return len(self.shard_tokens)

    @property
    def total_tokens(self) -> float:
        return float(sum(self.shard_tokens))


def build_fleet(
    total_tokens: float,
    *,
    n_clusters: int = 10,
    size_skew_exponent: float = 0.3,
    access_skew_exponent: float = ACCESS_SKEW_EXPONENT,
    cpu_key: str | None = None,
) -> FleetSetup:
    """A homogeneous fleet hosting a skew-sized clustering of *total_tokens*.

    Shard sizes follow the ~2x largest/smallest imbalance the paper measures
    after its K-means seed sweep; deep-search access frequency follows the
    Fig. 13 popularity skew (with hot clusters shuffled off the big ones).
    """
    from ..hardware.cpu import get_cpu

    sizes = zipf_weights(n_clusters, exponent=size_skew_exponent)
    shard_tokens = [total_tokens * float(w) for w in sizes]
    access = zipf_weights(n_clusters, exponent=access_skew_exponent)
    # Decouple "hot" from "big": shuffle access ranks deterministically.
    access = access[np.random.default_rng(7).permutation(n_clusters)]
    kwargs = {}
    if cpu_key is not None:
        kwargs["cpu"] = get_cpu(cpu_key)
    cluster = NodeCluster.homogeneous(
        n_clusters, memory_gb=max(1024.0, 2 * index_memory_bytes(max(shard_tokens)) / 1e9), **kwargs
    )
    cluster.host_shards(shard_tokens, [index_memory_bytes(t) for t in shard_tokens])
    return FleetSetup(
        model=MultiNodeModel(cluster),
        shard_tokens=shard_tokens,
        access_frequency=access,
    )


def monolithic_retrieval_cost(
    total_tokens: float,
    batch: int,
    *,
    nprobe: int = 128,
    cost_model: RetrievalCostModel | None = None,
) -> RetrievalCost:
    """Per-stride retrieval cost of the single-node monolithic baseline."""
    cost = cost_model or RetrievalCostModel()
    return RetrievalCost(
        latency_s=cost.batch_latency(total_tokens, batch, nprobe=nprobe),
        energy_j=cost.batch_energy(total_tokens, batch, nprobe=nprobe),
    )


def hermes_retrieval_cost(
    fleet: FleetSetup,
    batch: int,
    *,
    clusters_to_search: int = 3,
    sample_nprobe: int = 8,
    deep_nprobe: int = 128,
    dvfs: DVFSPolicy = DVFSPolicy.NONE,
    latency_target_s: float | None = None,
    period_s: float | None = None,
) -> RetrievalCost:
    """Per-stride retrieval cost of Hermes on a modelled fleet."""
    loads = expected_deep_loads(batch, fleet.access_frequency, clusters_to_search)
    result = fleet.model.hermes(
        batch,
        loads,
        sample_nprobe=sample_nprobe,
        deep_nprobe=deep_nprobe,
        dvfs=dvfs,
        latency_target_s=latency_target_s,
        period_s=period_s,
    )
    return RetrievalCost(latency_s=result.latency_s, energy_j=result.energy_j)


@dataclass(frozen=True)
class StrategyOutcome:
    """One serving strategy's simulated generation result."""

    name: str
    result: GenerationResult

    @property
    def e2e_s(self) -> float:
        return self.result.e2e_s

    @property
    def ttft_s(self) -> float:
        return self.result.ttft_s

    @property
    def energy_j(self) -> float:
        return self.result.total_energy_j


def compare_strategies(
    total_tokens: float,
    generation: GenerationConfig,
    *,
    inference: InferenceModel | None = None,
    n_clusters: int = 10,
    clusters_to_search: int = 3,
) -> dict[str, StrategyOutcome]:
    """Simulate the paper's five serving strategies for one configuration.

    Returns baseline, RAGCache, PipeRAG, standalone Hermes, and the combined
    Hermes/PipeRAG/RAGCache stack (the Fig. 14/16/17 comparison set).
    """
    from dataclasses import replace

    inference = inference or InferenceModel()
    fleet = build_fleet(total_tokens, n_clusters=n_clusters)
    mono = monolithic_retrieval_cost(total_tokens, generation.batch)
    # Standalone Hermes runs baseline DVFS (no latency cost); the combined
    # stack is pipelined, so it runs the paper's enhanced DVFS, stretching
    # retrieval into the inference window it hides under (§4.2, Fig. 21).
    window = (
        inference.prefill(generation.batch, generation.input_tokens).latency_s
        + inference.decode(generation.batch, generation.stride).latency_s
    )
    hermes = hermes_retrieval_cost(
        fleet,
        generation.batch,
        clusters_to_search=clusters_to_search,
        dvfs=DVFSPolicy.BASELINE,
    )
    hermes_pipelined = hermes_retrieval_cost(
        fleet,
        generation.batch,
        clusters_to_search=clusters_to_search,
        dvfs=DVFSPolicy.ENHANCED,
        latency_target_s=window,
    )

    plans = {
        "baseline": (mono, generation),
        "ragcache": (mono, replace(generation, prefix_cached=True)),
        "piperag": (mono, replace(generation, pipelined=True)),
        "hermes": (hermes, generation),
        "hermes_combined": (
            hermes_pipelined,
            replace(generation, pipelined=True, prefix_cached=True),
        ),
    }
    out = {}
    for name, (cost, cfg) in plans.items():
        result = simulate_generation(constant_retrieval(cost), inference, cfg)
        out[name] = StrategyOutcome(name=name, result=result)
    return out
