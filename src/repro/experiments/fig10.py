"""Figure 10: sizing Hermes clusters to hide retrieval under inference.

Right panel of the paper's Fig. 10: per-cluster search latency vs cluster
size, against the Gemma2-9B per-stride inference latency line. The "pipeline
gap" is the headroom between a cluster's search time and the inference
window; the largest cluster whose search still fits the window is the
recommended split size (the paper picks ~10x10B clusters for a 100B store).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.generation import GenerationConfig
from ..llm.inference import InferenceModel
from ..metrics.reporting import FigureResult
from .common import monolithic_retrieval_cost

#: Cluster sizes (tokens) on the x axis.
SIZES = (10e6, 100e6, 1e9, 10e9, 100e9)


@dataclass(frozen=True)
class ClusterSizingPoint:
    """Search latency and pipeline gap at one cluster size."""

    cluster_tokens: float
    search_latency_s: float
    inference_latency_s: float

    @property
    def pipeline_gap_s(self) -> float:
        """Positive when retrieval hides under inference."""
        return self.inference_latency_s - self.search_latency_s

    @property
    def hidden(self) -> bool:
        return self.pipeline_gap_s >= 0


def inference_window(config: GenerationConfig | None = None) -> float:
    """Per-stride inference latency (prefill + stride decode)."""
    cfg = config or GenerationConfig()
    inference = InferenceModel()
    return (
        inference.prefill(cfg.batch, cfg.input_tokens).latency_s
        + inference.decode(cfg.batch, cfg.stride).latency_s
    )


def run(
    sizes: tuple[float, ...] = SIZES, *, config: GenerationConfig | None = None
) -> list[ClusterSizingPoint]:
    """Sweep cluster sizes against the inference window."""
    cfg = config or GenerationConfig()
    window = inference_window(cfg)
    return [
        ClusterSizingPoint(
            cluster_tokens=s,
            search_latency_s=monolithic_retrieval_cost(s, cfg.batch).latency_s,
            inference_latency_s=window,
        )
        for s in sizes
    ]


def max_hidden_cluster_tokens(*, config: GenerationConfig | None = None) -> float:
    """Largest cluster size whose search latency fits the inference window.

    The calibrated latency model is linear in tokens, so this inverts in
    closed form.
    """
    cfg = config or GenerationConfig()
    window = inference_window(cfg)
    unit = monolithic_retrieval_cost(1e9, cfg.batch).latency_s  # s per 1B tokens
    return 1e9 * window / unit


def recommended_clusters(total_tokens: float, *, config: GenerationConfig | None = None) -> int:
    """How many clusters a datastore needs so every search stays hidden."""
    import math

    max_size = max_hidden_cluster_tokens(config=config)
    return max(1, math.ceil(total_tokens / max_size))


def to_figure(points: list[ClusterSizingPoint]) -> FigureResult:
    fig = FigureResult(
        figure_id="fig10",
        description="Cluster search latency vs size against inference latency",
    )
    xs = [p.cluster_tokens for p in points]
    fig.add("Search Latency", xs, [p.search_latency_s for p in points])
    fig.add("Gemma2 9B Inference Latency", xs, [p.inference_latency_s for p in points])
    return fig
