"""Figure 17: Hermes across inference models and GPU platforms.

Left column: Phi-1.5 (1.3B), Gemma2-9B, OPT-30B — all on A6000 Ada GPUs
(OPT needs two for memory). Right column: Gemma2-9B on A6000 Ada vs L4
(Gemma2 needs two L4s). Normalized E2E latency and energy for Baseline,
Hermes, and the combined stack.

Paper shapes to reproduce: speedups shrink as the inference model grows
(their 9.38x with Phi-1.5 down to 3.92x with OPT-30B) because inference
claims more of the critical path; gains persist across GPU classes, with L4s
saving less energy than A6000 Adas despite the lower TDP (tensor-parallel
communication + worse perf/W at the paper's quoted envelopes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import get_gpu
from ..llm.generation import GenerationConfig
from ..llm.inference import InferenceModel
from ..llm.models import get_model
from .common import StrategyOutcome, compare_strategies

#: (label, model key, gpu key) rows of the figure.
MODEL_CONFIGS = (
    ("Phi1.5 (1.3B)", "phi_1_5", "a6000_ada"),
    ("Gemma2 (9B)", "gemma2_9b", "a6000_ada"),
    ("OPT (30B)", "opt_30b", "a6000_ada"),
)
HARDWARE_CONFIGS = (
    ("A6000", "gemma2_9b", "a6000_ada"),
    ("L4", "gemma2_9b", "l4"),
)

#: The figure's datastore scale: gains are quoted at the evaluation default (10B tokens), where inference
#: latency is comparable to Hermes retrieval and model size matters.
DEFAULT_TOKENS = 10e9


@dataclass(frozen=True)
class ServingPoint:
    """One (model, GPU) configuration's strategy comparison."""

    label: str
    model_key: str
    gpu_key: str
    n_gpus: int
    outcomes: dict[str, StrategyOutcome]

    def hermes_speedup(self) -> float:
        return self.outcomes["baseline"].e2e_s / self.outcomes["hermes_combined"].e2e_s

    def hermes_energy_saving(self) -> float:
        return (
            self.outcomes["baseline"].energy_j
            / self.outcomes["hermes_combined"].energy_j
        )

    def normalized_latency(self) -> dict[str, float]:
        base = self.outcomes["baseline"].e2e_s
        return {name: o.e2e_s / base for name, o in self.outcomes.items()}

    def normalized_energy(self) -> dict[str, float]:
        base = self.outcomes["baseline"].energy_j
        return {name: o.energy_j / base for name, o in self.outcomes.items()}


def measure(
    label: str,
    model_key: str,
    gpu_key: str,
    *,
    total_tokens: float = DEFAULT_TOKENS,
    config: GenerationConfig | None = None,
) -> ServingPoint:
    """Compare strategies for one serving configuration."""
    cfg = config or GenerationConfig(batch=128)
    inference = InferenceModel(model=get_model(model_key), gpu=get_gpu(gpu_key))
    return ServingPoint(
        label=label,
        model_key=model_key,
        gpu_key=gpu_key,
        n_gpus=inference.n_gpus,
        outcomes=compare_strategies(total_tokens, cfg, inference=inference),
    )


def run_models(*, total_tokens: float = DEFAULT_TOKENS) -> list[ServingPoint]:
    """Left column: model-architecture sweep on A6000 Ada."""
    return [measure(*c, total_tokens=total_tokens) for c in MODEL_CONFIGS]


def run_hardware(*, total_tokens: float = DEFAULT_TOKENS) -> list[ServingPoint]:
    """Right column: GPU-platform sweep with Gemma2-9B."""
    return [measure(*c, total_tokens=total_tokens) for c in HARDWARE_CONFIGS]


def run(*, total_tokens: float = DEFAULT_TOKENS) -> dict[str, list[ServingPoint]]:
    return {
        "models": run_models(total_tokens=total_tokens),
        "hardware": run_hardware(total_tokens=total_tokens),
    }
