"""Live end-to-end serving: sequential vs pipelined vs lookahead retrieval.

Every earlier end-to-end number in this repo composed *modelled* retrieval
costs into the generation timeline. This experiment instead drives the real
serving stack per stride — :class:`~repro.serving.pipeline.RAGServingPipeline`
submits every stride's query batch through the live
:class:`~repro.serving.frontend.DynamicBatcher` → frontend → searcher path
and measures it, while prefill/decode advance on the calibrated
:class:`~repro.llm.inference.InferenceModel` clock — and compares the three
execution disciplines on the same request cohort:

- ``sequential``: retrieve-then-generate, the paper's baseline loop;
- ``pipelined``: PipeRAG-style overlap (stale queries, used as-is);
- ``lookahead``: TeleRAG-style speculative prefetch with post-block cosine
  verification and fresh-search fallback on mis-speculation.

Quality is NDCG@k of each stride's served ids against brute-force truth for
that stride's *true* (context-complete) query, so stale/speculative results
pay for any drift they introduce. The cohort mixes long-context requests
(speculation-friendly: the per-stride drift barely moves the embedding) with
short-context ones (drift-heavy: speculation should miss and fall back), so
both lookahead paths are exercised.

``hermes-repro serve`` prints the comparison and writes the JSON artifact;
``--smoke`` runs a reduced cohort and asserts the acceptance properties
(pipelined and lookahead E2E beat sequential at equal NDCG; TTFT is
discipline-independent; speculation actually hit).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..baselines.monolithic import MonolithicRetriever
from ..core.clustering import cluster_datastore
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..datastore.chunkstore import ChunkStore
from ..datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from ..datastore.encoder import SyntheticEncoder
from ..metrics.ndcg import ndcg_single
from ..serving.pipeline import PIPELINE_MODES, PipelineConfig, RAGServingPipeline

#: Retrieval depth for the quality metric.
K_SERVE = 10
#: TTFT noise tolerance between modes: the stride-0 path is identical in all
#: three disciplines, so any gap is pure wall-clock measurement noise.
TTFT_TOLERANCE = 1.5
#: NDCG tolerance for "equal quality": verified speculation may serve
#: near-duplicate top-k lists for barely-drifted queries.
NDCG_TOLERANCE = 0.05
#: Allowed NDCG drop for plain pipelining, which uses stale results
#: *unconditionally* — the measured PipeRAG staleness cost that lookahead
#: verification recovers.
PIPELINED_NDCG_ALLOWANCE = 0.15


@dataclass(frozen=True)
class ModePoint:
    """One execution discipline's cohort outcome."""

    mode: str
    requests: int
    shed: int
    mean_ttft_s: float
    mean_e2e_s: float
    p99_e2e_s: float
    mean_retrieval_s: float
    mean_encode_s: float
    mean_energy_j: float
    block_s: float
    gpu_batch: int
    ndcg: float
    lookahead_hits: int
    lookahead_misses: int
    lookahead_hit_rate: float
    wasted_retrieval_s: float


@dataclass(frozen=True)
class ServePipelineReport:
    """All three disciplines over one shared cohort + corpus shape."""

    docs: int
    chunks: int
    n_requests: int
    n_strides: int
    stride_tokens: int
    k: int
    speculation_threshold: float
    points: tuple


def _build_stack(
    *, docs: int, dim: int, n_topics: int, n_clusters: int,
    clusters_to_search: int, seed: int,
):
    """Token-level corpus + clustered datastore + searcher + chunk store."""
    vocab = TokenVocabulary(n_topics=n_topics, pool_size=200, common_size=100)
    gen = CorpusGenerator(vocab, doc_tokens=128, topical_fraction=0.8, seed=seed + 1)
    chunks = chunk_documents(gen.generate(docs), chunk_tokens=64)
    encoder = SyntheticEncoder(dim=dim, seed=0)
    embeddings = encoder.encode_chunks(chunks)
    datastore = cluster_datastore(
        embeddings,
        HermesConfig(
            n_clusters=n_clusters, clusters_to_search=clusters_to_search, nlist=8
        ),
    )
    return HermesSearcher(datastore), encoder, ChunkStore(chunks), chunks, embeddings


def _make_requests(
    chunks, *, n_long: int, n_short: int, long_tokens: int, short_tokens: int,
    seed: int,
) -> list:
    """Long-context (speculation-friendly) + short-context (drift-heavy)."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n_long + n_short):
        source = chunks[int(rng.integers(len(chunks)))].tokens
        size = long_tokens if i < n_long else short_tokens
        requests.append(np.asarray(rng.choice(source, size=size)))
    return requests


def _score_ndcg(report, embeddings: np.ndarray, k: int) -> float:
    """Mean per-stride NDCG@k of served ids vs the true query's truth."""
    strides = [s for r in report.completed for s in r.strides]
    if not strides:
        return 0.0
    true_queries = np.stack([s.true_query for s in strides])
    _, truth = MonolithicRetriever(embeddings).ground_truth(true_queries, k)
    return float(
        np.mean([ndcg_single(s.ids, truth[i]) for i, s in enumerate(strides)])
    )


def run(
    modes: tuple = PIPELINE_MODES,
    *,
    docs: int = 400,
    dim: int = 32,
    n_topics: int = 4,
    n_clusters: int = 4,
    clusters_to_search: int = 2,
    n_long: int = 12,
    n_short: int = 4,
    long_tokens: int = 64,
    short_tokens: int = 8,
    n_strides: int = 4,
    stride_tokens: int = 16,
    k: int = K_SERVE,
    speculation_threshold: float = 0.95,
    deadline_s: float | None = None,
    seed: int = 0,
    tracer=None,
) -> ServePipelineReport:
    """Serve the same request cohort under each discipline, fresh stack each.

    Every mode gets its own pipeline (and therefore fresh retrieval caches)
    over the same searcher and the same request token sets and per-request
    seeds, so the comparison isolates the scheduling discipline.
    """
    searcher, encoder, store, chunks, embeddings = _build_stack(
        docs=docs, dim=dim, n_topics=n_topics, n_clusters=n_clusters,
        clusters_to_search=clusters_to_search, seed=seed,
    )
    requests = _make_requests(
        chunks, n_long=n_long, n_short=n_short, long_tokens=long_tokens,
        short_tokens=short_tokens, seed=seed + 2,
    )
    points = []
    for mode in modes:
        config = PipelineConfig(
            mode=mode,
            n_strides=n_strides,
            stride_tokens=stride_tokens,
            k=k,
            speculation_threshold=speculation_threshold,
            deadline_s=deadline_s,
        )
        with RAGServingPipeline(
            searcher, encoder, store, config=config, tracer=tracer, seed=seed
        ) as pipeline:
            report = pipeline.serve(requests)
        points.append(
            ModePoint(
                mode=mode,
                requests=len(report.requests),
                shed=report.shed,
                mean_ttft_s=report.mean_ttft_s,
                mean_e2e_s=report.mean_e2e_s,
                p99_e2e_s=report.e2e_percentile(99),
                mean_retrieval_s=float(
                    np.mean([r.retrieval_s for r in report.completed])
                )
                if report.completed
                else 0.0,
                mean_encode_s=float(
                    np.mean([r.encode_s for r in report.completed])
                )
                if report.completed
                else 0.0,
                mean_energy_j=report.mean_energy_j,
                block_s=report.block_s,
                gpu_batch=report.gpu_batch,
                ndcg=_score_ndcg(report, embeddings, k),
                lookahead_hits=report.lookahead_hits,
                lookahead_misses=report.lookahead_misses,
                lookahead_hit_rate=report.lookahead_hit_rate,
                wasted_retrieval_s=report.wasted_retrieval_s,
            )
        )
    return ServePipelineReport(
        docs=docs,
        chunks=len(chunks),
        n_requests=len(requests),
        n_strides=n_strides,
        stride_tokens=stride_tokens,
        k=k,
        speculation_threshold=speculation_threshold,
        points=tuple(points),
    )


TABLE_HEADERS = [
    "mode",
    "TTFT (s)",
    "E2E (s)",
    "p99 E2E (s)",
    "retrieval (ms)",
    "energy (J)",
    f"NDCG@{K_SERVE}",
    "spec hit",
    "shed",
]


def table_rows(report: ServePipelineReport) -> list:
    """Rows for :func:`repro.metrics.reporting.format_table`."""
    rows = []
    for p in report.points:
        hits = p.lookahead_hits + p.lookahead_misses
        rows.append(
            (
                p.mode,
                f"{p.mean_ttft_s:.3f}",
                f"{p.mean_e2e_s:.3f}",
                f"{p.p99_e2e_s:.3f}",
                f"{p.mean_retrieval_s * 1e3:.1f}",
                f"{p.mean_energy_j:.0f}",
                f"{p.ndcg:.3f}",
                f"{p.lookahead_hit_rate:.0%}" if hits else "-",
                p.shed,
            )
        )
    return rows


def smoke_check(report: ServePipelineReport) -> list:
    """Acceptance assertions for ``--smoke``; returns the failure list.

    The overlapped disciplines must beat sequential end-to-end at equal
    NDCG@k: each overlapped stride costs ``max(block, retrieval)`` instead
    of ``block + retrieval``, and the inference block dominates, so the win
    is deterministic whenever speculation hits. TTFT is compared with a
    noise tolerance because the stride-0 path is *identical* in all modes —
    a strict inequality would be a coin flip between two samples of the
    same distribution.
    """
    problems = []
    by_mode = {p.mode: p for p in report.points}
    seq = by_mode.get("sequential")
    pipe = by_mode.get("pipelined")
    look = by_mode.get("lookahead")
    if not (seq and pipe and look):
        return [f"missing a discipline: have {sorted(by_mode)}"]
    for p in (seq, pipe, look):
        if p.shed:
            problems.append(f"{p.mode}: {p.shed} requests shed without a deadline")
    for p in (pipe, look):
        if p.mean_e2e_s >= seq.mean_e2e_s:
            problems.append(
                f"{p.mode} E2E {p.mean_e2e_s:.3f}s did not beat sequential "
                f"{seq.mean_e2e_s:.3f}s"
            )
        if p.mean_ttft_s > seq.mean_ttft_s * TTFT_TOLERANCE:
            problems.append(
                f"{p.mode} TTFT {p.mean_ttft_s:.3f}s above sequential "
                f"{seq.mean_ttft_s:.3f}s x{TTFT_TOLERANCE} (stride-0 path is "
                "identical; this is more than measurement noise)"
            )
        allowance = (
            PIPELINED_NDCG_ALLOWANCE if p.mode == "pipelined" else NDCG_TOLERANCE
        )
        if p.ndcg < seq.ndcg - allowance:
            problems.append(
                f"{p.mode} NDCG {p.ndcg:.3f} below sequential {seq.ndcg:.3f} "
                f"- {allowance}"
            )
    if look.lookahead_hits <= 0:
        problems.append("lookahead: speculation never hit")
    if look.lookahead_misses <= 0:
        problems.append(
            "lookahead: speculation never missed (drift-heavy requests "
            "did not exercise the fallback path)"
        )
    if seq.lookahead_hits or seq.lookahead_misses or pipe.lookahead_misses:
        problems.append("speculation counters leaked into a non-lookahead mode")
    return problems


def write_artifact(report: ServePipelineReport, path: "str | Path") -> Path:
    """Persist the comparison as a JSON artifact."""
    path = Path(path)
    payload = {
        "experiment": "serve_pipeline",
        "description": "live end-to-end serving: sequential vs PipeRAG-style "
        "pipelined vs TeleRAG-style lookahead retrieval, measured through the "
        "DynamicBatcher under the calibrated inference clock",
        "docs": report.docs,
        "chunks": report.chunks,
        "n_requests": report.n_requests,
        "n_strides": report.n_strides,
        "stride_tokens": report.stride_tokens,
        "k": report.k,
        "speculation_threshold": report.speculation_threshold,
        "points": [asdict(p) for p in report.points],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
