"""Figure 13: cluster size and access-frequency imbalance.

Left panel: K-means cluster sizes after the seed sweep still vary (the paper
measures largest/smallest ≈ 2x). Right panel: deep-search access frequency
over NQ-like queries is also skewed (hottest accessed >2x the coldest).
Together these motivate the DVFS load balancing of §4.2.

This is a *real-search* experiment: the clustering is a real K-means split
and the access counts come from actually routing 512 NQ-like queries with
the Hermes sampling router.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hierarchical import HermesSearcher
from ..perfmodel.trace import BatchRouting, ClusterAccessTrace
from .common import clustered_accuracy_datastore, nq_queries


@dataclass(frozen=True)
class ImbalanceReport:
    """Both panels of Figure 13."""

    cluster_sizes: np.ndarray
    access_counts: np.ndarray

    @property
    def size_imbalance(self) -> float:
        return float(self.cluster_sizes.max()) / float(self.cluster_sizes.min())

    @property
    def access_imbalance(self) -> float:
        coldest = self.access_counts.min()
        if coldest == 0:
            return float("inf")
        return float(self.access_counts.max()) / float(coldest)


def run(*, clusters_to_search: int = 3, batch_size: int = 128) -> ImbalanceReport:
    """Cluster the corpus, route NQ-like queries, tally accesses."""
    datastore = clustered_accuracy_datastore()
    queries = nq_queries().embeddings
    searcher = HermesSearcher(datastore)
    trace = ClusterAccessTrace(n_clusters=datastore.n_clusters)
    for start in range(0, len(queries), batch_size):
        batch = queries[start : start + batch_size]
        result = searcher.search(batch, clusters_to_search=clusters_to_search)
        trace.record(BatchRouting(clusters=result.routing.clusters))
    return ImbalanceReport(
        cluster_sizes=datastore.sizes(), access_counts=trace.access_counts()
    )
