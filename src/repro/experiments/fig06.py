"""Figure 6: TTFT and end-to-end latency vs datastore size.

The paper's headline characterisation (§3 Takeaway 1): with a monolithic
index, batch 32, Gemma2-9B, 512 in / 256 out, stride 16:

- TTFT retrieval share ≈61% at 10B tokens, ≈94% at 100B;
- E2E latency ≈12.0 s at 100M, ≈101.8 s at 100B, ≈909.1 s at 1T.

Our calibrated model reproduces these within ~2% (see EXPERIMENTS.md). Both
panels come with per-stage breakdowns (encoding / retrieval / prefill /
decoding).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.generation import GenerationConfig, constant_retrieval, simulate_generation
from ..llm.inference import InferenceModel
from ..metrics.reporting import format_table
from .common import monolithic_retrieval_cost

#: Datastore sizes (tokens) on the figure's x axes.
TTFT_SIZES = (10e9, 100e9)
E2E_SIZES = (100e6, 1e9, 10e9, 100e9, 1e12)

#: Paper-reported anchors for EXPERIMENTS.md comparisons.
PAPER_E2E = {100e6: 12.0, 100e9: 101.8, 1e12: 909.1}
PAPER_TTFT_RETRIEVAL_SHARE = {10e9: 0.6121, 100e9: 0.9398}


@dataclass(frozen=True)
class LatencyPoint:
    """One datastore size's latency decomposition."""

    datastore_tokens: float
    ttft_s: float
    e2e_s: float
    encoding_s: float
    retrieval_s: float
    prefill_s: float
    decoding_s: float
    retrieval_share_of_ttft: float


def measure(
    datastore_tokens: float,
    *,
    batch: int = 32,
    config: GenerationConfig | None = None,
) -> LatencyPoint:
    """Simulate the monolithic baseline at one datastore size."""
    cfg = config or GenerationConfig(batch=batch)
    inference = InferenceModel()
    cost = monolithic_retrieval_cost(datastore_tokens, cfg.batch)
    result = simulate_generation(constant_retrieval(cost), inference, cfg)
    return LatencyPoint(
        datastore_tokens=datastore_tokens,
        ttft_s=result.ttft_s,
        e2e_s=result.e2e_s,
        encoding_s=result.encode_s,
        retrieval_s=result.retrieval_s,
        prefill_s=result.prefill_s,
        decoding_s=result.decode_s,
        retrieval_share_of_ttft=result.retrieval_fraction_of_ttft,
    )


def run(sizes: tuple[float, ...] = E2E_SIZES, *, batch: int = 32) -> list[LatencyPoint]:
    """The full Figure 6 sweep."""
    return [measure(s, batch=batch) for s in sizes]


def render(points: list[LatencyPoint]) -> str:
    """Text rendering with paper anchors where available."""
    rows = []
    for p in points:
        paper = PAPER_E2E.get(p.datastore_tokens, "-")
        rows.append(
            (
                f"{p.datastore_tokens:.0e}",
                p.ttft_s,
                f"{p.retrieval_share_of_ttft:.1%}",
                p.e2e_s,
                paper,
            )
        )
    return format_table(
        ["Tokens", "TTFT (s)", "Retr % of TTFT", "E2E (s)", "Paper E2E (s)"],
        rows,
        title="Figure 6: latency vs datastore size (monolithic baseline)",
    )
