"""Figure 12: nProbe design-space exploration for the hierarchical search.

Two sweeps over the shared accuracy corpus, NDCG from real searches and
latency from the calibrated cost model:

- **small-nProbe sweep**: vary the *sampling* nProbe (1, 2, 4, 8) with the
  deep nProbe fixed at 128 — better sampling improves routing (NDCG) at a
  small latency cost;
- **large-nProbe sweep**: fix sampling at 8 and vary the *deep* nProbe
  (16, 32, 64, 128) — deeper searches improve NDCG with a much steeper
  latency cost than the sampling knob.

The paper's conclusion to reproduce: (sample=8, deep=128) maximises accuracy
without meaningfully hurting latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hierarchical import HierarchicalSearcher
from ..core.router import SampledRouter
from ..metrics.ndcg import ndcg
from ..perfmodel.measurements import RetrievalCostModel
from .common import (
    K_DOCS,
    accuracy_queries,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
)

SMALL_NPROBES = (1, 2, 4, 8)
LARGE_NPROBES = (16, 32, 64, 128)
CLUSTER_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

#: Per-cluster size (tokens) used for the latency model: the paper's DSE runs
#: on its 100M-doc corpus split into 10 clusters.
CLUSTER_TOKENS = 1e9

#: The DSE needs shard indices with more cells than the largest nProbe swept,
#: or the deep-search knob saturates; the paper's shards have nlist≈3162.
_DSE_CONFIG = None


def _dse_datastore():
    """Clustered datastore with fine-grained (nlist=256) shard indices."""
    from ..core.config import HermesConfig

    global _DSE_CONFIG
    if _DSE_CONFIG is None:
        _DSE_CONFIG = HermesConfig(nlist=256)
    return clustered_accuracy_datastore(_DSE_CONFIG)


@dataclass(frozen=True)
class DSEPoint:
    """One (nProbe config, clusters searched) operating point."""

    sample_nprobe: int
    deep_nprobe: int
    clusters_searched: int
    ndcg: float
    latency_s: float


def _latency(
    sample_nprobe: int, deep_nprobe: int, clusters_searched: int, *, batch: int = 32
) -> float:
    """Modelled per-batch hierarchical search latency.

    Sample phase runs on all clusters in parallel (slowest node gates);
    deep phase runs the routed fan-out, with the batch share landing on the
    busiest node approximated as the full batch (upper bound, conservative).
    """
    cost = RetrievalCostModel()
    sample = cost.batch_latency(CLUSTER_TOKENS, batch, nprobe=sample_nprobe)
    deep = cost.batch_latency(CLUSTER_TOKENS, batch, nprobe=deep_nprobe)
    del clusters_searched  # parallel across nodes; fan-out drives energy, not latency
    return sample + deep


def small_nprobe_sweep(
    *,
    nprobes: tuple[int, ...] = SMALL_NPROBES,
    clusters: tuple[int, ...] = CLUSTER_SWEEP,
    deep_nprobe: int = 128,
    k: int = K_DOCS,
) -> list[DSEPoint]:
    """Vary sampling depth with the deep search fixed at nProbe 128."""
    queries = accuracy_queries().embeddings
    _, truth = monolithic_accuracy_retriever().ground_truth(queries, k)
    datastore = _dse_datastore()
    points = []
    for nprobe in nprobes:
        searcher = HierarchicalSearcher(
            datastore, router=SampledRouter(sample_nprobe=nprobe)
        )
        for m in clusters:
            result = searcher.search(
                queries, k=k, clusters_to_search=m, deep_nprobe=deep_nprobe
            )
            points.append(
                DSEPoint(
                    sample_nprobe=nprobe,
                    deep_nprobe=deep_nprobe,
                    clusters_searched=m,
                    ndcg=ndcg(result.ids, truth),
                    latency_s=_latency(nprobe, deep_nprobe, m),
                )
            )
    return points


def large_nprobe_sweep(
    *,
    nprobes: tuple[int, ...] = LARGE_NPROBES,
    clusters: tuple[int, ...] = CLUSTER_SWEEP,
    sample_nprobe: int = 8,
    k: int = K_DOCS,
) -> list[DSEPoint]:
    """Vary deep-search depth with sampling fixed at nProbe 8."""
    queries = accuracy_queries().embeddings
    _, truth = monolithic_accuracy_retriever().ground_truth(queries, k)
    datastore = _dse_datastore()
    searcher = HierarchicalSearcher(
        datastore, router=SampledRouter(sample_nprobe=sample_nprobe)
    )
    points = []
    for nprobe in nprobes:
        for m in clusters:
            result = searcher.search(
                queries, k=k, clusters_to_search=m, deep_nprobe=nprobe
            )
            points.append(
                DSEPoint(
                    sample_nprobe=sample_nprobe,
                    deep_nprobe=nprobe,
                    clusters_searched=m,
                    ndcg=ndcg(result.ids, truth),
                    latency_s=_latency(sample_nprobe, nprobe, m),
                )
            )
    return points


def run() -> dict[str, list[DSEPoint]]:
    """Both panels of Figure 12."""
    return {"small": small_nprobe_sweep(), "large": large_nprobe_sweep()}


def optimal_config(points: list[DSEPoint], *, tolerance: float = 0.01) -> DSEPoint:
    """Cheapest point within *tolerance* NDCG of the best (paper picks 8/128).

    The paper's criterion "maximizes end-to-end accuracy while not
    significantly impacting latency": among near-maximal-NDCG points, take
    the fastest.
    """
    if not points:
        raise ValueError("points must be non-empty")
    best = max(p.ndcg for p in points)
    eligible = [p for p in points if p.ndcg >= best - tolerance]
    return min(eligible, key=lambda p: p.latency_s)
