"""Figure 8: prior RAG optimisations lose their edge at scale.

PipeRAG (pipelining) and RAGCache (ideal prefix caching) are simulated
against the unoptimized baseline across datastore sizes. The paper's
observations to reproduce:

- with small datastores, pipelining overlaps retrieval almost fully (up to
  ~1.6x end-to-end) and caching removes most prefill cost;
- PipeRAG peaks where retrieval and inference latency are comparable, then
  decays as retrieval dominates;
- RAGCache's speedup decays monotonically with datastore size because
  retrieval crowds out the prefill it optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..llm.generation import GenerationConfig, constant_retrieval, simulate_generation
from ..llm.inference import InferenceModel
from ..metrics.reporting import FigureResult
from .common import monolithic_retrieval_cost

#: Datastore sizes (tokens) on the x axis.
SIZES = (100e6, 1e9, 10e9, 100e9, 1e12)


@dataclass(frozen=True)
class SpeedupPoint:
    """E2E speedups of the two prior techniques at one datastore size."""

    datastore_tokens: float
    baseline_e2e_s: float
    piperag_speedup: float
    ragcache_speedup: float


def measure(
    datastore_tokens: float, *, config: GenerationConfig | None = None
) -> SpeedupPoint:
    """Compare baseline / PipeRAG / RAGCache at one size."""
    cfg = config or GenerationConfig()
    inference = InferenceModel()
    cost = monolithic_retrieval_cost(datastore_tokens, cfg.batch)
    provider = constant_retrieval(cost)

    base = simulate_generation(provider, inference, cfg)
    pipe = simulate_generation(provider, inference, replace(cfg, pipelined=True))
    cache = simulate_generation(provider, inference, replace(cfg, prefix_cached=True))
    return SpeedupPoint(
        datastore_tokens=datastore_tokens,
        baseline_e2e_s=base.e2e_s,
        piperag_speedup=base.e2e_s / pipe.e2e_s,
        ragcache_speedup=base.e2e_s / cache.e2e_s,
    )


def run(sizes: tuple[float, ...] = SIZES) -> FigureResult:
    """The Figure 8 (right panel) speedup-vs-size sweep."""
    points = [measure(s) for s in sizes]
    fig = FigureResult(
        figure_id="fig8",
        description="Prior-work speedup over baseline vs datastore size",
    )
    xs = [p.datastore_tokens for p in points]
    fig.add("Baseline", xs, [1.0] * len(points))
    fig.add("PipeRAG", xs, [p.piperag_speedup for p in points])
    fig.add("RAGCache", xs, [p.ragcache_speedup for p in points])
    return fig


def crossover_size(
    *, config: GenerationConfig | None = None, lo: float = 1e8, hi: float = 1e13
) -> float:
    """Datastore size where retrieval equals the inference block.

    Below it pipelining hides retrieval entirely; above it retrieval is the
    critical path and PipeRAG's benefit saturates. Solved by bisection on the
    calibrated cost model.
    """
    cfg = config or GenerationConfig()
    inference = InferenceModel()
    block = (
        inference.prefill(cfg.batch, cfg.input_tokens).latency_s
        + inference.decode(cfg.batch, cfg.stride).latency_s
    )
    for _ in range(80):
        mid = (lo * hi) ** 0.5
        if monolithic_retrieval_cost(mid, cfg.batch).latency_s < block:
            lo = mid
        else:
            hi = mid
    return (lo * hi) ** 0.5
