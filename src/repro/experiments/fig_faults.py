"""Fault sweep: the graceful-degradation curve of the retrieval fleet.

The paper's one-index-per-node deployment (§4/§6) carries an implicit
availability claim: because shards are *semantic* clusters, losing a node
loses one topic's coverage — queries about the surviving topics are
untouched. A naive random split makes the opposite trade: every shard holds
a slice of every topic, so losing one node removes ~1/n of *every* query's
candidates.

This experiment kills 0..n nodes (crash-stop fault injection through the
real search path, exercising the retry/breaker machinery of
:class:`~repro.core.hierarchical.RetrievalPolicy`) and measures, per killed
count and strategy:

- **NDCG@10** against exhaustive ground truth (mean over the query set);
- **affected-query fraction** — queries whose NDCG dropped vs. the healthy
  run (the topical-blast-radius metric);
- **p50/p99 per-query latency** of the degraded fleet (dead shards fail
  fast once the circuit breaker opens, so tails should stay bounded).

The output is the JSON artifact behind the availability story, the
fault-tolerance analogue of Fig. 11's accuracy sweep.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..core.hierarchical import (
    ExhaustiveSplitSearcher,
    HermesSearcher,
    HierarchicalSearcher,
    RetrievalPolicy,
)
from ..metrics.ndcg import ndcg_single
from ..metrics.reporting import FigureResult
from ..serving.faults import kill_shards
from .common import (
    accuracy_queries,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
    split_accuracy_datastore,
)

#: Killed-node counts swept by default (the fleet has 10 nodes).
KILL_SWEEP = (0, 1, 2, 3, 5)
#: Retrieval depth for the degradation metric (NDCG@10).
K_FAULTS = 10

#: Survival policy used throughout the sweep: one retry for transients, a
#: fast circuit breaker so dead shards stop being probed after two batches.
SWEEP_POLICY = RetrievalPolicy(
    max_attempts=2, breaker_threshold=2, breaker_cooldown=4
)


@dataclass(frozen=True)
class StrategyDegradation:
    """One strategy's measurements at one killed-node count."""

    ndcg: float
    affected_frac: float
    p50_ms: float
    p99_ms: float


@dataclass(frozen=True)
class FaultSweepPoint:
    """Both strategies at one killed-node count."""

    killed: int
    killed_shards: tuple
    hermes: StrategyDegradation
    split: StrategyDegradation


def _measure(
    searcher: HierarchicalSearcher,
    queries: np.ndarray,
    truth: np.ndarray,
    *,
    k: int,
    healthy_scores: np.ndarray | None,
) -> tuple[StrategyDegradation, np.ndarray]:
    """Per-query searches against a (possibly chaotic) fleet.

    Queries run one at a time so p50/p99 are per-query wall latencies and
    the circuit breaker sees a realistic batch sequence.
    """
    scores = np.empty(len(queries))
    latencies = np.empty(len(queries))
    for i, query in enumerate(queries):
        t0 = time.perf_counter()
        result = searcher.search(query[np.newaxis], k=k)
        latencies[i] = time.perf_counter() - t0
        scores[i] = ndcg_single(result.ids[0], truth[i])
    if healthy_scores is None:
        affected = 0.0
    else:
        affected = float(np.mean(scores < healthy_scores - 1e-9))
    return (
        StrategyDegradation(
            ndcg=float(scores.mean()),
            affected_frac=affected,
            p50_ms=float(np.percentile(latencies, 50) * 1e3),
            p99_ms=float(np.percentile(latencies, 99) * 1e3),
        ),
        scores,
    )


def run(
    killed_counts: tuple = KILL_SWEEP,
    *,
    k: int = K_FAULTS,
    n_queries: int | None = None,
    seed: int = 0,
) -> list[FaultSweepPoint]:
    """Sweep killed-node counts over Hermes and the naive split.

    Killed shard ids are drawn without replacement from ``seed`` (the same
    ids kill both strategies, so the curves are comparable). Each point
    builds fresh searchers — breaker state never leaks between points.
    """
    queries = accuracy_queries().embeddings
    if n_queries is not None:
        queries = queries[:n_queries]
    mono = monolithic_accuracy_retriever()
    _, truth = mono.ground_truth(queries, k)

    clustered = clustered_accuracy_datastore()
    split = split_accuracy_datastore()
    n_shards = clustered.n_clusters
    rng = np.random.default_rng(seed)

    healthy: dict[str, np.ndarray] = {}
    points = []
    for killed in killed_counts:
        if killed >= n_shards:
            raise ValueError(
                f"cannot kill {killed} of {n_shards} shards and still serve"
            )
        dead = tuple(
            int(s) for s in rng.choice(n_shards, size=killed, replace=False)
        )
        hermes_ds = kill_shards(clustered, dead, seed=seed) if dead else clustered
        split_ds = kill_shards(split, dead, seed=seed) if dead else split
        hermes = HermesSearcher(hermes_ds, policy=SWEEP_POLICY)
        naive = ExhaustiveSplitSearcher(split_ds, policy=SWEEP_POLICY)

        hermes_out, hermes_scores = _measure(
            hermes, queries, truth, k=k, healthy_scores=healthy.get("hermes")
        )
        split_out, split_scores = _measure(
            naive, queries, truth, k=k, healthy_scores=healthy.get("split")
        )
        if killed == 0:
            healthy["hermes"] = hermes_scores
            healthy["split"] = split_scores
        points.append(
            FaultSweepPoint(
                killed=int(killed),
                killed_shards=dead,
                hermes=hermes_out,
                split=split_out,
            )
        )
    return points


def to_figure(points: list[FaultSweepPoint]) -> FigureResult:
    fig = FigureResult(
        figure_id="fig_faults",
        description="graceful degradation vs killed retrieval nodes",
    )
    xs = [float(p.killed) for p in points]
    fig.add("Hermes NDCG@10", xs, [p.hermes.ndcg for p in points])
    fig.add("Split NDCG@10", xs, [p.split.ndcg for p in points])
    fig.add("Hermes affected frac", xs, [p.hermes.affected_frac for p in points])
    fig.add("Split affected frac", xs, [p.split.affected_frac for p in points])
    fig.add("Hermes p99 (ms)", xs, [p.hermes.p99_ms for p in points])
    fig.add("Split p99 (ms)", xs, [p.split.p99_ms for p in points])
    degr = [p for p in points if p.killed > 0]
    if degr:
        fig.notes.append(
            "semantic clustering localises damage: at "
            f"{degr[0].killed} killed node(s), "
            f"{degr[0].hermes.affected_frac:.0%} of queries degrade under "
            f"Hermes vs {degr[0].split.affected_frac:.0%} under the naive split"
        )
    return fig


def write_artifact(points: list[FaultSweepPoint], path: str, *, k: int = K_FAULTS) -> None:
    """Write the degradation curve as a JSON artifact."""
    payload = {
        "figure": "fig_faults",
        "description": "killed retrieval nodes x {NDCG@10, affected fraction, "
        "p50/p99 latency} for Hermes vs naive split",
        "k": k,
        "policy": asdict(SWEEP_POLICY),
        "points": [asdict(p) for p in points],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
