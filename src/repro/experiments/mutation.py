"""Live-mutation churn sweep: serving quality and cost under a changing corpus.

The paper builds its datastore offline and serves it frozen; the north-star
deployment cannot — documents arrive and expire while queries are in flight.
This experiment drives the real searcher over a datastore that mutates
between query batches, at several churn rates, and measures what live
updates cost and whether they are *correct*:

- **Quality.** NDCG@k of the live (delta + tombstone) datastore against
  brute force over the current live vectors, and again after compaction
  folds every delta row back into the sealed indices. Every shard is
  deep-searched at full probe, so the live and compacted answers must be
  **bit-identical** — the serving-layer face of the mutation-equivalence
  contract (``tests/ann/test_mutation_equivalence.py`` proves the per-shard
  version).
- **Integrity.** Deleted documents must never surface in results, and every
  inserted document must be retrievable by its own embedding.
- **Cost.** Per-batch search p50 while the delta is live vs after
  compaction, plus peak delta occupancy and the compaction count.

``hermes-repro mutate`` prints the sweep; ``--smoke`` additionally asserts
the integrity/equivalence properties and exits non-zero on violation (the
latency overhead bar is enforced by ``benchmarks/bench_serve.py``, where
timing is controlled).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..baselines.monolithic import MonolithicRetriever
from ..core.clustering import cluster_datastore
from ..core.config import HermesConfig
from ..core.hierarchical import HermesSearcher
from ..datastore.embeddings import make_corpus
from ..datastore.queries import trivia_queries
from ..metrics.ndcg import ndcg

#: Per-batch mutation rates swept by default (fraction of the batch size
#: inserted *and* deleted between consecutive query batches).
CHURN_SWEEP = (0.0, 0.01, 0.05)
K_MUTATION = 10


@dataclass(frozen=True)
class ChurnPoint:
    """One churn rate's outcome over the full query stream."""

    churn: float
    batches: int
    inserted: int
    deleted: int
    peak_delta_rows: int
    compacted_shards: int
    p50_live_ms: float
    p50_compacted_ms: float
    overhead_frac: float
    ndcg_live: float
    ndcg_compacted: float
    live_equals_compacted: bool
    deleted_leaks: int
    inserted_misses: int


@dataclass(frozen=True)
class MutationReport:
    """The sweep plus the fixed workload shape it was measured under."""

    k: int
    n_queries: int
    batch: int
    docs: int
    points: tuple


def _churn_point(
    churn: float,
    *,
    corpus,
    fresh_pool: np.ndarray,
    queries: np.ndarray,
    batch: int,
    k: int,
    config: HermesConfig,
    rng: np.random.Generator,
) -> ChurnPoint:
    # A private datastore per point: mutation is destructive, so sharing the
    # memoised accuracy datastore would poison every other experiment.
    datastore = cluster_datastore(corpus.embeddings, config)
    searcher = HermesSearcher(datastore, config=config)
    n_batches = len(queries) // batch
    inserted = deleted = 0
    peak_delta = 0
    pool_next = 0
    deleted_ids: set = set()
    live_times = []
    # Fractional accumulator: churn * batch < 1 at small batches; rounding
    # per batch would mutate nothing and leave the sweep vacuous.
    mut_acc = 0.0
    try:
        for b in range(n_batches):
            mut_acc += churn * batch
            n_mut = int(mut_acc)
            mut_acc -= n_mut
            if n_mut:
                fresh = fresh_pool[pool_next : pool_next + n_mut]
                pool_next += n_mut
                datastore.add_documents(fresh)
                inserted += len(fresh)
                _, live_ids = datastore.live_vectors()
                victims = rng.choice(live_ids, size=n_mut, replace=False)
                datastore.delete_documents(victims)
                deleted += len(victims)
                deleted_ids.update(int(g) for g in victims)
            peak_delta = max(peak_delta, datastore.delta_rows())
            sub = queries[b * batch : (b + 1) * batch]
            start = time.perf_counter()
            searcher.search(sub, k=k, clusters_to_search=datastore.n_clusters)
            live_times.append(time.perf_counter() - start)

        # Final live state: quality + integrity, then the compacted replay.
        live_vecs, live_ids = datastore.live_vectors()
        mono = MonolithicRetriever(live_vecs)
        _, truth_pos = mono.ground_truth(queries, k)
        truth = live_ids[truth_pos]
        live = searcher.search(
            queries, k=k, clusters_to_search=datastore.n_clusters
        )
        leaks = int(np.isin(live.ids, np.array(sorted(deleted_ids))).sum())
        ndcg_live = ndcg(live.ids, truth)

        compacted_shards = datastore.compact()
        compacted = searcher.search(
            queries, k=k, clusters_to_search=datastore.n_clusters
        )
        ndcg_compacted = ndcg(compacted.ids, truth)
        identical = bool(np.array_equal(live.ids, compacted.ids))

        compacted_times = []
        for b in range(n_batches):
            sub = queries[b * batch : (b + 1) * batch]
            start = time.perf_counter()
            searcher.search(sub, k=k, clusters_to_search=datastore.n_clusters)
            compacted_times.append(time.perf_counter() - start)

        # Every surviving insert must be findable by its own embedding.
        inserted_misses = 0
        if inserted:
            survivors = np.setdiff1d(
                np.arange(len(corpus.embeddings), len(datastore.assignments)),
                np.array(sorted(deleted_ids)),
            )
            if len(survivors):
                probe = datastore.reconstruct_vectors()[survivors]
                hits = searcher.search(
                    probe, k=k, clusters_to_search=datastore.n_clusters
                )
                inserted_misses = int(
                    (~(hits.ids == survivors[:, None]).any(axis=1)).sum()
                )
    finally:
        searcher.close()

    p50_live = float(np.median(live_times) * 1e3)
    p50_compacted = float(np.median(compacted_times) * 1e3)
    return ChurnPoint(
        churn=churn,
        batches=n_batches,
        inserted=inserted,
        deleted=deleted,
        peak_delta_rows=peak_delta,
        compacted_shards=compacted_shards,
        p50_live_ms=p50_live,
        p50_compacted_ms=p50_compacted,
        overhead_frac=(p50_live / p50_compacted - 1.0) if p50_compacted else 0.0,
        ndcg_live=ndcg_live,
        ndcg_compacted=ndcg_compacted,
        live_equals_compacted=identical,
        deleted_leaks=leaks,
        inserted_misses=inserted_misses,
    )


def run(
    churns: tuple = CHURN_SWEEP,
    *,
    docs: int = 3_000,
    n_queries: int = 128,
    batch: int = 32,
    k: int = K_MUTATION,
    n_clusters: int = 4,
    seed: int = 0,
) -> MutationReport:
    """Sweep churn rates over a private datastore; returns the report."""
    corpus = make_corpus(docs, n_topics=8, dim=64, seed=seed)
    # The insert stream: same topic geometry, disjoint sample.
    from ..datastore.embeddings import TopicModel

    model = corpus.topic_model
    fresh_model = TopicModel(
        centers=model.centers,
        weights=model.weights,
        spread=model.spread,
        rng_seed=seed + 1,
    )
    fresh_pool, _ = fresh_model.sample_documents(
        max(1, int(max(churns, default=0.0) * n_queries)) + batch
    )
    queries = trivia_queries(corpus.topic_model, n_queries, seed=seed + 2).embeddings
    config = HermesConfig(
        n_clusters=n_clusters, clusters_to_search=n_clusters, nlist=16
    )
    rng = np.random.default_rng(seed + 3)
    points = tuple(
        _churn_point(
            churn,
            corpus=corpus,
            fresh_pool=fresh_pool,
            queries=queries,
            batch=batch,
            k=k,
            config=config,
            rng=rng,
        )
        for churn in churns
    )
    return MutationReport(
        k=k, n_queries=n_queries, batch=batch, docs=docs, points=points
    )


TABLE_HEADERS = [
    "churn",
    "ins",
    "del",
    "peak delta",
    "p50 live (ms)",
    "p50 compacted (ms)",
    "overhead",
    "NDCG live",
    "NDCG compacted",
    "identical",
]


def table_rows(report: MutationReport) -> list:
    """Rows for :func:`repro.metrics.reporting.format_table`."""
    return [
        (
            f"{p.churn:.0%}",
            p.inserted,
            p.deleted,
            p.peak_delta_rows,
            f"{p.p50_live_ms:.2f}",
            f"{p.p50_compacted_ms:.2f}",
            f"{p.overhead_frac:+.0%}",
            f"{p.ndcg_live:.4f}",
            f"{p.ndcg_compacted:.4f}",
            "yes" if p.live_equals_compacted else "NO",
        )
        for p in report.points
    ]


def smoke_check(report: MutationReport) -> list:
    """Acceptance assertions for ``--smoke``; returns the failure list."""
    problems = []
    for p in report.points:
        if p.deleted_leaks:
            problems.append(
                f"churn {p.churn:.0%}: {p.deleted_leaks} deleted documents "
                "surfaced in search results"
            )
        if p.inserted_misses:
            problems.append(
                f"churn {p.churn:.0%}: {p.inserted_misses} inserted documents "
                "not retrievable by their own embedding"
            )
        if not p.live_equals_compacted:
            problems.append(
                f"churn {p.churn:.0%}: live and compacted result ids differ "
                "at full probe"
            )
        if abs(p.ndcg_live - p.ndcg_compacted) > 1e-9:
            problems.append(
                f"churn {p.churn:.0%}: NDCG live {p.ndcg_live:.4f} != "
                f"compacted {p.ndcg_compacted:.4f}"
            )
        if p.churn > 0 and p.peak_delta_rows == 0:
            problems.append(
                f"churn {p.churn:.0%}: no delta rows accumulated — the "
                "mutation path was not exercised"
            )
    return problems


def write_artifact(report: MutationReport, path: "str | Path") -> Path:
    """Persist the sweep as a JSON artifact."""
    path = Path(path)
    payload = {
        "experiment": "mutation_churn",
        "description": "live-mutation churn sweep: NDCG/latency of delta+"
        "tombstone serving vs the compacted datastore, plus integrity checks",
        "k": report.k,
        "n_queries": report.n_queries,
        "batch": report.batch,
        "docs": report.docs,
        "points": [asdict(p) for p in report.points],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
