"""Figure 14: Hermes vs prior acceleration across serving configurations.

Normalized end-to-end latency and energy for five strategies — Baseline,
RAGCache, PipeRAG, standalone Hermes, and the Hermes/PipeRAG/RAGCache stack —
swept along the figure's three axes (everything else at the paper defaults:
batch 128, 10B tokens, stride 16, Gemma2-9B on an A6000 Ada):

- batch size: 32, 64, 128, 256;
- datastore size: 1B, 10B, 100B, 1T tokens;
- stride length: 4, 16, 32, 64.

Paper shapes to reproduce: Hermes latency gains of ~2.45-10.25x and energy
gains of ~1.08-3.37x, growing with datastore size and retrieval frequency,
shrinking when the GPU becomes the bottleneck (small stores).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..llm.generation import GenerationConfig
from ..metrics.reporting import format_table
from .common import StrategyOutcome, compare_strategies

BATCH_SWEEP = (32, 64, 128, 256)
SIZE_SWEEP = (1e9, 10e9, 100e9, 1e12)
STRIDE_SWEEP = (4, 16, 32, 64)

#: Figure defaults (§6: "we standardize our batch size at 128 with a
#: datastore size of 10 billion tokens and a stride length of 16").
DEFAULT_CONFIG = GenerationConfig(batch=128, stride=16)
DEFAULT_TOKENS = 10e9

STRATEGIES = ("baseline", "ragcache", "piperag", "hermes", "hermes_combined")


@dataclass(frozen=True)
class ComparisonPoint:
    """All strategies at one configuration, with normalized metrics."""

    axis: str
    value: float
    outcomes: dict[str, StrategyOutcome]

    def normalized_latency(self) -> dict[str, float]:
        base = self.outcomes["baseline"].e2e_s
        return {name: o.e2e_s / base for name, o in self.outcomes.items()}

    def normalized_energy(self) -> dict[str, float]:
        base = self.outcomes["baseline"].energy_j
        return {name: o.energy_j / base for name, o in self.outcomes.items()}

    def hermes_speedup(self) -> float:
        return self.outcomes["baseline"].e2e_s / self.outcomes["hermes_combined"].e2e_s

    def hermes_energy_saving(self) -> float:
        return (
            self.outcomes["baseline"].energy_j
            / self.outcomes["hermes_combined"].energy_j
        )


def sweep_batch(batches: tuple[int, ...] = BATCH_SWEEP) -> list[ComparisonPoint]:
    """Left panel: vary retrieval/inference batch size."""
    return [
        ComparisonPoint(
            axis="batch",
            value=b,
            outcomes=compare_strategies(
                DEFAULT_TOKENS, replace(DEFAULT_CONFIG, batch=b)
            ),
        )
        for b in batches
    ]


def sweep_datastore(sizes: tuple[float, ...] = SIZE_SWEEP) -> list[ComparisonPoint]:
    """Center panel: vary datastore size."""
    return [
        ComparisonPoint(
            axis="datastore_tokens",
            value=s,
            outcomes=compare_strategies(s, DEFAULT_CONFIG),
        )
        for s in sizes
    ]


def sweep_stride(strides: tuple[int, ...] = STRIDE_SWEEP) -> list[ComparisonPoint]:
    """Right panel: vary retrieval stride."""
    return [
        ComparisonPoint(
            axis="stride",
            value=s,
            outcomes=compare_strategies(
                DEFAULT_TOKENS, replace(DEFAULT_CONFIG, stride=s)
            ),
        )
        for s in strides
    ]


def run() -> dict[str, list[ComparisonPoint]]:
    """All three panels of Figure 14."""
    return {
        "batch": sweep_batch(),
        "datastore": sweep_datastore(),
        "stride": sweep_stride(),
    }


def render(points: list[ComparisonPoint], *, metric: str = "latency") -> str:
    """Text table of one panel, normalized to the baseline."""
    getter = (
        ComparisonPoint.normalized_latency
        if metric == "latency"
        else ComparisonPoint.normalized_energy
    )
    rows = []
    for p in points:
        normalized = getter(p)
        rows.append([f"{p.value:g}"] + [normalized[s] for s in STRATEGIES])
    return format_table(
        [points[0].axis] + list(STRATEGIES),
        rows,
        title=f"Figure 14 ({points[0].axis} sweep): normalized {metric}",
    )
