"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The Prometheus-shaped half of ``repro.obs`` (numpy + stdlib only): named
metrics with label support —

    REGISTRY.counter("build_cache_lookups_total").inc(result="hit")
    REGISTRY.histogram("retrieval_latency_seconds").observe(0.012,
                                                            shard="2",
                                                            phase="deep")

Histograms are **fixed-bucket**: only per-bucket counts are stored, never
samples, so observation is O(log buckets) and memory is constant regardless
of traffic — the property that makes it safe to leave instrumentation on in
the hot paths. Quantiles (p50/p95/p99) are estimated by linear interpolation
inside the bucket containing the target rank, the standard Prometheus
``histogram_quantile`` scheme; the estimate is guaranteed to land inside
that bucket, i.e. within one bucket boundary of the exact sample quantile
(the property ``tests/obs/test_metrics.py`` checks against numpy).

All metric operations are thread-safe: the shard fan-out and parallel build
pools record from worker threads.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets (upper bounds, seconds): 10 µs .. ~84 s in
#: half-decade steps — wide enough for sample search through simulated E2E.
DEFAULT_LATENCY_BUCKETS = tuple(
    round(10.0 ** (e / 2.0), 10) for e in range(-10, 4)
)


def _label_key(labels: Mapping[str, object]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(key: tuple) -> str:
    """Render a label key the Prometheus way: ``{shard="2",phase="deep"}``."""
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Base: a named family of per-labelset children behind one lock."""

    def __init__(self, name: str, description: str = "") -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._children: dict = {}

    def labelsets(self) -> list:
        with self._lock:
            return list(self._children)


class Counter(_Metric):
    """Monotonically increasing count (events, retries, cache hits)."""

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = _label_key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._children.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labelset."""
        with self._lock:
            return sum(self._children.values())

    def collect(self) -> dict:
        with self._lock:
            return dict(self._children)


class Gauge(_Metric):
    """A value that can go up and down (open breakers, queue depth)."""

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._children[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._children.get(_label_key(labels), 0.0)

    def collect(self) -> dict:
        with self._lock:
            return dict(self._children)


class _HistogramChild:
    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Fixed-bucket distribution with O(1)-memory quantile estimates.

    ``buckets`` are strictly increasing upper bounds; an observation lands
    in the first bucket whose bound is >= the value, or the overflow bucket
    past the last bound. Only counts are kept.
    """

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        buckets: Iterable[float] | None = None,
    ) -> None:
        super().__init__(name, description)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds

    def _child(self, labels: Mapping[str, object]) -> _HistogramChild:
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.buckets))
        return child

    def observe(self, value: float, **labels: object) -> None:
        if not math.isfinite(value):
            raise ValueError(f"cannot observe non-finite value {value}")
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            child = self._child(labels)
            child.bucket_counts[idx] += 1
            child.count += 1
            child.sum += value
            if value < child.min:
                child.min = value
            if value > child.max:
                child.max = value

    # -- reads --------------------------------------------------------------
    def count(self, **labels: object) -> int:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return 0 if child is None else child.count

    def total(self, **labels: object) -> float:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return 0.0 if child is None else child.sum

    def mean(self, **labels: object) -> float:
        with self._lock:
            child = self._children.get(_label_key(labels))
            if child is None or child.count == 0:
                return math.nan
            return child.sum / child.count

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the q-quantile (q in [0, 1]) from bucket counts.

        Linear interpolation inside the target bucket; the overflow bucket
        (values past the last bound) is clamped to the observed max. Returns
        NaN with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            child = self._children.get(_label_key(labels))
            if child is None or child.count == 0:
                return math.nan
            target = q * child.count
            cumulative = 0.0
            for idx, n in enumerate(child.bucket_counts):
                if n == 0:
                    continue
                if cumulative + n >= target:
                    frac = 0.0 if n == 0 else max(0.0, (target - cumulative)) / n
                    if idx >= len(self.buckets):  # overflow bucket
                        lo, hi = self.buckets[-1], child.max
                    else:
                        hi = self.buckets[idx]
                        lo = self.buckets[idx - 1] if idx > 0 else min(0.0, hi)
                    # Clamp the interpolation to the observed range so tiny
                    # samples don't report below-min / above-max estimates.
                    lo = max(lo, child.min)
                    hi = min(hi, child.max)
                    if hi < lo:
                        return child.max
                    return lo + frac * (hi - lo)
                cumulative += n
            return child.max  # pragma: no cover - target <= count always hits

    def snapshot(self, **labels: object) -> dict:
        """count/sum/min/max plus p50/p95/p99 for one labelset."""
        return {
            "count": self.count(**labels),
            "sum": self.total(**labels),
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
        }


class MetricsRegistry:
    """Named metrics, created on first use and shared after.

    ``registry.counter("x")`` is get-or-create: instrumented modules never
    need to coordinate declaration order. Re-registering a name as a
    different metric type is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, description, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        *,
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics = {}

    def snapshot(self) -> dict:
        """Flat ``name{labels} -> value`` view of everything recorded.

        Histograms expand into ``_count`` / ``_sum`` / quantile series, the
        shape a scraper (or an experiment run log) wants.
        """
        out: dict[str, float] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Histogram):
                for key in metric.labelsets():
                    labels = dict(key)
                    snap = metric.snapshot(**labels)
                    suffix = format_labels(key)
                    out[f"{metric.name}_count{suffix}"] = snap["count"]
                    out[f"{metric.name}_sum{suffix}"] = snap["sum"]
                    for p in ("p50", "p95", "p99"):
                        out[f"{metric.name}_{p}{suffix}"] = snap[p]
            else:
                for key, value in metric.collect().items():
                    out[f"{metric.name}{format_labels(key)}"] = value
        return out


#: Process-wide default registry, the sink instrumented modules report to.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
