"""End-to-end observability for the Hermes reproduction.

``repro.obs`` is a deliberately dependency-free subsystem (numpy + stdlib
only — CI enforces it) with three parts:

- :mod:`repro.obs.trace` — hierarchical spans with clock injection and
  JSON / Chrome-tracing exporters;
- :mod:`repro.obs.metrics` — a process-local registry of counters, gauges,
  and fixed-bucket histograms with labels;
- :mod:`repro.obs.validate` — the latency-accounting invariants the test
  harness asserts over every traced run.

Instrumented modules (hierarchical searcher, IVF scan, build pipeline, DES
simulator, generation timeline) report to the process-wide tracer and
registry, both of which start disabled/no-op; ``enable_tracing()`` opts in.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import (
    ManualClock,
    Span,
    Tracer,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    spans_to_json,
    trace_skeleton,
)
from .validate import TraceInvariantError, validate_span_tree, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "ManualClock",
    "Span",
    "Tracer",
    "chrome_trace",
    "spans_to_json",
    "trace_skeleton",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "TraceInvariantError",
    "validate_span_tree",
    "validate_trace",
]
