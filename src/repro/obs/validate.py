"""Latency-accounting invariants over span trees.

The test harness half of ``repro.obs``: a traced pipeline is only useful for
latency decomposition if its spans actually account for time coherently.
:func:`validate_span_tree` checks the structural invariants every exporter
and breakdown table relies on:

1. every span is finished and has non-negative duration;
2. every child interval lies inside its parent's interval (no orphans
   escaping their stage);
3. siblings executing on the **same worker** do not overlap (a serial
   executor cannot run two spans at once); siblings on different workers
   (the shard fan-out, pipelined retrieval vs. GPU) may;
4. as a corollary of 2+3, the summed duration of same-worker children never
   exceeds the parent's duration.

``eps`` absorbs floating-point timestamp arithmetic; it defaults to zero
because both the wall clock (monotonic ``perf_counter`` reads) and the DES
virtual clock produce exactly ordered timestamps.
"""

from __future__ import annotations

__all__ = ["TraceInvariantError", "validate_span_tree", "validate_trace"]


class TraceInvariantError(AssertionError):
    """A span tree violated a latency-accounting invariant."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise TraceInvariantError(message)


def validate_span_tree(root, *, eps: float = 0.0) -> int:
    """Validate one span tree; returns the number of spans checked.

    Raises :class:`TraceInvariantError` on the first violation, with a
    message naming the offending spans.
    """
    checked = 0
    stack = [root]
    while stack:
        span = stack.pop()
        checked += 1
        _check(span.finished, f"span {span.name!r} was never finished")
        _check(
            span.end_s >= span.start_s,
            f"span {span.name!r} has negative duration "
            f"[{span.start_s}, {span.end_s}]",
        )
        children = list(span.children)
        for child in children:
            _check(child.finished, f"span {child.name!r} was never finished")
            _check(
                child.start_s >= span.start_s - eps
                and child.end_s <= span.end_s + eps,
                f"child {child.name!r} [{child.start_s}, {child.end_s}] escapes "
                f"parent {span.name!r} [{span.start_s}, {span.end_s}]",
            )
        # Same-worker siblings must serialize.
        by_worker: dict = {}
        for child in children:
            by_worker.setdefault(child.worker, []).append(child)
        for worker, group in by_worker.items():
            group = sorted(group, key=lambda s: (s.start_s, s.end_s))
            for left, right in zip(group, group[1:]):
                _check(
                    right.start_s >= left.end_s - eps,
                    f"siblings {left.name!r} and {right.name!r} overlap on "
                    f"worker {worker!r}: [{left.start_s}, {left.end_s}] vs "
                    f"[{right.start_s}, {right.end_s}]",
                )
            same_as_parent = worker == span.worker
            if same_as_parent:
                total = sum(c.end_s - c.start_s for c in group)
                _check(
                    total <= (span.end_s - span.start_s) + eps * max(1, len(group)),
                    f"children of {span.name!r} on worker {worker!r} sum to "
                    f"{total}, exceeding parent duration "
                    f"{span.end_s - span.start_s}",
                )
        stack.extend(children)
    return checked


def validate_trace(spans, *, eps: float = 0.0) -> int:
    """Validate a tracer, a single span, or an iterable of root spans."""
    from .trace import _as_spans

    total = 0
    for root in _as_spans(spans):
        total += validate_span_tree(root, eps=eps)
    return total
