"""Hierarchical tracing spans for the retrieval/serving pipeline.

Hermes's central results are latency *decompositions* — TTFT and E2E broken
into sample search, routing, deep search, rerank, and inference (Figs. 7,
12, 14, 16) — so the reproduction needs a way to see those stages rather
than scrape them out of ad-hoc timing dicts. This module is the span half of
``repro.obs``: a zero-dependency (numpy + stdlib only) tracer producing
trees of timed spans, exportable to plain JSON or the Chrome
``chrome://tracing`` / Perfetto event format.

Design points:

- **Clock injection.** A tracer owns a ``clock`` callable returning seconds.
  The default is ``time.perf_counter`` (wall clock); the DES simulator
  passes its event-loop clock so *simulated* traces decompose on the virtual
  timeline exactly like measured ones, and tests pass a :class:`ManualClock`
  they advance by hand.
- **Two recording APIs.** ``tracer.span(...)`` is a context manager (and
  via :meth:`Tracer.traced` a decorator) that nests through a thread-local
  stack — the natural fit for instrumenting call trees. ``start_span`` /
  ``record`` take explicit parents and timestamps — the fit for
  callback-driven code like the event-loop simulator where "the current
  span" is not a property of the Python stack.
- **Workers.** Every span carries a ``worker`` label (thread, shard, node,
  device — the unit that executes serially). Spans on one worker must not
  overlap; spans on different workers may. ``worker=None`` inherits the
  parent's worker (or the thread name at the root).
- **Disabled is (nearly) free.** A disabled tracer hands out one shared
  no-op context manager; the hot-path cost is an attribute check. The
  module-level default tracer starts disabled, so instrumented library code
  costs almost nothing until someone opts in via :func:`enable_tracing`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "ManualClock",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "spans_to_json",
    "chrome_trace",
    "trace_skeleton",
]


class ManualClock:
    """A deterministic clock for tests: advances only when told to.

    Instances are callables returning the current time in seconds, so they
    drop into any ``clock=`` seam (:class:`Tracer`, the hierarchical
    searcher, ...).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` that advances the clock instead."""
        self.advance(seconds)


@dataclass
class Span:
    """One timed, named interval in a trace tree."""

    name: str
    start_s: float
    end_s: float | None = None
    worker: str = "main"
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is not finished")
        return self.end_s - self.start_s

    def finish(self, end_s: float) -> "Span":
        """Close the span at an explicit timestamp (manual API)."""
        if self.end_s is not None:
            raise ValueError(f"span {self.name!r} already finished")
        if end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r}: end {end_s} precedes start {self.start_s}"
            )
        self.end_s = end_s
        return self

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; chainable inside ``with`` blocks."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list:
        return [s for s in self.walk() if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of every descendant span named *name*."""
        return sum(s.duration_s for s in self.find_all(name))

    def to_dict(self, *, times: bool = True) -> dict:
        """Nested plain-dict form (``times=False`` strips start/end/durations).

        Attribute values pass through :func:`_jsonable` so numpy scalars
        from instrumented code never leak into the JSON export.
        """
        out: dict[str, Any] = {"name": self.name, "worker": self.worker}
        if times:
            out["start_s"] = self.start_s
            out["end_s"] = self.end_s
        if self.attrs:
            out["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.children:
            out["children"] = [c.to_dict(times=times) for c in self.children]
        return out


class _NullSpan:
    """Inert span handed out by disabled tracers; absorbs every call."""

    __slots__ = ()
    name = ""
    worker = ""
    attrs: dict = {}
    children: list = []
    start_s = 0.0
    end_s = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self, end_s: float) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_worker", "_attrs", "_parent", "_span")

    def __init__(self, tracer, name, worker, parent, attrs):
        self._tracer = tracer
        self._name = name
        self._worker = worker
        self._parent = parent
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(
            self._name, worker=self._worker, parent=self._parent, attrs=self._attrs
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)


class _Suppressed:
    """Context manager flipping a thread-local no-trace flag."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        self._previous = False

    def __enter__(self) -> None:
        local = self._tracer._local
        self._previous = getattr(local, "suppressed", False)
        local.suppressed = True

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._local.suppressed = self._previous


class Tracer:
    """Collects span trees; thread-safe, with per-thread implicit nesting."""

    def __init__(
        self, *, clock: Callable[[], float] | None = None, enabled: bool = True
    ) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.enabled = enabled
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- implicit (context-manager / decorator) API -------------------------
    def span(
        self,
        name: str,
        *,
        worker: str | None = None,
        parent: Span | None = None,
        **attrs: Any,
    ):
        """Open a child of the current span (or of *parent* if given).

        Usable as ``with tracer.span("deep_search", shard=3) as sp:``. The
        span nests under this thread's innermost open span unless an
        explicit ``parent`` crosses threads (the shard fan-out case).
        """
        if not self.enabled or getattr(self._local, "suppressed", False):
            return _NULL_CONTEXT
        return _SpanContext(self, name, worker, parent, attrs)

    def suppressed(self):
        """Context manager silencing this thread's spans while active.

        Used around work that may outlive its logical parent span — e.g. a
        hedged duplicate request abandoned after its deadline — whose nested
        spans would otherwise escape the tree as orphans.
        """
        return _Suppressed(self)

    def traced(self, name: str | None = None, **attrs: Any):
        """Decorator form: trace every call of the wrapped function."""

        def deco(func):
            span_name = name if name is not None else func.__qualname__

            def wrapper(*args: Any, **kwargs: Any):
                with self.span(span_name, **attrs):
                    return func(*args, **kwargs)

            wrapper.__name__ = func.__name__
            wrapper.__qualname__ = func.__qualname__
            wrapper.__doc__ = func.__doc__
            wrapper.__wrapped__ = func
            return wrapper

        return deco

    # -- explicit (callback-driven) API -------------------------------------
    def start_span(
        self,
        name: str,
        *,
        start_s: float | None = None,
        parent: Span | None = None,
        worker: str | None = None,
        **attrs: Any,
    ):
        """Open a span with an explicit parent/timestamp; caller must
        ``finish()`` it. Does not touch the thread-local stack — the API for
        event-loop code where span lifetime is not a ``with`` block."""
        if not self.enabled:
            return _NULL_SPAN
        if getattr(self._local, "suppressed", False):
            return _NULL_SPAN
        start = self.clock() if start_s is None else start_s
        span = Span(
            name,
            start_s=start,
            worker=self._resolve_worker(worker, parent),
            attrs=dict(attrs),
        )
        self._attach(span, parent)
        return span

    def record(
        self,
        name: str,
        *,
        start_s: float,
        end_s: float,
        parent: Span | None = None,
        worker: str | None = None,
        **attrs: Any,
    ):
        """Record an already-elapsed interval as a finished span."""
        span = self.start_span(
            name, start_s=start_s, parent=parent, worker=worker, **attrs
        )
        span.finish(end_s)
        return span

    # -- internals ----------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _resolve_worker(self, worker: str | None, parent: Span | None) -> str:
        if worker is not None:
            return worker
        if parent is not None:
            return parent.worker
        return threading.current_thread().name

    def _attach(self, span: Span, parent: Span | None) -> None:
        with self._lock:
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    def _open(self, name, *, worker, parent, attrs) -> Span:
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        span = Span(
            name,
            start_s=self.clock(),
            worker=self._resolve_worker(worker, parent),
            attrs=attrs,
        )
        self._attach(span, parent)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end_s = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (exit order violated)
            try:
                stack.remove(span)
            except ValueError:
                pass

    # -- management ---------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.roots = []

    def finished_roots(self) -> list:
        """Completed root spans (in-flight ones are excluded)."""
        with self._lock:
            return [r for r in self.roots if r.finished]


#: Process-wide default tracer. Disabled until someone opts in, so library
#: instrumentation stays effectively free.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code reports to."""
    return _DEFAULT


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = tracer
    return previous


def enable_tracing(*, clock: Callable[[], float] | None = None) -> Tracer:
    """Install and return a fresh enabled process-wide tracer."""
    tracer = Tracer(clock=clock, enabled=True)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the free-when-off default."""
    set_tracer(Tracer(enabled=False))


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _as_spans(spans) -> list:
    if isinstance(spans, Tracer):
        return spans.finished_roots()
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


def spans_to_json(spans, *, times: bool = True, indent: int | None = None) -> str:
    """Nested-JSON export of one or more span trees."""
    roots = _as_spans(spans)
    return json.dumps([r.to_dict(times=times) for r in roots], indent=indent)


def trace_skeleton(spans) -> list:
    """Structure-only view: names, workers, nesting — durations stripped.

    This is what the golden-trace regression test pins down: the span
    taxonomy and phase order are stable run to run, wall-clock noise is not.
    """
    roots = _as_spans(spans)

    def strip(span: Span) -> dict:
        out: dict[str, Any] = {"name": span.name}
        if span.children:
            out["children"] = [strip(c) for c in span.children]
        return out

    return [strip(r) for r in roots]


def chrome_trace(spans, *, align_roots: bool = False) -> dict:
    """Export to the Chrome ``chrome://tracing`` / Perfetto JSON format.

    Complete ("ph": "X") events with microsecond timestamps, one ``tid`` per
    worker (in order of first appearance). ``align_roots=True`` rebases each
    root tree to t=0 — useful when one artifact mixes clocks (a wall-clock
    retrieval trace next to a virtual-time generation trace).
    """
    roots = _as_spans(spans)
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_of(worker: str) -> int:
        if worker not in tids:
            tids[worker] = len(tids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tids[worker],
                    "args": {"name": worker},
                }
            )
        return tids[worker]

    if align_roots:
        bases = {id(r): r.start_s for r in roots}
    else:
        base = min((r.start_s for r in roots), default=0.0)
        bases = {id(r): base for r in roots}

    for root in roots:
        base = bases[id(root)]
        for span in root.walk():
            if not span.finished:
                continue
            events.append(
                {
                    "name": span.name,
                    "cat": root.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_of(span.worker),
                    "ts": (span.start_s - base) * 1e6,
                    "dur": span.duration_s * 1e6,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value: Any) -> Any:
    """Coerce attr values (incl. numpy scalars) into JSON-safe types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array-likes
            return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)
