"""Discrete-event simulation of the online Hermes serving pipeline.

The analytical model (:mod:`repro.perfmodel`) computes closed-form
steady-state numbers; this simulator *executes* the serving system instead:
batches flow through encode → (sample → deep → prefill → decode) x strides,
contending for one GPU and one retrieval node per cluster. With several
batches in flight the retrieval fleet and the GPU overlap across batches —
the behaviour the paper's "max of stage times" throughput analysis
approximates — and the simulator reports where the approximation holds and
where queueing skews it.

Stage durations come from the same calibrated cost models as the analytical
path, so simulated and closed-form results are directly comparable (see
``tests/serving/test_simulator.py`` for the cross-validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..llm.generation import GenerationConfig
from ..llm.inference import InferenceModel
from ..obs.trace import Tracer
from ..perfmodel.measurements import EncoderCostModel, RetrievalCostModel
from .events import EventLoop, Resource
from .faults import FleetFaultSchedule


@dataclass(frozen=True)
class StagePlan:
    """Per-batch stage durations driving the simulation.

    ``sample_seconds[i]`` / ``deep_seconds[i]`` are node *i*'s busy time for
    one batch's sampling / deep-search phase (0 when the node is not
    involved); GPU stages are scalars.
    """

    encode_s: float
    sample_seconds: np.ndarray
    deep_seconds: np.ndarray
    first_prefill_s: float
    later_prefill_s: float
    decode_stride_s: float
    n_strides: int

    def __post_init__(self) -> None:
        if self.n_strides <= 0:
            raise ValueError("n_strides must be positive")
        if len(self.sample_seconds) != len(self.deep_seconds):
            raise ValueError("sample and deep vectors must have equal length")

    @property
    def n_nodes(self) -> int:
        return len(self.sample_seconds)


def plan_from_models(
    config: GenerationConfig,
    *,
    shard_tokens: list[float],
    deep_loads: np.ndarray,
    inference: InferenceModel | None = None,
    encoder: EncoderCostModel | None = None,
    sample_nprobe: int = 8,
    deep_nprobe: int = 128,
) -> StagePlan:
    """Build a stage plan from the calibrated cost models.

    ``deep_loads[i]`` is the number of the batch's queries deep-searching
    cluster *i* (e.g. from :func:`repro.perfmodel.aggregate.expected_deep_loads`).
    """
    inference = inference or InferenceModel()
    encoder = encoder or EncoderCostModel()
    cost = RetrievalCostModel()
    loads = np.asarray(deep_loads, dtype=np.int64)
    if len(loads) != len(shard_tokens):
        raise ValueError("deep_loads and shard_tokens must have equal length")
    sample = np.array(
        [
            cost.batch_latency(tokens, config.batch, nprobe=sample_nprobe)
            for tokens in shard_tokens
        ]
    )
    deep = np.array(
        [
            cost.batch_latency(tokens, int(load), nprobe=deep_nprobe) if load else 0.0
            for tokens, load in zip(shard_tokens, loads)
        ]
    )
    from ..llm.kvcache import IdealPrefixCache

    cache = IdealPrefixCache(input_tokens=config.input_tokens, stride_tokens=config.stride)
    later_fraction = cache.prefill_fraction(1) if config.prefix_cached else 1.0
    later_tokens = max(1, int(round(config.input_tokens * later_fraction)))
    return StagePlan(
        encode_s=encoder.batch_latency(config.batch),
        sample_seconds=sample,
        deep_seconds=deep,
        first_prefill_s=inference.prefill(config.batch, config.input_tokens).latency_s,
        later_prefill_s=inference.prefill(config.batch, later_tokens).latency_s,
        decode_stride_s=inference.decode(config.batch, config.stride).latency_s,
        n_strides=config.n_strides,
    )


@dataclass
class BatchRecord:
    """Lifecycle timestamps of one simulated batch."""

    batch_id: int
    submitted_at: float
    started_at: float = 0.0
    first_token_at: float = 0.0
    completed_at: float = 0.0
    #: retrieval phases that skipped a down node (graceful degradation)
    skipped_nodes: list = field(default_factory=list)

    @property
    def ttft_s(self) -> float:
        return self.first_token_at - self.submitted_at

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.submitted_at

    @property
    def degraded(self) -> bool:
        """True when any retrieval phase lost a node's contribution."""
        return bool(self.skipped_nodes)


@dataclass
class ServingReport:
    """Aggregate outcome of a simulation run."""

    batches: list[BatchRecord]
    batch_size: int
    makespan_s: float
    gpu_utilization: float
    node_utilization: np.ndarray

    @property
    def throughput_qps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return len(self.batches) * self.batch_size / self.makespan_s

    @property
    def degraded_batches(self) -> int:
        """Batches that lost at least one node's retrieval contribution."""
        return sum(1 for b in self.batches if b.degraded)

    @property
    def availability(self) -> float:
        """Fraction of batches served with full fleet coverage."""
        return 1.0 - self.degraded_batches / len(self.batches)

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean([b.latency_s for b in self.batches]))

    @property
    def mean_ttft_s(self) -> float:
        return float(np.mean([b.ttft_s for b in self.batches]))

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile([b.latency_s for b in self.batches], q))

    def slo_attainment(self, latency_slo_s: float) -> float:
        """Fraction of batches completing within a latency SLO.

        The production-systems lens the paper motivates TTFT work with
        ("minimizing TTFT is crucial for ... quality of service").
        """
        if latency_slo_s <= 0:
            raise ValueError("latency_slo_s must be positive")
        met = sum(1 for b in self.batches if b.latency_s <= latency_slo_s)
        return met / len(self.batches)

    def ttft_slo_attainment(self, ttft_slo_s: float) -> float:
        """Fraction of batches whose first token arrives within the SLO."""
        if ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive")
        met = sum(1 for b in self.batches if b.ttft_s <= ttft_slo_s)
        return met / len(self.batches)


class PipelineSimulator:
    """Executes a batch stream against one GPU and a retrieval fleet.

    Each batch runs its stages in order; stages contend for their resource,
    so concurrent batches pipeline naturally (batch *k+1* retrieves while
    batch *k* occupies the GPU). A retrieval phase holds **all** of its
    participating nodes and completes when the slowest finishes, matching
    the synchronous scatter-gather of the paper's distributed search.

    With a :class:`~repro.serving.faults.FleetFaultSchedule` the fleet is
    chaotic: a node that is down when a phase reaches it is either skipped
    (``dead_node_policy="skip"`` — the batch proceeds degraded, the
    searcher's deadline/breaker behaviour at serving scale) or waited for
    (``"wait"`` — the synchronous-scatter-gather worst case, where one dead
    node stalls every batch until it recovers). Straggler windows scale the
    node's phase duration by their factor (sampled at phase entry).
    """

    def __init__(
        self,
        plan: StagePlan,
        *,
        batch_size: int,
        faults: FleetFaultSchedule | None = None,
        dead_node_policy: str = "skip",
        tracer: Tracer | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if dead_node_policy not in ("skip", "wait"):
            raise ValueError(
                f"dead_node_policy must be 'skip' or 'wait', got {dead_node_policy!r}"
            )
        if faults is not None:
            if faults.n_nodes != plan.n_nodes:
                raise ValueError(
                    f"fault schedule covers {faults.n_nodes} nodes, "
                    f"plan has {plan.n_nodes}"
                )
            if dead_node_policy == "wait" and faults.has_unrecoverable:
                raise ValueError(
                    "dead_node_policy='wait' with an unrecoverable outage "
                    "would stall the simulation forever; use 'skip'"
                )
        self.plan = plan
        self.batch_size = batch_size
        self.faults = faults
        self.dead_node_policy = dead_node_policy
        self.tracer = tracer
        self.loop = EventLoop()
        self.gpu = Resource(self.loop, "gpu")
        self.nodes = [
            Resource(self.loop, f"node{i}") for i in range(plan.n_nodes)
        ]
        self._records: list[BatchRecord] = []
        #: per-batch phase marks ``(name, end_time, attrs, node_holds)``; the
        #: span tree is reconstructed from these in virtual time at report
        #: time, so simulated traces decompose exactly like measured ones.
        self._marks: list[list] = []

    @property
    def _tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    def _mark(self, record: BatchRecord, name: str, holds=None, **attrs) -> None:
        if self._tracing:
            self._marks[record.batch_id].append(
                (name, self.loop.now, attrs, holds or [])
            )

    # -- batch state machine -----------------------------------------------
    def submit(self, delay: float = 0.0) -> None:
        """Enqueue one batch *delay* seconds from now."""
        record = BatchRecord(batch_id=len(self._records), submitted_at=0.0)
        self._records.append(record)
        self._marks.append([])

        def arrive() -> None:
            record.submitted_at = self.loop.now
            self._start_encode(record)

        self.loop.schedule(delay, arrive)

    def _start_encode(self, record: BatchRecord) -> None:
        def begin() -> None:
            record.started_at = self.loop.now

            def done() -> None:
                self.gpu.release()
                # The encode phase is charged from submission, so the span
                # includes time queued behind the GPU (reported separately).
                self._mark(
                    record,
                    "encode",
                    queue_wait_s=record.started_at - record.submitted_at,
                )
                self._start_stride(record, stride=0)

            self.loop.schedule(self.plan.encode_s, done)

        self.gpu.acquire(begin)

    def _hold_node(self, i: int, duration: float, then, holds: "list | None") -> None:
        """Occupy node *i* for *duration*, logging the actual busy interval.

        The interval starts when the node is *acquired* (FIFO queueing behind
        other batches shifts it past phase entry), which is what a per-node
        span should show.
        """
        if holds is None:
            self.nodes[i].hold_for(duration, then=then)
            return
        node = self.nodes[i]

        def occupied() -> None:
            start = self.loop.now

            def done() -> None:
                node.release()
                holds.append((i, start, self.loop.now))
                then()

            self.loop.schedule(duration, done)

        node.acquire(occupied)

    def _retrieval_phase(
        self,
        durations: np.ndarray,
        record: BatchRecord,
        then_continue,
        holds: "list | None" = None,
    ) -> None:
        """Scatter a phase to all involved nodes; continue when all finish.

        Fault handling happens at phase entry: a down node is skipped (the
        batch degrades) or waited for until recovery; a straggling node's
        busy time is scaled by its slowdown factor.
        """
        involved = [i for i, d in enumerate(durations) if d > 0]
        if not involved:
            then_continue()
            return
        remaining = {"count": len(involved)}

        def node_done() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                then_continue()

        now = self.loop.now
        for i in involved:
            duration = float(durations[i])
            if self.faults is not None:
                if self.faults.is_down(i, now):
                    if self.dead_node_policy == "skip":
                        record.skipped_nodes.append(i)
                        node_done()
                        continue
                    recovery = self.faults.recovery_time(i, now)
                    duration *= self.faults.slowdown(i, recovery)
                    self.loop.schedule(
                        recovery - now,
                        lambda i=i, d=duration: self._hold_node(
                            i, d, node_done, holds
                        ),
                    )
                    continue
                duration *= self.faults.slowdown(i, now)
            self._hold_node(i, duration, node_done, holds)

    def _start_stride(self, record: BatchRecord, stride: int) -> None:
        plan = self.plan
        sample_holds = [] if self._tracing else None
        deep_holds = [] if self._tracing else None

        def after_deep() -> None:
            self._mark(record, "deep_search", holds=deep_holds, stride=stride)
            prefill = plan.first_prefill_s if stride == 0 else plan.later_prefill_s

            def begin_gpu() -> None:
                def prefill_done() -> None:
                    if stride == 0:
                        record.first_token_at = self.loop.now
                    self._mark(record, "prefill", stride=stride)

                    def decode_done() -> None:
                        self.gpu.release()
                        self._mark(record, "decode", stride=stride)
                        if stride + 1 < plan.n_strides:
                            self._start_stride(record, stride + 1)
                        else:
                            record.completed_at = self.loop.now

                    self.loop.schedule(plan.decode_stride_s, decode_done)

                self.loop.schedule(prefill, prefill_done)

            self.gpu.acquire(begin_gpu)

        def after_sample() -> None:
            self._mark(record, "sample", holds=sample_holds, stride=stride)
            self._retrieval_phase(
                plan.deep_seconds, record, after_deep, holds=deep_holds
            )

        self._retrieval_phase(
            plan.sample_seconds, record, after_sample, holds=sample_holds
        )

    # -- driving ---------------------------------------------------------------
    def run(
        self, n_batches: int, *, arrival_interval_s: float = 0.0
    ) -> ServingReport:
        """Simulate *n_batches* arrivals and return the aggregate report.

        ``arrival_interval_s`` of 0 is a closed burst (everything queued at
        t=0, maximal pipelining); positive values model an open arrival
        process.
        """
        if n_batches <= 0:
            raise ValueError("n_batches must be positive")
        for k in range(n_batches):
            self.submit(delay=k * arrival_interval_s)
        self.loop.run()
        return self._report()

    def run_poisson(
        self, n_batches: int, *, mean_interval_s: float, seed: int = 0
    ) -> ServingReport:
        """Simulate a Poisson (memoryless) open arrival process.

        The open-loop counterpart of :meth:`run`: batch inter-arrival times
        are exponential with the given mean, the standard model for
        independent user traffic. Queueing bursts emerge naturally, which is
        what SLO attainment under load actually measures.
        """
        if n_batches <= 0:
            raise ValueError("n_batches must be positive")
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")
        rng = np.random.default_rng(seed)
        arrival = 0.0
        for _ in range(n_batches):
            self.submit(delay=arrival)
            arrival += float(rng.exponential(mean_interval_s))
        self.loop.run()
        return self._report()

    def _emit_trace(self) -> None:
        """Reconstruct per-batch span trees in virtual (simulated) time.

        Each batch becomes a root span ``[submitted_at, completed_at]`` whose
        phase children tile the interval exactly — consecutive phases share a
        boundary, so child durations telescope to the reported batch latency
        with no gaps. Queue waits are charged to the phase that waited. Node
        busy intervals hang off their phase with ``worker="node<i>"``.
        """
        tracer = self.tracer
        for record, marks in zip(self._records, self._marks):
            root = tracer.record(
                "sim_batch",
                start_s=record.submitted_at,
                end_s=record.completed_at,
                worker=f"batch{record.batch_id}",
                batch_id=record.batch_id,
                batch_size=self.batch_size,
                degraded=record.degraded,
            )
            prev = record.submitted_at
            for name, end, attrs, holds in marks:
                phase = tracer.record(
                    name, start_s=prev, end_s=end, parent=root, **attrs
                )
                for node_id, start, stop in holds:
                    tracer.record(
                        "node_busy",
                        start_s=start,
                        end_s=stop,
                        parent=phase,
                        worker=f"node{node_id}",
                        node=node_id,
                    )
                prev = end

    def _report(self) -> ServingReport:
        if self._tracing:
            self._emit_trace()
        makespan = max(r.completed_at for r in self._records)
        gpu_util = self.gpu.busy_seconds / makespan if makespan else 0.0
        node_util = np.array(
            [n.busy_seconds / makespan if makespan else 0.0 for n in self.nodes]
        )
        return ServingReport(
            batches=list(self._records),
            batch_size=self.batch_size,
            makespan_s=makespan,
            gpu_utilization=gpu_util,
            node_utilization=node_util,
        )
