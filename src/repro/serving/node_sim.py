"""Intra-node work-stealing simulation of FAISS query scheduling.

The paper describes FAISS batch execution as "one thread per query,
greedily processed ... i.e. work stealing" (§6 Takeaway 1); the calibrated
cost model summarises it with a continuous occupancy factor
(:meth:`RetrievalCostModel.waves`). This module simulates the actual list
scheduling — each queued query starts on the earliest-free core — so the
approximation can be validated and per-query latency distributions (not just
batch makespans) studied.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NodeScheduleResult:
    """Outcome of scheduling one batch on one node."""

    makespan_s: float
    per_query_completion_s: np.ndarray
    core_busy_s: np.ndarray

    @property
    def mean_completion_s(self) -> float:
        return float(self.per_query_completion_s.mean())

    @property
    def utilization(self) -> float:
        total = self.core_busy_s.sum()
        capacity = len(self.core_busy_s) * self.makespan_s
        return float(total / capacity) if capacity else 0.0


def schedule_batch(query_latencies: np.ndarray, cores: int) -> NodeScheduleResult:
    """Greedy list scheduling: each query starts on the earliest-free core.

    ``query_latencies`` are the per-query service times (identical for a
    uniform batch; heterogeneous when queries carry different nProbe or hit
    differently sized cells). Queries are dispatched in order — FIFO arrival,
    as in a FAISS batch.
    """
    latencies = np.asarray(query_latencies, dtype=np.float64)
    if latencies.ndim != 1 or not len(latencies):
        raise ValueError("query_latencies must be a non-empty 1-D array")
    if (latencies < 0).any():
        raise ValueError("latencies must be non-negative")
    if cores <= 0:
        raise ValueError("cores must be positive")

    # Min-heap of (free_time, core_id).
    free_at = [(0.0, c) for c in range(cores)]
    heapq.heapify(free_at)
    completion = np.empty(len(latencies))
    busy = np.zeros(cores)
    for qi, service in enumerate(latencies):
        start, core = heapq.heappop(free_at)
        end = start + float(service)
        completion[qi] = end
        busy[core] += float(service)
        heapq.heappush(free_at, (end, core))
    return NodeScheduleResult(
        makespan_s=float(completion.max()),
        per_query_completion_s=completion,
        core_busy_s=busy,
    )


def waves_approximation_error(
    batch: int, cores: int, *, service_s: float = 1.0, exponent: float = 0.97
) -> float:
    """Relative error of the continuous waves model for a uniform batch.

    Returns ``(model - simulated) / simulated`` where the model is
    ``service * max(1, batch/cores) ** exponent`` and the simulation is exact
    list scheduling. Positive means the model is pessimistic.
    """
    simulated = schedule_batch(np.full(batch, service_s), cores).makespan_s
    model = service_s * max(1.0, batch / cores) ** exponent
    return (model - simulated) / simulated
