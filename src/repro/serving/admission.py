"""Admission control, CoDel-style load shedding, and the brownout ladder.

An unbounded serving queue converts overload into unbounded latency: when
offered load exceeds capacity the queue only ever grows, every request
completes eventually — and late — and goodput (requests served *within their
deadline*) collapses to zero even though throughput looks healthy. The
overload-safe alternative bounds every stage:

- **Admission control** — a bounded queue that fails fast at submit time
  (:class:`~repro.core.errors.AdmissionRejectedError`) once ``max_queue``
  requests are waiting. Rejecting in microseconds is strictly better than
  queueing a request that will miss its deadline anyway.
- **Deadline shedding** — at *dequeue* time, a request whose remaining
  budget cannot cover the estimated service time is dropped
  (:class:`~repro.core.errors.DeadlineExceededError`, ``stage="queue"``)
  instead of being executed late. The service-time estimate is an EWMA of
  recent batch service times, so the shed decision tracks the fleet's
  current speed.
- **Brownout ladder** — before shedding, quality degrades stepwise: the
  controller watches the queue *sojourn* delay CoDel-style (persistent
  delay above ``delay_target_s`` for ``escalate_after_s`` escalates; delay
  below target for the longer ``clear_after_s`` de-escalates — the
  hysteresis that prevents level flapping). Each level maps to
  :class:`BrownoutKnobs`: a looser semantic-cache threshold and smaller
  deep-search fan-out/nprobe, trading bounded accuracy for capacity.

The controller is passive and clock-injectable: the batcher calls
:meth:`AdmissionController.admit` on submit and
:meth:`AdmissionController.observe` on dequeue; all state transitions are
derived from those observations. Everything is observable via the process
registry (``serving_queue_depth``, ``serving_admission_rejected_total``,
``serving_deadline_shed_total``, ``serving_brownout_level``,
``serving_degradation_level`` histogram).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.errors import AdmissionRejectedError
from ..obs.metrics import get_registry

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BrownoutKnobs",
    "DEGRADATION_BUCKETS",
]

#: Degradation-level histogram buckets (levels, not seconds).
DEGRADATION_BUCKETS = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class BrownoutKnobs:
    """Quality knobs at one brownout level (level 0 = full quality).

    ``semantic_slack`` loosens the cache's semantic threshold by that much
    (accepting slightly-further near-duplicates instead of searching);
    ``m_scale`` / ``nprobe_scale`` multiply the deep-search fan-out and
    probe depth (floored at 1 by the consumer). The default ladder degrades
    cache strictness first — a looser cache hit costs ~nothing and its NDCG
    delta is measured — and search depth second.
    """

    semantic_slack: float = 0.0
    m_scale: float = 1.0
    nprobe_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.semantic_slack < 0:
            raise ValueError(f"semantic_slack must be >= 0, got {self.semantic_slack}")
        for name in ("m_scale", "nprobe_scale"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    def apply(self, m: int, nprobe: int) -> tuple:
        """Scaled ``(m, nprobe)``, floored at 1 each."""
        return (
            max(1, int(round(m * self.m_scale))),
            max(1, int(round(nprobe * self.nprobe_scale))),
        )


#: The default degradation ladder, mildest first. Level 0 (full quality) is
#: implicit; the deepest level still searches (m, nprobe floored at 1) —
#: shedding, not level N, is the final overload response.
DEFAULT_LADDER = (
    BrownoutKnobs(semantic_slack=0.010, m_scale=1.0, nprobe_scale=1.0),
    BrownoutKnobs(semantic_slack=0.020, m_scale=0.67, nprobe_scale=0.5),
    BrownoutKnobs(semantic_slack=0.030, m_scale=0.34, nprobe_scale=0.25),
)


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the overload layer.

    ``max_queue`` bounds the waiting-request count (submit past it rejects).
    ``default_deadline_s`` applies to requests submitted without an explicit
    deadline (``None`` = such requests never expire). ``delay_target_s`` is
    the CoDel-style acceptable queue sojourn; sojourns above it for
    ``escalate_after_s`` raise the brownout level, sojourns below it for
    ``clear_after_s`` lower it (``clear_after_s`` > ``escalate_after_s``
    gives the ladder hysteresis). ``ladder`` lists the knobs per level
    above 0. ``service_ewma_alpha`` smooths the per-request service-time
    estimate used by deadline shedding.
    """

    max_queue: int = 256
    default_deadline_s: float | None = None
    delay_target_s: float = 0.005
    escalate_after_s: float = 0.05
    clear_after_s: float = 0.2
    ladder: tuple = DEFAULT_LADDER
    service_ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be positive, got {self.default_deadline_s}"
            )
        if self.delay_target_s <= 0:
            raise ValueError(f"delay_target_s must be positive, got {self.delay_target_s}")
        if self.escalate_after_s <= 0 or self.clear_after_s <= 0:
            raise ValueError("escalate_after_s and clear_after_s must be positive")
        if self.clear_after_s < self.escalate_after_s:
            raise ValueError(
                "clear_after_s must be >= escalate_after_s (hysteresis), got "
                f"{self.clear_after_s} < {self.escalate_after_s}"
            )
        if not 0.0 < self.service_ewma_alpha <= 1.0:
            raise ValueError(
                f"service_ewma_alpha must be in (0, 1], got {self.service_ewma_alpha}"
            )
        for level, knobs in enumerate(self.ladder, start=1):
            if not isinstance(knobs, BrownoutKnobs):
                raise TypeError(f"ladder level {level} is not BrownoutKnobs: {knobs!r}")

    @property
    def max_level(self) -> int:
        return len(self.ladder)


class AdmissionController:
    """Tracks queue pressure; decides reject / shed / degrade.

    Thread-safe: ``admit`` runs on client threads while ``observe`` runs on
    the batcher worker. The brownout level moves at most one step per
    observation, driven by how long the queue delay has been continuously
    above (or below) the CoDel target.
    """

    def __init__(self, config: AdmissionConfig | None = None, *, clock=None) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock if clock is not None else time.perf_counter
        self._lock = threading.Lock()
        self._level = 0
        self._above_since: float | None = None
        self._below_since: float | None = None
        self._service_ewma: float | None = None
        self.rejected = 0
        self.shed = 0

    # -- submit side ---------------------------------------------------------
    def admit(self, queue_depth: int) -> None:
        """Raise :class:`AdmissionRejectedError` when the queue is full."""
        registry = get_registry()
        registry.gauge(
            "serving_queue_depth", "requests waiting in the serving queue"
        ).set(queue_depth)
        if queue_depth >= self.config.max_queue:
            with self._lock:
                self.rejected += 1
            registry.counter(
                "serving_admission_rejected_total",
                "requests fail-fast rejected by the bounded serving queue",
            ).inc()
            raise AdmissionRejectedError(queue_depth, self.config.max_queue)

    def deadline_for(self, deadline_s: float | None) -> float | None:
        """Resolve a request's deadline (explicit wins over the default)."""
        if deadline_s is not None:
            return float(deadline_s)
        return self.config.default_deadline_s

    # -- dequeue side --------------------------------------------------------
    def should_shed(self, remaining_s: float | None) -> bool:
        """True when the remaining budget cannot cover the estimated service.

        Conservative before any service time has been observed: only
        already-expired requests shed. Callers count the shed on
        ``serving_deadline_shed_total`` via :meth:`record_shed`.
        """
        if remaining_s is None:
            return False
        if remaining_s <= 0:
            return True
        with self._lock:
            estimate = self._service_ewma
        return estimate is not None and remaining_s < estimate

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1
        get_registry().counter(
            "serving_deadline_shed_total",
            "requests dropped at dequeue because their deadline was unmeetable",
        ).inc()

    def record_service_time(self, seconds: float) -> None:
        """Feed one batch's *per-request-visible* service time into the EWMA."""
        seconds = max(float(seconds), 0.0)
        alpha = self.config.service_ewma_alpha
        with self._lock:
            if self._service_ewma is None:
                self._service_ewma = seconds
            else:
                self._service_ewma += alpha * (seconds - self._service_ewma)

    @property
    def service_estimate_s(self) -> float | None:
        with self._lock:
            return self._service_ewma

    def observe(self, queue_delay_s: float) -> int:
        """Feed one dequeued request's sojourn; returns the brownout level.

        CoDel-flavoured: a single delay spike does nothing — the level
        rises only when the sojourn stays above ``delay_target_s`` for
        ``escalate_after_s`` straight, and falls only after
        ``clear_after_s`` continuously below it.
        """
        now = self._clock()
        cfg = self.config
        with self._lock:
            if queue_delay_s > cfg.delay_target_s:
                self._below_since = None
                if self._above_since is None:
                    self._above_since = now
                elif (
                    now - self._above_since >= cfg.escalate_after_s
                    and self._level < cfg.max_level
                ):
                    self._level += 1
                    self._above_since = now  # one step per escalation window
            else:
                self._above_since = None
                if self._below_since is None:
                    self._below_since = now
                elif now - self._below_since >= cfg.clear_after_s and self._level > 0:
                    self._level -= 1
                    self._below_since = now
            level = self._level
        registry = get_registry()
        registry.gauge(
            "serving_brownout_level", "current quality-degradation level"
        ).set(level)
        registry.histogram(
            "serving_queue_delay_seconds", "request sojourn time in the serving queue"
        ).observe(max(queue_delay_s, 0.0))
        return level

    # -- quality mapping -----------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def knobs(self, level: int | None = None) -> BrownoutKnobs:
        """The quality knobs for *level* (default: the current level)."""
        if level is None:
            level = self.level
        if level <= 0:
            return BrownoutKnobs()
        ladder = self.config.ladder
        return ladder[min(int(level), len(ladder)) - 1]

    def reset(self) -> None:
        with self._lock:
            self._level = 0
            self._above_since = None
            self._below_since = None
            self._service_ewma = None
            self.rejected = 0
            self.shed = 0
