"""Replica groups: health-aware failover so node death costs latency, not NDCG.

The fault layer so far makes the fleet *degrade* gracefully — a crashed
shard's candidates simply vanish from the merge. That is the right floor,
but Hermes's one-index-per-node deployment makes it a permanent quality
loss: semantic clusters are unique, so a dead node removes a topic until a
human reboots it. Replication closes that gap: each cluster's index runs on
``n_replicas`` nodes, and a :class:`ReplicaGroup` wraps them behind the
standard shard surface (``shard_id`` / ``global_ids`` / ``centroid`` /
``search``) so it drops into a
:class:`~repro.core.clustering.ClusteredDatastore` — and therefore under
the routers, the hierarchical searcher, and the fault injector — unchanged.

Selection and failover:

- replica health is tracked by the existing
  :class:`~repro.core.hierarchical.ShardHealth` breaker, indexed by replica
  instead of by shard. A replica whose breaker is open is skipped.
- a call tries the preferred (lowest-index healthy) replica first; a
  :class:`~repro.core.errors.ShardError` fails over to the next healthy
  replica *within the same call* (``retrieval_failovers_total``), so the
  query pays one extra attempt of latency instead of losing the cluster.
  :class:`~repro.core.errors.ShardCrashedError` trips the breaker
  immediately; transient errors count toward its threshold.
- **background recovery**: every ``probe_interval`` group calls, one downed
  replica is probed by putting it first in the failover order — its success
  serves the call (replicas are exact copies), its failure falls through to
  a healthy replica. After ``recovery_successes`` *consecutive* probe
  successes the replica is re-admitted to normal selection
  (``retrieval_replica_recoveries_total``); any probe failure resets the
  streak. Until re-admission, a flaky replica sees at most one call per
  probe interval.

Only when every replica fails in one call does the group re-raise the last
error — at which point the searcher's own degradation machinery (breaker,
``failed_shards``, +inf candidate slots) takes over, exactly as it would
for an unreplicated shard.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

import numpy as np

from ..core.clustering import ClusteredDatastore
from ..core.errors import ShardCrashedError, ShardError
from ..core.hierarchical import ShardHealth
from ..obs.metrics import get_registry

__all__ = ["ReplicaGroup", "replicate_datastore", "replica_groups", "kill_replica"]


class ReplicaGroup:
    """N replicas of one shard behind the standard shard surface."""

    def __init__(
        self,
        replicas: Iterable,
        *,
        probe_interval: int = 8,
        recovery_successes: int = 3,
        breaker_threshold: int = 1,
    ) -> None:
        self.replicas = list(replicas)
        if not self.replicas:
            raise ValueError("a replica group needs at least one replica")
        ids = {int(r.shard_id) for r in self.replicas}
        if len(ids) != 1:
            raise ValueError(f"replicas disagree on shard_id: {sorted(ids)}")
        self.shard_id = ids.pop()
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1, got {probe_interval}")
        if recovery_successes < 1:
            raise ValueError(
                f"recovery_successes must be >= 1, got {recovery_successes}"
            )
        self.probe_interval = probe_interval
        self.recovery_successes = recovery_successes
        # The fleet breaker, repurposed per replica: cooldown is irrelevant
        # because the group never tick()s — an open replica stays out until
        # the probe loop closes it explicitly.
        self.health = ShardHealth(
            len(self.replicas), threshold=breaker_threshold, cooldown=1
        )
        self._lock = threading.Lock()
        self._calls = 0
        self._probe_streak = [0] * len(self.replicas)
        self.failovers = 0
        self.recoveries = 0

    # Delegate the passive shard surface (global_ids, centroid, index,
    # memory_bytes, ...) to the first replica — replicas are exact copies.
    def __getattr__(self, name: str):
        return getattr(self.replicas[0], name)

    def __len__(self) -> int:
        return len(self.replicas[0])

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def out_replicas(self) -> tuple:
        """Replica indices currently excluded from normal selection."""
        return tuple(
            i for i in range(len(self.replicas)) if self.health.is_open(i)
        )

    # -- selection ----------------------------------------------------------
    def _attempt_order(self) -> tuple[list, frozenset]:
        """Healthy replicas in preference order, a due probe prepended."""
        with self._lock:
            self._calls += 1
            probe_due = self._calls % self.probe_interval == 0
        out = set()
        healthy = []
        for i in range(len(self.replicas)):
            if self.health.is_open(i):
                out.add(i)
            else:
                healthy.append(i)
        order = list(healthy)
        probing = frozenset()
        if out:
            if probe_due and healthy:
                # Probe the longest-out replica by serving this call from it
                # (fallback to a healthy replica keeps the call safe).
                probe = min(out)
                order = [probe] + healthy
                probing = frozenset([probe])
            elif not healthy:
                # Nothing healthy left: every call is a probe of everything.
                order = sorted(out)
                probing = frozenset(out)
        return order, probing

    def _record_failure(self, idx: int, exc: ShardError, probing: bool) -> None:
        if probing:
            with self._lock:
                self._probe_streak[idx] = 0
        if isinstance(exc, ShardCrashedError):
            self.health.trip(idx)
        else:
            self.health.record_failure(idx)

    def _record_success(self, idx: int, probing: bool) -> None:
        if not probing:
            self.health.record_success(idx)
            return
        with self._lock:
            self._probe_streak[idx] += 1
            recovered = self._probe_streak[idx] >= self.recovery_successes
            if recovered:
                self._probe_streak[idx] = 0
                self.recoveries += 1
        if recovered:
            self.health.record_success(idx)  # closes the breaker: re-admitted
            get_registry().counter(
                "retrieval_replica_recoveries_total",
                "replicas re-admitted after consecutive probe successes",
            ).inc(shard=self.shard_id)

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None, **kwargs
    ):
        """Serve from the first replica that answers; fail over on ShardError."""
        order, probing = self._attempt_order()
        registry = get_registry()
        last_exc: ShardError | None = None
        for attempt, idx in enumerate(order):
            try:
                result = self.replicas[idx].search(queries, k, nprobe=nprobe, **kwargs)
            except ShardError as exc:
                self._record_failure(idx, exc, idx in probing)
                last_exc = exc
                if attempt + 1 < len(order):
                    self.failovers += 1
                    registry.counter(
                        "retrieval_failovers_total",
                        "calls failed over to another replica of the same shard",
                    ).inc(shard=self.shard_id)
                continue
            self._record_success(idx, idx in probing)
            registry.gauge(
                "retrieval_replicas_out",
                "replicas currently excluded from selection",
            ).set(len(self.out_replicas()), shard=self.shard_id)
            return result
        registry.gauge(
            "retrieval_replicas_out",
            "replicas currently excluded from selection",
        ).set(len(self.out_replicas()), shard=self.shard_id)
        assert last_exc is not None
        raise last_exc


def replicate_datastore(
    datastore: ClusteredDatastore,
    n_replicas: int = 2,
    *,
    probe_interval: int = 8,
    recovery_successes: int = 3,
    breaker_threshold: int = 1,
    wrap: "Callable | None" = None,
) -> ClusteredDatastore:
    """A datastore whose every shard is an ``n_replicas``-wide ReplicaGroup.

    Replicas share the underlying index (this process models N nodes serving
    the same cluster; memory is not duplicated). ``wrap(shard_id,
    replica_index, shard)`` optionally decorates each replica — the hook for
    per-replica fault injection::

        injector = FaultInjector(seed=7)
        chaos = lambda sid, r, s: (
            injector.wrap_shard(s, CrashStop(at_call=40)) if r == 0 else s
        )
        replicated = replicate_datastore(datastore, 2, wrap=chaos)
    """
    from dataclasses import replace

    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    groups = []
    for shard in datastore.shards:
        replicas = [
            wrap(shard.shard_id, r, shard) if wrap is not None else shard
            for r in range(n_replicas)
        ]
        groups.append(
            ReplicaGroup(
                replicas,
                probe_interval=probe_interval,
                recovery_successes=recovery_successes,
                breaker_threshold=breaker_threshold,
            )
        )
    return replace(datastore, shards=groups)


def replica_groups(datastore: ClusteredDatastore) -> list:
    """The ReplicaGroup shards of a datastore (for inspection/chaos)."""
    return [s for s in datastore.shards if isinstance(s, ReplicaGroup)]


def kill_replica(group: ReplicaGroup, replica_index: int, *, seed: int = 0, at_call: int = 0) -> None:
    """Crash-stop one replica in place (chaos helper for tests/experiments)."""
    from .faults import CrashStop, FaultInjector

    group.replicas[replica_index] = FaultInjector(seed).wrap_shard(
        group.replicas[replica_index], CrashStop(at_call=at_call)
    )
