"""Seeded, composable fault injection for the retrieval fleet.

Hermes deploys one index per node (§4/§6), so fleet availability is a
first-order property: a dead or slow node sits directly on the TTFT
critical path. This module provides the *chaos* half of the story — fault
models that wrap a shard's ``search`` so the searcher's survival machinery
(deadlines, retries, hedges, circuit breaker; see
:class:`repro.core.hierarchical.RetrievalPolicy`) can be exercised and
measured deterministically:

- :class:`CrashStop` — the node dies and stays dead (permanent
  :class:`~repro.core.errors.ShardCrashedError`);
- :class:`TransientFault` — independent per-call blips with probability
  ``p`` (:class:`~repro.core.errors.TransientShardError`), the retryable
  failure mode;
- :class:`OutageWindow` — a deterministic outage of ``n_calls`` calls that
  then *recovers*, for reproducing recovery behaviour exactly;
- :class:`Straggler` — latency injection, fixed or heavy-tailed (Pareto),
  the hedging/deadline stressor.

Every stochastic draw comes from a per-shard ``numpy.random.Generator``
seeded as ``default_rng([seed, shard_id])``, so a fault schedule is a pure
function of ``(seed, per-shard call sequence)`` — two runs with the same
seed produce identical failure schedules regardless of how shard fan-out
threads interleave *across* shards. (Calls racing on a single shard — e.g.
hedged duplicates — are serialised by a lock but their draw order follows
wall-clock arrival; pair probabilistic models with hedging only when that
nondeterminism is acceptable.)

Models compose: a shard can be both a straggler and transiently flaky.
Models are applied in order; delays accumulate, the first exception wins
and is raised without serving the accumulated delay (failures are fast).
Model instances hold per-shard state — give each shard its own instances.
"""

from __future__ import annotations

import abc
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping

import numpy as np

from ..core.clustering import ClusteredDatastore
from ..core.errors import ShardCrashedError, TransientShardError


class FaultModel(abc.ABC):
    """One failure mode bound to one shard."""

    @abc.abstractmethod
    def on_call(
        self, call_index: int, shard_id: int, rng: np.random.Generator
    ) -> float:
        """Inspect one ``search`` call; return extra latency seconds.

        Raise a :class:`~repro.core.errors.ShardError` subclass to fail the
        call instead.
        """

    def reset(self) -> None:
        """Clear any per-shard state (for reusing a model across runs)."""


class CrashStop(FaultModel):
    """Crash-stop: every call from ``at_call`` on raises, forever.

    With ``probability`` set, each call before ``at_call``-style triggering
    instead *becomes* the crash point with that probability (seeded), after
    which the shard stays dead — crash-stop, not crash-recover.
    """

    def __init__(self, at_call: int | None = 0, *, probability: float = 0.0) -> None:
        if at_call is None and probability <= 0:
            raise ValueError("need at_call or a positive probability")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.at_call = at_call
        self.probability = probability
        self._crashed = False

    def on_call(self, call_index: int, shard_id: int, rng: np.random.Generator) -> float:
        if not self._crashed:
            if self.at_call is not None and call_index >= self.at_call:
                self._crashed = True
            elif self.probability > 0 and rng.random() < self.probability:
                self._crashed = True
        if self._crashed:
            raise ShardCrashedError(shard_id)
        return 0.0

    def reset(self) -> None:
        self._crashed = False


class TransientFault(FaultModel):
    """Independent per-call transient errors with probability ``p``.

    The canonical retryable fault: the very next attempt may succeed, so a
    bounded-retry policy absorbs it. ``max_failures`` caps the total number
    of injected failures (a bounded burst that then fully recovers).
    """

    def __init__(self, probability: float, *, max_failures: int | None = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if max_failures is not None and max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.probability = probability
        self.max_failures = max_failures
        self._failures = 0

    def on_call(self, call_index: int, shard_id: int, rng: np.random.Generator) -> float:
        exhausted = self.max_failures is not None and self._failures >= self.max_failures
        if not exhausted and rng.random() < self.probability:
            self._failures += 1
            raise TransientShardError(shard_id)
        return 0.0

    def reset(self) -> None:
        self._failures = 0


class OutageWindow(FaultModel):
    """Deterministic transient outage: calls ``[start_call, start_call +
    n_calls)`` fail, then the shard recovers.

    Call indices make recovery exact and thread-order independent — e.g.
    ``OutageWindow(start_call=1, n_calls=1)`` fails a shard's first deep
    search (call 1) after a clean sampling probe (call 0), and the retry
    (call 2) succeeds.
    """

    def __init__(self, start_call: int, n_calls: int = 1) -> None:
        if start_call < 0:
            raise ValueError(f"start_call must be >= 0, got {start_call}")
        if n_calls < 1:
            raise ValueError(f"n_calls must be >= 1, got {n_calls}")
        self.start_call = start_call
        self.n_calls = n_calls

    def on_call(self, call_index: int, shard_id: int, rng: np.random.Generator) -> float:
        if self.start_call <= call_index < self.start_call + self.n_calls:
            raise TransientShardError(
                shard_id,
                f"shard {shard_id} in outage window "
                f"[{self.start_call}, {self.start_call + self.n_calls})",
            )
        return 0.0


class Straggler(FaultModel):
    """Latency injection: each call is slowed with probability ``p``.

    ``delay_s`` is the base injected latency. With ``heavy_tail_alpha`` the
    delay is ``delay_s * (1 + Pareto(alpha))`` — the paper-adjacent model
    for production stragglers whose tail is far fatter than exponential
    (small alpha ⇒ fatter tail; alpha <= 1 has infinite mean, use > 1 for
    bounded experiments). ``calls`` restricts the slowdown to exact call
    indices — the deterministic mode for hedge tests (e.g. ``calls=[1]``
    slows only the primary deep search; the hedged duplicate runs clean).
    """

    def __init__(
        self,
        delay_s: float,
        *,
        probability: float = 1.0,
        heavy_tail_alpha: float | None = None,
        calls: Iterable[int] | None = None,
    ) -> None:
        if delay_s <= 0:
            raise ValueError(f"delay_s must be positive, got {delay_s}")
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if heavy_tail_alpha is not None and heavy_tail_alpha <= 0:
            raise ValueError(f"heavy_tail_alpha must be positive, got {heavy_tail_alpha}")
        self.delay_s = delay_s
        self.probability = probability
        self.heavy_tail_alpha = heavy_tail_alpha
        self.calls = None if calls is None else frozenset(int(c) for c in calls)

    def on_call(self, call_index: int, shard_id: int, rng: np.random.Generator) -> float:
        if self.calls is not None and call_index not in self.calls:
            return 0.0
        if self.probability < 1.0 and rng.random() >= self.probability:
            return 0.0
        if self.heavy_tail_alpha is not None:
            return float(self.delay_s * (1.0 + rng.pareto(self.heavy_tail_alpha)))
        return self.delay_s


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a shard's injected-fault log."""

    call_index: int
    kind: str  # "ok" | "crash" | "transient" | "delay"
    delay_s: float = 0.0


class FaultyShard:
    """Wraps a shard so its ``search`` passes through the fault models.

    Everything else (``shard_id``, ``global_ids``, ``centroid``, ``index``,
    ...) delegates to the wrapped shard, so a :class:`FaultyShard` drops
    into a :class:`~repro.core.clustering.ClusteredDatastore` unchanged.
    The injected-fault ``log`` records every call's outcome for determinism
    checks and chaos-test assertions.
    """

    def __init__(
        self,
        inner,
        models: Iterable[FaultModel],
        rng: np.random.Generator,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.models = list(models)
        self.rng = rng
        self.sleep = sleep
        self.log: list[FaultEvent] = []
        self._calls = 0
        self._lock = threading.Lock()

    # Delegate the shard surface the searcher and routers use.
    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __len__(self) -> int:
        return len(self.inner)

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int | None = None, **kwargs
    ):
        with self._lock:
            idx = self._calls
            self._calls += 1
            delay = 0.0
            try:
                for model in self.models:
                    delay += model.on_call(idx, self.inner.shard_id, self.rng)
            except ShardCrashedError:
                self.log.append(FaultEvent(idx, "crash"))
                raise
            except TransientShardError:
                self.log.append(FaultEvent(idx, "transient"))
                raise
            self.log.append(FaultEvent(idx, "delay" if delay > 0 else "ok", delay))
        if delay > 0:
            self.sleep(delay)
        return self.inner.search(queries, k, nprobe=nprobe, **kwargs)

    @property
    def calls(self) -> int:
        return self._calls

    def reset(self) -> None:
        """Clear call counter, log, and model state (rng is *not* re-seeded)."""
        with self._lock:
            self._calls = 0
            self.log.clear()
            for model in self.models:
                model.reset()


class FaultInjector:
    """Builds fault-wrapped datastores with deterministic per-shard seeding.

    >>> injector = FaultInjector(seed=7)
    >>> chaotic = injector.wrap(datastore, {0: CrashStop(), 3: Straggler(0.05)})

    Each wrapped shard draws from ``default_rng([seed, shard_id])``, so the
    schedule depends only on the seed and the shard's own call sequence.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def wrap_shard(
        self,
        shard,
        models: FaultModel | Iterable[FaultModel],
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> FaultyShard:
        if isinstance(models, FaultModel):
            models = [models]
        rng = np.random.default_rng([self.seed, int(shard.shard_id)])
        return FaultyShard(shard, models, rng, sleep=sleep)

    def wrap(
        self,
        datastore: ClusteredDatastore,
        faults: Mapping[int, FaultModel | Iterable[FaultModel]],
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> ClusteredDatastore:
        """A shallow copy of *datastore* with faults injected per shard id.

        The underlying indices are shared, not copied — wrapping is cheap
        and the healthy datastore stays usable.
        """
        n = datastore.n_clusters
        unknown = sorted(s for s in faults if not 0 <= int(s) < n)
        if unknown:
            raise ValueError(f"fault map names unknown shard ids {unknown} (0..{n - 1})")
        shards = [
            self.wrap_shard(s, faults[s.shard_id], sleep=sleep)
            if s.shard_id in faults
            else s
            for s in datastore.shards
        ]
        return replace(datastore, shards=shards)


def kill_shards(
    datastore: ClusteredDatastore, shard_ids: Iterable[int], *, seed: int = 0
) -> ClusteredDatastore:
    """Convenience: crash-stop the given shards from their first call."""
    return FaultInjector(seed).wrap(
        datastore, {int(s): CrashStop() for s in shard_ids}
    )


def faulty_shards(datastore: ClusteredDatastore) -> list[FaultyShard]:
    """The fault-wrapped shards of a datastore (for log inspection)."""
    return [s for s in datastore.shards if isinstance(s, FaultyShard)]


# ---------------------------------------------------------------------------
# Fleet-scale fault schedules (discrete-event simulator)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeOutage:
    """Node *node* is down over ``[start_s, end_s)``.

    ``end_s = inf`` models crash-stop for the whole run; finite ends model
    fail-recover (a reboot, a replica promotion).
    """

    node: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(f"end_s must exceed start_s, got [{self.start_s}, {self.end_s})")


@dataclass(frozen=True)
class NodeSlowdown:
    """Node *node* runs ``factor``x slower over ``[start_s, end_s)`` (straggler)."""

    node: int
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(f"end_s must exceed start_s, got [{self.start_s}, {self.end_s})")
        if self.factor <= 1.0:
            raise ValueError(f"factor must exceed 1, got {self.factor}")


class FleetFaultSchedule:
    """Timeline of node outages and straggler windows for the simulator.

    The simulator consults this at every retrieval-phase entry: a down node
    is skipped (degraded batch) or waited on, a slowed node's phase duration
    is scaled by the product of its covering slowdown factors.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        outages: Iterable[NodeOutage] = (),
        slowdowns: Iterable[NodeSlowdown] = (),
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.outages = tuple(outages)
        self.slowdowns = tuple(slowdowns)
        for ev in self.outages + self.slowdowns:
            if ev.node >= n_nodes:
                raise ValueError(f"event names node {ev.node}, fleet has {n_nodes}")

    def is_down(self, node: int, t: float) -> bool:
        return any(
            o.node == node and o.start_s <= t < o.end_s for o in self.outages
        )

    def recovery_time(self, node: int, t: float) -> float:
        """Earliest time >= *t* at which *node* is up (``inf`` if never)."""
        while True:
            covering = [
                o for o in self.outages if o.node == node and o.start_s <= t < o.end_s
            ]
            if not covering:
                return t
            end = max(o.end_s for o in covering)
            if not np.isfinite(end):
                return float("inf")
            t = end  # chained/overlapping outages: keep walking forward

    def slowdown(self, node: int, t: float) -> float:
        factor = 1.0
        for s in self.slowdowns:
            if s.node == node and s.start_s <= t < s.end_s:
                factor *= s.factor
        return factor

    @property
    def has_unrecoverable(self) -> bool:
        return any(not np.isfinite(o.end_s) for o in self.outages)

    @classmethod
    def random(
        cls,
        n_nodes: int,
        *,
        horizon_s: float,
        rng: np.random.Generator,
        mtbf_s: float,
        mttr_s: float,
        straggler_rate_s: float | None = None,
        straggler_duration_s: float = 10.0,
        straggler_factor: float = 3.0,
    ) -> "FleetFaultSchedule":
        """Seeded random schedule: exponential failure/repair (+ stragglers).

        Per node, time-to-failure ~ Exp(``mtbf_s``) and repair ~
        Exp(``mttr_s``) alternate across the horizon; straggler windows of
        ``straggler_duration_s`` arrive at rate ``1/straggler_rate_s``. All
        draws come from the injected generator, node by node in order, so
        the schedule is a pure function of the generator's seed.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        outages = []
        slowdowns = []
        for node in range(n_nodes):
            t = float(rng.exponential(mtbf_s))
            while t < horizon_s:
                down = float(rng.exponential(mttr_s))
                outages.append(NodeOutage(node, t, t + down))
                t += down + float(rng.exponential(mtbf_s))
            if straggler_rate_s is not None:
                t = float(rng.exponential(straggler_rate_s))
                while t < horizon_s:
                    slowdowns.append(
                        NodeSlowdown(node, t, t + straggler_duration_s, straggler_factor)
                    )
                    t += straggler_duration_s + float(rng.exponential(straggler_rate_s))
        return cls(n_nodes, outages=outages, slowdowns=slowdowns)
