"""Serving frontend: retrieval cache + in-batch dedupe + dynamic batching.

The piece that turns the offline :class:`HierarchicalSearcher` into a
serve-time component. Two layers:

- :class:`ServingFrontend` — synchronous batch façade. Each batch is looked
  up in the :class:`~repro.serving.cache.RetrievalCache` first; exact and
  semantic hits are answered from cache, identical cache-missing queries are
  collapsed to one representative (in-batch dedupe), routing-tier hits
  deep-search with their cached
  :class:`~repro.core.router.RoutingDecision` (skipping sample search), and
  only the remaining unique misses pay the full route + deep-search path.
  Fresh results are inserted back into the cache.
- :class:`DynamicBatcher` — request-level coalescing. Callers ``submit()``
  single queries and get futures; a worker thread drains the queue, holding
  the first request of a batch for at most ``max_wait_s`` while up to
  ``max_batch`` compatible requests (same search parameters) accumulate,
  then executes the merged batch through the frontend under a ``coalesce``
  span. This is the deadline-budget batching that converts redundant serve
  traffic into the cell-major scan's batch efficiency.

With an :class:`~repro.serving.admission.AdmissionController` attached the
batcher becomes overload-safe: ``submit`` fail-fast rejects once the queue
holds ``max_queue`` requests, each request carries a deadline
(``submit(..., deadline_s=)``), requests whose remaining budget cannot
cover the estimated service time are shed at dequeue instead of served
late, the remaining budget is propagated into the searcher so deep search
is clamped to what is left, and sustained queue delay walks the brownout
ladder — looser semantic-cache threshold first, smaller deep-search
fan-out second — before anything is dropped. Each future then resolves to
a :class:`ServedQuery` carrying the degradation level it was served at.

Exact-hit answers replay the cached rows bit-for-bit, so a warm pass is
bit-identical to the search that populated it; when dedupe or partial hits
shrink the sub-batch that re-searches, ids still match an uncached run of
the whole batch exactly and distances to float32 GEMM accumulation
(``tests/serving/test_frontend.py`` asserts both). The semantic tier's NDCG
delta is measured by ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..ann.distances import as_matrix
from ..core.errors import AdmissionRejectedError, DeadlineExceededError
from ..core.hierarchical import HierarchicalSearcher, SearchResult
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .admission import (
    DEGRADATION_BUCKETS,
    AdmissionConfig,
    AdmissionController,
    BrownoutKnobs,
)
from .cache import (
    EXACT_HIT,
    MISS,
    ROUTING_HIT,
    SEMANTIC_HIT,
    CacheConfig,
    CacheLookup,
    RetrievalCache,
)

__all__ = [
    "FrontendResult",
    "ServingFrontend",
    "DynamicBatcher",
    "BatcherStats",
    "ServedQuery",
]

#: Coalesced-batch-size histogram buckets (requests, not seconds).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class FrontendResult:
    """One served batch: merged cache hits + fresh search results.

    ``kinds`` carries the per-query cache classification
    (:data:`~repro.serving.cache.MISS` / ``EXACT_HIT`` / ``SEMANTIC_HIT`` /
    ``ROUTING_HIT``); ``searched`` counts the unique queries that actually
    reached the searcher after dedupe, and ``shard_queries`` the deep-search
    work they issued (0 for a fully cache-served batch).
    ``degradation_level`` records the brownout level the batch was served
    at (0 = full quality).
    """

    distances: np.ndarray
    ids: np.ndarray
    kinds: np.ndarray
    searched: int
    shard_queries: int
    degradation_level: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.ids)

    @property
    def exact_hits(self) -> int:
        return int((self.kinds == EXACT_HIT).sum())

    @property
    def semantic_hits(self) -> int:
        return int((self.kinds == SEMANTIC_HIT).sum())

    @property
    def routing_hits(self) -> int:
        return int((self.kinds == ROUTING_HIT).sum())

    @property
    def misses(self) -> int:
        return int((self.kinds == MISS).sum())


class ServingFrontend:
    """Cache-fronted façade over a :class:`HierarchicalSearcher`."""

    def __init__(
        self,
        searcher: HierarchicalSearcher,
        *,
        cache: RetrievalCache | None = None,
        cache_config: CacheConfig | None = None,
        clock=None,
    ) -> None:
        if cache is not None and cache_config is not None:
            raise ValueError("pass either cache or cache_config, not both")
        self.searcher = searcher
        self.cache = cache if cache is not None else RetrievalCache(cache_config)
        self._clock = clock if clock is not None else time.perf_counter

    # -- parameter resolution (mirrors HierarchicalSearcher.search) ---------
    def _params_key(
        self, k: int | None, clusters_to_search: int | None, deep_nprobe: int | None
    ) -> tuple:
        cfg = self.searcher.config
        k = cfg.k if k is None else int(k)
        m = cfg.clusters_to_search if clusters_to_search is None else int(clusters_to_search)
        nprobe = cfg.deep_nprobe if deep_nprobe is None else int(deep_nprobe)
        return (k, m, nprobe)

    def search(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
        deadline_s: float | None = None,
        exclude_clusters: "frozenset | set | None" = None,
        brownout: BrownoutKnobs | None = None,
        degradation_level: int = 0,
    ) -> FrontendResult:
        """Serve a query batch through the cache, searching only the misses.

        ``deadline_s`` is the batch's remaining end-to-end budget; it is
        threaded into every searcher call so deep search is clamped to what
        is left (see :meth:`HierarchicalSearcher.search`). ``brownout``
        applies one brownout level's quality knobs: the semantic cache tier
        accepts ``semantic_slack`` looser matches and the deep-search
        fan-out/nprobe are scaled down — degraded results are cached under
        their *effective* parameters, so they never shadow full-quality
        entries. ``exclude_clusters`` propagates down-node exclusions into
        both the searcher and the cache's routing tier, so a cached
        :class:`RoutingDecision` that touches a dead cluster is demoted to
        a plain miss instead of replayed into it.
        """
        q = as_matrix(queries)
        nq = len(q)
        k_eff, m_eff, nprobe_eff = self._params_key(k, clusters_to_search, deep_nprobe)
        semantic_slack = 0.0
        if brownout is not None:
            m_eff, nprobe_eff = brownout.apply(m_eff, nprobe_eff)
            semantic_slack = brownout.semantic_slack
        params_key = (k_eff, m_eff, nprobe_eff)
        registry = get_registry()
        registry.counter(
            "frontend_requests_total", "queries served by the frontend"
        ).inc(nq)

        user_exclude = frozenset(int(c) for c in (exclude_clusters or ()))
        health = self.searcher.health
        stale_exclude = user_exclude
        if health is not None:
            stale_exclude = user_exclude | health.open_shards()

        deadline_at = None
        if deadline_s is not None:
            if deadline_s <= 0:
                raise DeadlineExceededError(deadline_s, stage="submit")
            deadline_at = self._clock() + float(deadline_s)

        # Snapshot the datastore's mutation generation once per batch: entries
        # cached under an older generation were computed against a corpus that
        # has since changed and are invalidated inside the lookup.
        generation = getattr(self.searcher.datastore, "generation", None)
        lookup = self.cache.lookup(
            q,
            k_eff,
            params_key,
            exclude=stale_exclude,
            semantic_slack=semantic_slack,
            generation=generation,
        )
        out_d = lookup.distances.copy()
        out_i = lookup.ids.copy()

        searched = 0
        shard_queries = 0
        miss_rows = lookup.miss_rows
        if len(miss_rows):
            searched, shard_queries = self._search_misses(
                q,
                lookup,
                miss_rows,
                out_d,
                out_i,
                params_key,
                user_exclude=user_exclude,
                deadline_at=deadline_at,
                generation=generation,
            )
        if searched < len(miss_rows):
            registry.counter(
                "frontend_dedup_collapsed_total",
                "cache-missing queries answered by an in-batch duplicate",
            ).inc(len(miss_rows) - searched)
        return FrontendResult(
            distances=out_d,
            ids=out_i,
            kinds=lookup.kinds,
            searched=searched,
            shard_queries=shard_queries,
            degradation_level=int(degradation_level),
        )

    def _search_misses(
        self,
        q: np.ndarray,
        lookup: CacheLookup,
        miss_rows: np.ndarray,
        out_d: np.ndarray,
        out_i: np.ndarray,
        params_key: tuple,
        *,
        user_exclude: frozenset = frozenset(),
        deadline_at: float | None = None,
        generation: int | None = None,
    ) -> tuple:
        """Dedupe + fan the cache-missing rows into the searcher.

        Identical queries (same digest) collapse to one representative; the
        representatives split into two sub-batches — full misses (fresh
        routing) and routing-tier hits (cached routing) — each searched once.
        """
        k_eff, m_eff, nprobe_eff = params_key
        rep_of: dict = {}
        groups: dict = {}
        for i in miss_rows:
            i = int(i)
            digest = lookup.digests[i]
            rep = rep_of.setdefault(digest, i)
            groups.setdefault(rep, []).append(i)
        reps = sorted(groups)
        plain = [r for r in reps if lookup.kinds[r] == MISS]
        routed = [r for r in reps if lookup.kinds[r] == ROUTING_HIT]

        searched = 0
        shard_queries = 0

        def run(rows: list, routing) -> SearchResult:
            sub = q[np.asarray(rows, dtype=np.int64)]
            remaining = None
            if deadline_at is not None:
                # Re-measured per sub-batch: the routed sub-batch only gets
                # what the plain one left of the budget.
                remaining = deadline_at - self._clock()
            return self.searcher.search(
                sub,
                k=k_eff,
                clusters_to_search=m_eff,
                deep_nprobe=nprobe_eff,
                routing=routing,
                exclude_clusters=user_exclude or None,
                deadline_s=remaining,
            )

        for rows, routing in (
            (plain, None),
            (routed, lookup.routing_for(np.asarray(routed)) if routed else None),
        ):
            if not rows:
                continue
            result = run(rows, routing)
            searched += len(rows)
            shard_queries += result.shard_queries
            for j, rep in enumerate(rows):
                for i in groups[rep]:
                    out_d[i] = result.distances[j]
                    out_i[i] = result.ids[j]
            self.cache.insert(
                q[np.asarray(rows, dtype=np.int64)],
                result,
                params_key,
                generation=generation,
            )
        return searched, shard_queries


@dataclass
class BatcherStats:
    """Coalescing + overload accounting for one :class:`DynamicBatcher`."""

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    rejected: int = 0
    shed: int = 0
    deadline_misses: int = 0

    @property
    def mean_batch(self) -> float:
        if not self.batches:
            return 0.0
        return self.requests / self.batches


class ServedQuery(NamedTuple):
    """One request's answer: top-k rows + how it was served."""

    distances: np.ndarray
    ids: np.ndarray
    kind: int
    degradation_level: int


class _Pending:
    __slots__ = ("query", "params", "future", "enqueued_s", "deadline_at")

    def __init__(self, query, params, future, enqueued_s, deadline_at=None):
        self.query = query
        self.params = params
        self.future = future
        self.enqueued_s = enqueued_s
        self.deadline_at = deadline_at


class DynamicBatcher:
    """Deadline-budget coalescing of single-query requests.

    ``submit()`` returns a future resolving to a :class:`ServedQuery` for
    that one query. The worker thread holds a batch open for at most
    ``max_wait_s`` after its first request arrives (the deadline budget),
    coalescing up to ``max_batch`` requests with identical search parameters;
    requests with different parameters stay queued for the next batch.

    ``admission`` (an :class:`AdmissionController` or an
    :class:`AdmissionConfig`) turns on the overload layer: bounded-queue
    fail-fast rejection at submit, dequeue-time shedding of requests whose
    deadline is unmeetable, brownout degradation under sustained queue
    delay, and deadline propagation into the searcher. Without it the
    batcher behaves exactly as before, except that an explicit
    ``submit(..., deadline_s=)`` is still honoured: already-expired
    requests shed at dequeue and the remaining budget still clamps the
    search.
    """

    def __init__(
        self,
        frontend: ServingFrontend,
        *,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        clock=None,
        admission: "AdmissionController | AdmissionConfig | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative, got {max_wait_s}")
        self.frontend = frontend
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.stats = BatcherStats()
        self._clock = clock if clock is not None else time.perf_counter
        if isinstance(admission, AdmissionConfig):
            admission = AdmissionController(admission, clock=self._clock)
        self.admission = admission
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="serving-frontend-batcher", daemon=True
        )
        self._worker.start()

    # -- client side --------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
        deadline_s: float | None = None,
    ) -> Future:
        """Enqueue one query; resolves to a :class:`ServedQuery`.

        ``deadline_s`` is this request's end-to-end budget from *now*
        (``None`` falls back to the admission config's default). Raises
        :class:`AdmissionRejectedError` when the bounded queue is full and
        :class:`DeadlineExceededError` when the budget is already spent.
        """
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1:
            raise ValueError(f"submit takes one (dim,) query, got shape {query.shape}")
        if self.admission is not None:
            deadline_s = self.admission.deadline_for(deadline_s)
        if deadline_s is not None and deadline_s <= 0:
            raise DeadlineExceededError(deadline_s, stage="submit")
        params = (k, clusters_to_search, deep_nprobe)
        future: Future = Future()
        with self._cv:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if self.admission is not None:
                try:
                    self.admission.admit(len(self._queue))
                except AdmissionRejectedError:
                    self.stats.rejected += 1
                    raise
            now = self._clock()
            deadline_at = None if deadline_s is None else now + float(deadline_s)
            self._queue.append(_Pending(query, params, future, now, deadline_at))
            self._cv.notify()
        return future

    def close(self) -> None:
        """Drain outstanding requests, then stop the worker."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        self._worker.join()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side --------------------------------------------------------
    def _take_batch(self) -> list:
        """Block for the first request, then coalesce under the deadline."""
        with self._cv:
            while not self._queue:
                if self._closed:
                    return []
                self._cv.wait(0.05)
            head = self._queue.popleft()
            batch = [head]
            deadline = self._clock() + self.max_wait_s
            while len(batch) < self.max_batch:
                if not self._queue:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or self._closed:
                        break
                    self._cv.wait(min(remaining, 0.05))
                    continue
                if self._queue[0].params != head.params:
                    break  # incompatible request opens the next batch
                batch.append(self._queue.popleft())
        return batch

    def _shed_unmeetable(self, batch: list) -> list:
        """Drop dequeued requests whose deadline cannot be met; keep the rest.

        A request already past its deadline — or, under admission control,
        whose remaining budget is below the EWMA service-time estimate —
        fails fast with ``stage="queue"`` instead of being executed late.
        """
        now = self._clock()
        kept = []
        for p in batch:
            if p.deadline_at is None:
                kept.append(p)
                continue
            remaining = p.deadline_at - now
            if self.admission is not None:
                shed = self.admission.should_shed(remaining)
            else:
                shed = remaining <= 0
            if not shed:
                kept.append(p)
                continue
            self.stats.shed += 1
            if self.admission is not None:
                self.admission.record_shed()
            else:
                get_registry().counter(
                    "serving_deadline_shed_total",
                    "requests dropped at dequeue because their deadline was unmeetable",
                ).inc()
            p.future.set_exception(DeadlineExceededError(remaining, stage="queue"))
        return kept

    def _run(self) -> None:
        registry = get_registry()
        tracer = get_tracer()
        while True:
            batch = self._take_batch()
            if not batch:
                with self._cv:
                    if self._closed and not self._queue:
                        return
                continue
            batch = self._shed_unmeetable(batch)
            if not batch:
                continue
            queries = np.stack([p.query for p in batch])
            k, m, nprobe = batch[0].params
            wait_s = self._clock() - batch[0].enqueued_s
            level = 0
            knobs = None
            if self.admission is not None:
                level = self.admission.observe(max(wait_s, 0.0))
                if level > 0:
                    knobs = self.admission.knobs(level)
            deadlines = [p.deadline_at for p in batch if p.deadline_at is not None]
            budget_s = min(deadlines) - self._clock() if deadlines else None
            started = self._clock()
            try:
                with tracer.span(
                    "coalesce", batch=len(batch), wait_s=round(wait_s, 6), level=level
                ):
                    result = self.frontend.search(
                        queries,
                        k=k,
                        clusters_to_search=m,
                        deep_nprobe=nprobe,
                        deadline_s=budget_s,
                        brownout=knobs,
                        degradation_level=level,
                    )
            except BaseException as exc:  # noqa: BLE001 — fail the futures, not the worker
                for p in batch:
                    p.future.set_exception(exc)
                continue
            if self.admission is not None:
                # Per-request-visible service time: every request in the
                # batch waits for the whole batch.
                self.admission.record_service_time(self._clock() - started)
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            registry.counter(
                "frontend_coalesced_batches_total", "batches formed by the dynamic batcher"
            ).inc()
            registry.histogram(
                "frontend_batch_size",
                "requests coalesced per frontend batch",
                buckets=BATCH_SIZE_BUCKETS,
            ).observe(len(batch))
            registry.histogram(
                "frontend_coalesce_wait_seconds",
                "time the head request waited while its batch formed",
            ).observe(max(wait_s, 0.0))
            registry.histogram(
                "serving_degradation_level",
                "brownout level batches were served at",
                buckets=DEGRADATION_BUCKETS,
            ).observe(level)
            done = self._clock()
            for row, p in enumerate(batch):
                if p.deadline_at is not None and done > p.deadline_at:
                    self.stats.deadline_misses += 1
                    registry.counter(
                        "serving_deadline_miss_total",
                        "requests completed after their deadline had passed",
                    ).inc()
                p.future.set_result(
                    ServedQuery(
                        result.distances[row],
                        result.ids[row],
                        int(result.kinds[row]),
                        level,
                    )
                )
