"""Serving frontend: retrieval cache + in-batch dedupe + dynamic batching.

The piece that turns the offline :class:`HierarchicalSearcher` into a
serve-time component. Two layers:

- :class:`ServingFrontend` — synchronous batch façade. Each batch is looked
  up in the :class:`~repro.serving.cache.RetrievalCache` first; exact and
  semantic hits are answered from cache, identical cache-missing queries are
  collapsed to one representative (in-batch dedupe), routing-tier hits
  deep-search with their cached
  :class:`~repro.core.router.RoutingDecision` (skipping sample search), and
  only the remaining unique misses pay the full route + deep-search path.
  Fresh results are inserted back into the cache.
- :class:`DynamicBatcher` — request-level coalescing. Callers ``submit()``
  single queries and get futures; a worker thread drains the queue, holding
  the first request of a batch for at most ``max_wait_s`` while up to
  ``max_batch`` compatible requests (same search parameters) accumulate,
  then executes the merged batch through the frontend under a ``coalesce``
  span. This is the deadline-budget batching that converts redundant serve
  traffic into the cell-major scan's batch efficiency.

Exact-hit answers replay the cached rows bit-for-bit, so a warm pass is
bit-identical to the search that populated it; when dedupe or partial hits
shrink the sub-batch that re-searches, ids still match an uncached run of
the whole batch exactly and distances to float32 GEMM accumulation
(``tests/serving/test_frontend.py`` asserts both). The semantic tier's NDCG
delta is measured by ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..ann.distances import as_matrix
from ..core.hierarchical import HierarchicalSearcher, SearchResult
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .cache import (
    EXACT_HIT,
    MISS,
    ROUTING_HIT,
    SEMANTIC_HIT,
    CacheConfig,
    CacheLookup,
    RetrievalCache,
)

__all__ = ["FrontendResult", "ServingFrontend", "DynamicBatcher", "BatcherStats"]

#: Coalesced-batch-size histogram buckets (requests, not seconds).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class FrontendResult:
    """One served batch: merged cache hits + fresh search results.

    ``kinds`` carries the per-query cache classification
    (:data:`~repro.serving.cache.MISS` / ``EXACT_HIT`` / ``SEMANTIC_HIT`` /
    ``ROUTING_HIT``); ``searched`` counts the unique queries that actually
    reached the searcher after dedupe, and ``shard_queries`` the deep-search
    work they issued (0 for a fully cache-served batch).
    """

    distances: np.ndarray
    ids: np.ndarray
    kinds: np.ndarray
    searched: int
    shard_queries: int

    @property
    def batch_size(self) -> int:
        return len(self.ids)

    @property
    def exact_hits(self) -> int:
        return int((self.kinds == EXACT_HIT).sum())

    @property
    def semantic_hits(self) -> int:
        return int((self.kinds == SEMANTIC_HIT).sum())

    @property
    def routing_hits(self) -> int:
        return int((self.kinds == ROUTING_HIT).sum())

    @property
    def misses(self) -> int:
        return int((self.kinds == MISS).sum())


class ServingFrontend:
    """Cache-fronted façade over a :class:`HierarchicalSearcher`."""

    def __init__(
        self,
        searcher: HierarchicalSearcher,
        *,
        cache: RetrievalCache | None = None,
        cache_config: CacheConfig | None = None,
    ) -> None:
        if cache is not None and cache_config is not None:
            raise ValueError("pass either cache or cache_config, not both")
        self.searcher = searcher
        self.cache = cache if cache is not None else RetrievalCache(cache_config)

    # -- parameter resolution (mirrors HierarchicalSearcher.search) ---------
    def _params_key(
        self, k: int | None, clusters_to_search: int | None, deep_nprobe: int | None
    ) -> tuple:
        cfg = self.searcher.config
        k = cfg.k if k is None else int(k)
        m = cfg.clusters_to_search if clusters_to_search is None else int(clusters_to_search)
        nprobe = cfg.deep_nprobe if deep_nprobe is None else int(deep_nprobe)
        return (k, m, nprobe)

    def search(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
    ) -> FrontendResult:
        """Serve a query batch through the cache, searching only the misses."""
        q = as_matrix(queries)
        nq = len(q)
        k_eff, m_eff, nprobe_eff = self._params_key(k, clusters_to_search, deep_nprobe)
        params_key = (k_eff, m_eff, nprobe_eff)
        registry = get_registry()
        registry.counter(
            "frontend_requests_total", "queries served by the frontend"
        ).inc(nq)

        lookup = self.cache.lookup(q, k_eff, params_key)
        out_d = lookup.distances.copy()
        out_i = lookup.ids.copy()

        searched = 0
        shard_queries = 0
        miss_rows = lookup.miss_rows
        if len(miss_rows):
            searched, shard_queries = self._search_misses(
                q, lookup, miss_rows, out_d, out_i, params_key
            )
        if searched < len(miss_rows):
            registry.counter(
                "frontend_dedup_collapsed_total",
                "cache-missing queries answered by an in-batch duplicate",
            ).inc(len(miss_rows) - searched)
        return FrontendResult(
            distances=out_d,
            ids=out_i,
            kinds=lookup.kinds,
            searched=searched,
            shard_queries=shard_queries,
        )

    def _search_misses(
        self,
        q: np.ndarray,
        lookup: CacheLookup,
        miss_rows: np.ndarray,
        out_d: np.ndarray,
        out_i: np.ndarray,
        params_key: tuple,
    ) -> tuple:
        """Dedupe + fan the cache-missing rows into the searcher.

        Identical queries (same digest) collapse to one representative; the
        representatives split into two sub-batches — full misses (fresh
        routing) and routing-tier hits (cached routing) — each searched once.
        """
        k_eff, m_eff, nprobe_eff = params_key
        rep_of: dict = {}
        groups: dict = {}
        for i in miss_rows:
            i = int(i)
            digest = lookup.digests[i]
            rep = rep_of.setdefault(digest, i)
            groups.setdefault(rep, []).append(i)
        reps = sorted(groups)
        plain = [r for r in reps if lookup.kinds[r] == MISS]
        routed = [r for r in reps if lookup.kinds[r] == ROUTING_HIT]

        searched = 0
        shard_queries = 0

        def run(rows: list, routing) -> SearchResult:
            sub = q[np.asarray(rows, dtype=np.int64)]
            return self.searcher.search(
                sub,
                k=k_eff,
                clusters_to_search=m_eff,
                deep_nprobe=nprobe_eff,
                routing=routing,
            )

        for rows, routing in (
            (plain, None),
            (routed, lookup.routing_for(np.asarray(routed)) if routed else None),
        ):
            if not rows:
                continue
            result = run(rows, routing)
            searched += len(rows)
            shard_queries += result.shard_queries
            for j, rep in enumerate(rows):
                for i in groups[rep]:
                    out_d[i] = result.distances[j]
                    out_i[i] = result.ids[j]
            self.cache.insert(
                q[np.asarray(rows, dtype=np.int64)], result, params_key
            )
        return searched, shard_queries


@dataclass
class BatcherStats:
    """Coalescing accounting for one :class:`DynamicBatcher`."""

    requests: int = 0
    batches: int = 0
    max_batch: int = 0

    @property
    def mean_batch(self) -> float:
        if not self.batches:
            return 0.0
        return self.requests / self.batches


class _Pending:
    __slots__ = ("query", "params", "future", "enqueued_s")

    def __init__(self, query, params, future, enqueued_s):
        self.query = query
        self.params = params
        self.future = future
        self.enqueued_s = enqueued_s


class DynamicBatcher:
    """Deadline-budget coalescing of single-query requests.

    ``submit()`` returns a future resolving to ``(distances, ids, kind)`` for
    that one query. The worker thread holds a batch open for at most
    ``max_wait_s`` after its first request arrives (the deadline budget),
    coalescing up to ``max_batch`` requests with identical search parameters;
    requests with different parameters stay queued for the next batch.
    """

    def __init__(
        self,
        frontend: ServingFrontend,
        *,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        clock=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative, got {max_wait_s}")
        self.frontend = frontend
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.stats = BatcherStats()
        self._clock = clock if clock is not None else time.perf_counter
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="serving-frontend-batcher", daemon=True
        )
        self._worker.start()

    # -- client side --------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        *,
        k: int | None = None,
        clusters_to_search: int | None = None,
        deep_nprobe: int | None = None,
    ) -> Future:
        """Enqueue one query; resolves to ``(distances, ids, kind)`` rows."""
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1:
            raise ValueError(f"submit takes one (dim,) query, got shape {query.shape}")
        params = (k, clusters_to_search, deep_nprobe)
        future: Future = Future()
        with self._cv:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(_Pending(query, params, future, self._clock()))
            self._cv.notify()
        return future

    def close(self) -> None:
        """Drain outstanding requests, then stop the worker."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        self._worker.join()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side --------------------------------------------------------
    def _take_batch(self) -> list:
        """Block for the first request, then coalesce under the deadline."""
        with self._cv:
            while not self._queue:
                if self._closed:
                    return []
                self._cv.wait(0.05)
            head = self._queue.popleft()
            batch = [head]
            deadline = self._clock() + self.max_wait_s
            while len(batch) < self.max_batch:
                if not self._queue:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or self._closed:
                        break
                    self._cv.wait(min(remaining, 0.05))
                    continue
                if self._queue[0].params != head.params:
                    break  # incompatible request opens the next batch
                batch.append(self._queue.popleft())
        return batch

    def _run(self) -> None:
        registry = get_registry()
        tracer = get_tracer()
        while True:
            batch = self._take_batch()
            if not batch:
                with self._cv:
                    if self._closed and not self._queue:
                        return
                continue
            queries = np.stack([p.query for p in batch])
            k, m, nprobe = batch[0].params
            wait_s = self._clock() - batch[0].enqueued_s
            try:
                with tracer.span(
                    "coalesce", batch=len(batch), wait_s=round(wait_s, 6)
                ):
                    result = self.frontend.search(
                        queries, k=k, clusters_to_search=m, deep_nprobe=nprobe
                    )
            except BaseException as exc:  # noqa: BLE001 — fail the futures, not the worker
                for p in batch:
                    p.future.set_exception(exc)
                continue
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            registry.counter(
                "frontend_coalesced_batches_total", "batches formed by the dynamic batcher"
            ).inc()
            registry.histogram(
                "frontend_batch_size",
                "requests coalesced per frontend batch",
                buckets=BATCH_SIZE_BUCKETS,
            ).observe(len(batch))
            registry.histogram(
                "frontend_coalesce_wait_seconds",
                "time the head request waited while its batch formed",
            ).observe(max(wait_s, 0.0))
            for row, p in enumerate(batch):
                p.future.set_result(
                    (
                        result.distances[row],
                        result.ids[row],
                        int(result.kinds[row]),
                    )
                )
