"""Online serving: cache/batching frontend plus the event-driven simulator.

Three layers:

- the **serve-time frontend** (:mod:`repro.serving.cache`,
  :mod:`repro.serving.frontend`): a multi-tier retrieval cache (exact /
  semantic / routing reuse) and a dynamic batcher that coalesces and dedupes
  cache-missing queries in front of the hierarchical searcher;
- the **discrete-event simulator** complementing the closed-form multi-node
  model with batches contending for the GPU and the retrieval fleet;
- the **fault models** (crash-stop, transient, straggler) that chaos-test
  the fleet both per-batch (:mod:`repro.serving.faults` wrapping live
  shards) and at serving scale (:class:`FleetFaultSchedule` driving the
  simulator);
- the **overload layer** (:mod:`repro.serving.admission`,
  :mod:`repro.serving.replication`): bounded-queue admission control,
  deadline shedding, the brownout degradation ladder, and health-aware
  replica groups with automatic failover and probe-based recovery;
- the **live end-to-end pipeline** (:mod:`repro.serving.pipeline`): a stride
  scheduler that drives real batched retrieval through the frontend per
  generation stride while prefill/decode advance on the calibrated inference
  clock, with PipeRAG-style overlap and TeleRAG-style lookahead retrieval.
"""

from .admission import (
    DEGRADATION_BUCKETS,
    AdmissionConfig,
    AdmissionController,
    BrownoutKnobs,
)
from .cache import (
    EXACT_HIT,
    MISS,
    ROUTING_HIT,
    SEMANTIC_HIT,
    CacheConfig,
    CacheLookup,
    RetrievalCache,
    RetrievalCacheStats,
)
from .events import EventLoop, Resource
from .frontend import (
    BatcherStats,
    DynamicBatcher,
    FrontendResult,
    ServedQuery,
    ServingFrontend,
)
from .faults import (
    CrashStop,
    FaultEvent,
    FaultInjector,
    FaultModel,
    FaultyShard,
    FleetFaultSchedule,
    NodeOutage,
    NodeSlowdown,
    OutageWindow,
    Straggler,
    TransientFault,
    faulty_shards,
    kill_shards,
)
from .node_sim import NodeScheduleResult, schedule_batch, waves_approximation_error
from .pipeline import (
    PIPELINE_MODES,
    PipelineConfig,
    PipelineReport,
    RAGServingPipeline,
    RequestResult,
    StrideRecord,
)
from .replication import ReplicaGroup, kill_replica, replica_groups, replicate_datastore
from .simulator import (
    BatchRecord,
    PipelineSimulator,
    ServingReport,
    StagePlan,
    plan_from_models,
)

__all__ = [
    "MISS",
    "EXACT_HIT",
    "SEMANTIC_HIT",
    "ROUTING_HIT",
    "CacheConfig",
    "CacheLookup",
    "RetrievalCache",
    "RetrievalCacheStats",
    "AdmissionConfig",
    "AdmissionController",
    "BrownoutKnobs",
    "DEGRADATION_BUCKETS",
    "BatcherStats",
    "DynamicBatcher",
    "FrontendResult",
    "ServedQuery",
    "ServingFrontend",
    "ReplicaGroup",
    "kill_replica",
    "replica_groups",
    "replicate_datastore",
    "EventLoop",
    "Resource",
    "CrashStop",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FaultyShard",
    "FleetFaultSchedule",
    "NodeOutage",
    "NodeSlowdown",
    "OutageWindow",
    "Straggler",
    "TransientFault",
    "faulty_shards",
    "kill_shards",
    "NodeScheduleResult",
    "schedule_batch",
    "waves_approximation_error",
    "PIPELINE_MODES",
    "PipelineConfig",
    "PipelineReport",
    "RAGServingPipeline",
    "RequestResult",
    "StrideRecord",
    "BatchRecord",
    "PipelineSimulator",
    "ServingReport",
    "StagePlan",
    "plan_from_models",
]
