"""Online serving simulator: event-driven execution of the Hermes pipeline.

Complements the closed-form multi-node model with a discrete-event simulation
of batches contending for the GPU and the retrieval fleet, plus the fault
models (crash-stop, transient, straggler) that chaos-test the fleet both
per-batch (:mod:`repro.serving.faults` wrapping live shards) and at serving
scale (:class:`FleetFaultSchedule` driving the simulator).
"""

from .events import EventLoop, Resource
from .faults import (
    CrashStop,
    FaultEvent,
    FaultInjector,
    FaultModel,
    FaultyShard,
    FleetFaultSchedule,
    NodeOutage,
    NodeSlowdown,
    OutageWindow,
    Straggler,
    TransientFault,
    faulty_shards,
    kill_shards,
)
from .node_sim import NodeScheduleResult, schedule_batch, waves_approximation_error
from .simulator import (
    BatchRecord,
    PipelineSimulator,
    ServingReport,
    StagePlan,
    plan_from_models,
)

__all__ = [
    "EventLoop",
    "Resource",
    "CrashStop",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FaultyShard",
    "FleetFaultSchedule",
    "NodeOutage",
    "NodeSlowdown",
    "OutageWindow",
    "Straggler",
    "TransientFault",
    "faulty_shards",
    "kill_shards",
    "NodeScheduleResult",
    "schedule_batch",
    "waves_approximation_error",
    "BatchRecord",
    "PipelineSimulator",
    "ServingReport",
    "StagePlan",
    "plan_from_models",
]
