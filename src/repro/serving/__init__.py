"""Online serving simulator: event-driven execution of the Hermes pipeline.

Complements the closed-form multi-node model with a discrete-event simulation
of batches contending for the GPU and the retrieval fleet.
"""

from .events import EventLoop, Resource
from .node_sim import NodeScheduleResult, schedule_batch, waves_approximation_error
from .simulator import (
    BatchRecord,
    PipelineSimulator,
    ServingReport,
    StagePlan,
    plan_from_models,
)

__all__ = [
    "EventLoop",
    "Resource",
    "NodeScheduleResult",
    "schedule_batch",
    "waves_approximation_error",
    "BatchRecord",
    "PipelineSimulator",
    "ServingReport",
    "StagePlan",
    "plan_from_models",
]
