"""Serve-time multi-tier retrieval cache (the RAGCache idea, retrieval-side).

Hermes's own evaluation (Fig. 13) shows serve traffic is heavily skewed:
NQ-like workloads concentrate on a few hot topics, so the same (or nearly the
same) queries arrive over and over. RAGCache [Jin et al. 2024] exploits that
redundancy on the *generation* side by caching document KV prefixes; this
module exploits it on the *retrieval* side, in front of
:class:`~repro.core.hierarchical.HierarchicalSearcher`, with three tiers of
decreasing strictness:

- **exact tier** — a dict keyed by the blake2b digest of the raw query
  embedding bytes plus the search parameters. A hit returns the cached
  ``(distances, ids)`` rows *bit-identically*: the exact path never changes
  results, only latency.
- **semantic tier** — an LRU ring of cached query vectors, matched by cosine
  similarity in **one GEMM per lookup batch**. A query within
  ``semantic_threshold`` of a cached query reuses that query's results; this
  trades a measured (benchmarked) NDCG delta for skipping retrieval entirely.
- **routing tier** — a looser cosine threshold under which only the cached
  :class:`~repro.core.router.RoutingDecision` is reused: the query still
  deep-searches, but skips the sample-search fan-out across every shard
  (the dominant fixed cost for small batches).

All entries share one LRU ring bounded by ``capacity``; eviction, hits, and
misses are counted both on :class:`RetrievalCacheStats` (per-cache, for
tests/benchmarks) and on the process metrics registry
(``retrieval_cache_lookups_total`` / ``_evictions_total`` / ``_size``), and
each batched lookup runs under a ``cache_lookup`` span.

Degraded search results (missing shards) are never inserted: caching a
partial answer would keep serving it after the fleet recovers.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

import numpy as np

from ..ann.distances import as_matrix
from ..core.router import RoutingDecision
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = [
    "MISS",
    "EXACT_HIT",
    "SEMANTIC_HIT",
    "ROUTING_HIT",
    "TIER_NAMES",
    "CacheConfig",
    "RetrievalCacheStats",
    "CacheLookup",
    "RetrievalCache",
    "query_digest",
]

#: Lookup outcome kinds, strongest to weakest.
MISS, EXACT_HIT, SEMANTIC_HIT, ROUTING_HIT = 0, 1, 2, 3
TIER_NAMES = {
    MISS: "miss",
    EXACT_HIT: "exact_hit",
    SEMANTIC_HIT: "semantic_hit",
    ROUTING_HIT: "routing_hit",
}


def query_digest(row: np.ndarray, params_key: tuple) -> bytes:
    """Exact-tier key: digest of the raw embedding bytes + search params.

    Keyed on the float32 bit pattern, so two queries collide only when they
    are the *same vector* — the precondition for the bit-identical contract.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(row, dtype=np.float32).tobytes())
    h.update(repr(params_key).encode())
    return h.digest()


@dataclass(frozen=True)
class CacheConfig:
    """Tunables of the serve-time retrieval cache.

    ``capacity`` bounds the number of cached query entries (one LRU ring
    shared by every tier). ``semantic_threshold`` / ``routing_threshold`` are
    cosine similarities in (0, 1]; ``None`` disables that tier. The routing
    threshold must be the looser (smaller) of the two: a query similar enough
    to reuse full results is certainly similar enough to reuse routing.
    """

    capacity: int = 1024
    semantic_threshold: float | None = 0.995
    routing_threshold: float | None = 0.98

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        for name in ("semantic_threshold", "routing_threshold"):
            value = getattr(self, name)
            if value is not None and not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if (
            self.semantic_threshold is not None
            and self.routing_threshold is not None
            and self.routing_threshold > self.semantic_threshold
        ):
            raise ValueError(
                "routing_threshold must not exceed semantic_threshold "
                f"({self.routing_threshold} > {self.semantic_threshold})"
            )


@dataclass
class RetrievalCacheStats:
    """Per-cache counters (the registry carries the process-wide view)."""

    exact_hits: int = 0
    semantic_hits: int = 0
    routing_hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    #: routing-tier candidates demoted to misses because their cached
    #: decision routes into a currently-excluded (dead/breaker-open) shard
    stale_routing: int = 0
    #: entries dropped because the datastore mutated since they were cached
    stale_generation: int = 0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.semantic_hits + self.routing_hits + self.misses

    @property
    def result_hits(self) -> int:
        """Lookups that skipped retrieval entirely (exact + semantic)."""
        return self.exact_hits + self.semantic_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that returned full cached results."""
        if not self.lookups:
            return 0.0
        return self.result_hits / self.lookups


@dataclass(frozen=True)
class _Entry:
    """One cached query: its results and the routing that produced them."""

    digest: bytes
    params_key: tuple
    distances: np.ndarray
    ids: np.ndarray
    routing_clusters: np.ndarray
    routing_scores: np.ndarray
    #: datastore mutation generation the entry was computed against;
    #: ``None`` means the caller does not track generations.
    generation: int | None = None


@dataclass
class CacheLookup:
    """Outcome of one batched lookup.

    ``kinds[i]`` classifies query *i* (``MISS`` / ``EXACT_HIT`` /
    ``SEMANTIC_HIT`` / ``ROUTING_HIT``); ``distances`` / ``ids`` rows are
    populated for result hits (exact + semantic) and are undefined (inf/-1)
    elsewhere. ``routing_entries[i]`` carries the cached
    ``(clusters, scores)`` rows for routing hits. ``digests`` are the
    exact-tier keys, reusable by the caller for in-batch deduplication.
    """

    kinds: np.ndarray
    distances: np.ndarray
    ids: np.ndarray
    similarities: np.ndarray
    digests: list
    routing_entries: list = field(default_factory=list)

    @property
    def result_rows(self) -> np.ndarray:
        """Indices whose distances/ids rows are served from cache."""
        return np.flatnonzero(
            (self.kinds == EXACT_HIT) | (self.kinds == SEMANTIC_HIT)
        )

    @property
    def miss_rows(self) -> np.ndarray:
        """Indices that must deep-search (full misses + routing-only hits)."""
        return np.flatnonzero((self.kinds == MISS) | (self.kinds == ROUTING_HIT))

    def routing_for(self, rows: np.ndarray) -> RoutingDecision:
        """Stack the cached routing rows for *rows* into one batch decision."""
        entries = [self.routing_entries[int(r)] for r in rows]
        if any(e is None for e in entries):
            raise ValueError("routing_for called on rows without a routing hit")
        clusters = np.stack([e.routing_clusters for e in entries]).astype(np.int64)
        scores = np.stack([e.routing_scores for e in entries]).astype(np.float32)
        return RoutingDecision(clusters=clusters, scores=scores)


class RetrievalCache:
    """The multi-tier cache itself. Thread-safe; one lock, GEMM inside.

    Vectors live in a pre-allocated ``(capacity, dim)`` ring so the semantic
    and routing tiers cost exactly one ``(batch, capacity)`` GEMM per lookup
    batch regardless of occupancy; recency is a vectorized ``last_used``
    array and eviction is ``argmin`` over it (true LRU).
    """

    def __init__(self, config: CacheConfig | None = None, *, dim: int | None = None) -> None:
        self.config = config or CacheConfig()
        self.stats = RetrievalCacheStats()
        self._lock = threading.Lock()
        self._dim = dim
        self._vectors: np.ndarray | None = None
        if dim is not None:
            self._vectors = np.zeros((self.config.capacity, dim), dtype=np.float32)
        self._entries: list = [None] * self.config.capacity
        self._valid = np.zeros(self.config.capacity, dtype=bool)
        self._last_used = np.zeros(self.config.capacity, dtype=np.int64)
        self._clock = 0
        self._exact: dict = {}

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return int(self._valid.sum())

    @property
    def capacity(self) -> int:
        return self.config.capacity

    def cached_digests(self) -> set:
        with self._lock:
            return set(self._exact)

    def clear(self) -> None:
        with self._lock:
            self._entries = [None] * self.config.capacity
            self._valid[:] = False
            self._last_used[:] = 0
            self._exact.clear()

    # -- internals (caller holds the lock) ----------------------------------
    def _ensure_dim(self, dim: int) -> None:
        if self._vectors is None:
            self._dim = dim
            self._vectors = np.zeros((self.config.capacity, dim), dtype=np.float32)
        elif dim != self._dim:
            raise ValueError(f"query dim {dim} != cache dim {self._dim}")

    def _touch(self, slot: int) -> None:
        self._clock += 1
        self._last_used[slot] = self._clock

    def _invalidate_slot(self, slot: int) -> None:
        entry = self._entries[slot]
        if entry is not None:
            self._exact.pop(entry.digest, None)
        self._entries[slot] = None
        self._valid[slot] = False

    def _normalized(self, q: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(q, axis=1, keepdims=True)
        return q / np.maximum(norms, 1e-12)

    # -- lookup -------------------------------------------------------------
    def lookup(
        self,
        queries: np.ndarray,
        k: int,
        params_key: tuple,
        *,
        exclude: frozenset = frozenset(),
        semantic_slack: float = 0.0,
        generation: int | None = None,
    ) -> CacheLookup:
        """Classify a query batch against all three tiers.

        ``k`` sizes the output rows; ``params_key`` must capture every
        parameter that changes search results (k, fanout, nprobe, ...) —
        entries cached under different parameters never match.

        ``exclude`` carries the *live* set of dead shards (caller excludes
        plus open circuit breakers). A routing-tier candidate whose cached
        decision routes into an excluded shard is **stale**: replaying it
        would deep-search a dead node (or be discarded downstream, wasting
        the hit). Such rows stay misses and fall back to a fresh sample
        search, counted on ``retrieval_cache_stale_routing_total``.

        ``semantic_slack`` loosens the semantic threshold by that much —
        the brownout knob: under overload a near-duplicate answer at
        ``threshold - slack`` beats shedding the request outright.

        ``generation`` is the datastore's current mutation generation (see
        ``ClusteredDatastore.generation``). Entries cached under a different
        generation were computed against a corpus that has since changed —
        every tier treats them as stale, evicts them, and counts them on
        ``retrieval_cache_stale_generation_total``. ``None`` (the default)
        disables the check for callers serving a frozen datastore.
        """
        q = as_matrix(queries)
        nq = len(q)
        cfg = self.config
        registry = get_registry()
        lookups = registry.counter(
            "retrieval_cache_lookups_total",
            "serve-time retrieval cache lookups by outcome tier",
        )
        kinds = np.zeros(nq, dtype=np.int8)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        sims = np.full(nq, np.nan, dtype=np.float64)
        routing_entries: list = [None] * nq
        digests = [query_digest(row, params_key) for row in q]
        exclude = frozenset(int(c) for c in exclude)
        semantic_on = cfg.semantic_threshold is not None
        routing_on = cfg.routing_threshold is not None
        sem_threshold = (
            None
            if cfg.semantic_threshold is None
            else max(cfg.semantic_threshold - max(float(semantic_slack), 0.0), 0.0)
        )
        stale = 0
        stale_gen = 0

        with self._lock, get_tracer().span("cache_lookup", batch=nq) as span:
            self._ensure_dim(q.shape[1])
            # Tier 1: exact digests.
            pending = []
            for i, digest in enumerate(digests):
                slot = self._exact.get(digest)
                if slot is not None and generation is not None:
                    if self._entries[slot].generation != generation:
                        self._invalidate_slot(slot)
                        stale_gen += 1
                        slot = None
                if slot is not None:
                    entry = self._entries[slot]
                    kinds[i] = EXACT_HIT
                    out_d[i] = entry.distances
                    out_i[i] = entry.ids
                    sims[i] = 1.0
                    self._touch(slot)
                else:
                    pending.append(i)

            # Tiers 2+3: one GEMM against the whole ring for the remainder.
            valid_slots = np.flatnonzero(self._valid)
            if pending and len(valid_slots) and (semantic_on or routing_on):
                rows = np.asarray(pending, dtype=np.int64)
                qn = self._normalized(q[rows].astype(np.float32, copy=False))
                ring = self._vectors[valid_slots]
                gram = qn @ ring.T  # cached vectors are stored normalized
                best = np.argmax(gram, axis=1)
                best_sim = gram[np.arange(len(rows)), best]
                sims[rows] = best_sim
                for j, i in enumerate(rows):
                    slot = int(valid_slots[best[j]])
                    entry = self._entries[slot]
                    if entry is None:
                        continue  # invalidated earlier in this same batch
                    sim = float(best_sim[j])
                    if generation is not None and entry.generation != generation:
                        self._invalidate_slot(slot)
                        stale_gen += 1
                        continue
                    if entry.params_key != params_key:
                        continue  # cached under different search params
                    if semantic_on and sim >= sem_threshold:
                        kinds[i] = SEMANTIC_HIT
                        out_d[i] = entry.distances
                        out_i[i] = entry.ids
                        self._touch(slot)
                    elif routing_on and sim >= cfg.routing_threshold:
                        if exclude and not exclude.isdisjoint(
                            int(c) for c in entry.routing_clusters if c >= 0
                        ):
                            # Stale: the cached decision routes into a shard
                            # that is dead right now — fresh sample search.
                            stale += 1
                            continue
                        kinds[i] = ROUTING_HIT
                        routing_entries[i] = entry
                        self._touch(slot)

            counts = {
                name: int((kinds == kind).sum()) for kind, name in TIER_NAMES.items()
            }
            span.set(**counts)
            self.stats.exact_hits += counts["exact_hit"]
            self.stats.semantic_hits += counts["semantic_hit"]
            self.stats.routing_hits += counts["routing_hit"]
            self.stats.misses += counts["miss"]
            self.stats.stale_routing += stale
            self.stats.stale_generation += stale_gen
        for name, count in counts.items():
            if count:
                lookups.inc(count, tier=name)
        if stale:
            registry.counter(
                "retrieval_cache_stale_routing_total",
                "routing-tier hits demoted because the cached decision "
                "routes into an excluded shard",
            ).inc(stale)
        if stale_gen:
            registry.counter(
                "retrieval_cache_stale_generation_total",
                "cache entries evicted because the datastore mutated "
                "since they were written",
            ).inc(stale_gen)
        return CacheLookup(
            kinds=kinds,
            distances=out_d,
            ids=out_i,
            similarities=sims,
            digests=digests,
            routing_entries=routing_entries,
        )

    # -- insertion ----------------------------------------------------------
    def insert(
        self,
        queries: np.ndarray,
        result,
        params_key: tuple,
        *,
        rows: np.ndarray | None = None,
        generation: int | None = None,
    ) -> int:
        """Cache the search outcome of (a subset of) a query batch.

        ``result`` is the :class:`~repro.core.hierarchical.SearchResult` of
        searching exactly these queries; ``rows`` optionally restricts the
        insertion to a subset of batch indices (e.g. only the deduplicated
        representatives). Degraded results are refused — a partial answer
        must not outlive the fault that caused it. Returns entries written.
        """
        if getattr(result, "degraded", False):
            return 0
        q = as_matrix(queries)
        if rows is None:
            rows = np.arange(len(q))
        registry = get_registry()
        written = 0
        with self._lock:
            self._ensure_dim(q.shape[1])
            for i in rows:
                i = int(i)
                digest = query_digest(q[i], params_key)
                entry = _Entry(
                    digest=digest,
                    params_key=params_key,
                    distances=np.array(result.distances[i], copy=True),
                    ids=np.array(result.ids[i], copy=True),
                    routing_clusters=np.array(result.routing.clusters[i], copy=True),
                    routing_scores=np.array(result.routing.scores[i], copy=True),
                    generation=generation,
                )
                slot = self._exact.get(digest)
                if slot is None:
                    slot = self._allocate_slot()
                    self._exact[digest] = slot
                self._entries[slot] = entry
                self._vectors[slot] = self._normalized(
                    q[i : i + 1].astype(np.float32, copy=False)
                )[0]
                self._valid[slot] = True
                self._touch(slot)
                written += 1
            self.stats.inserts += written
            size = int(self._valid.sum())
        if written:
            registry.counter(
                "retrieval_cache_inserts_total", "entries written to the retrieval cache"
            ).inc(written)
        registry.gauge(
            "retrieval_cache_size", "live entries in the retrieval cache"
        ).set(size)
        return written

    def _allocate_slot(self) -> int:
        """Free slot if any, else evict the least-recently-used entry."""
        free = np.flatnonzero(~self._valid)
        if len(free):
            return int(free[0])
        used = np.where(self._valid, self._last_used, np.iinfo(np.int64).max)
        victim = int(np.argmin(used))
        evicted = self._entries[victim]
        if evicted is not None:
            self._exact.pop(evicted.digest, None)
        self._valid[victim] = False
        self.stats.evictions += 1
        get_registry().counter(
            "retrieval_cache_evictions_total", "LRU evictions from the retrieval cache"
        ).inc()
        return victim
