"""Discrete-event simulation core for the online serving simulator.

A minimal but complete event-driven engine: a clock, a priority queue of
timestamped events, and single-capacity resources with FIFO waiting. The
serving pipeline (:mod:`repro.serving.simulator`) builds on these to model
batches flowing through encode → sample → deep-search → prefill → decode
stages concurrently, the execution the paper's closed-form "max of stage
times" throughput analysis approximates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventLoop:
    """Timestamped-event executor with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(self._queue, _Event(self.now + delay, next(self._seq), action))

    def run(self, *, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the event queue (optionally stopping at time *until*).

        ``max_events`` guards against accidental infinite self-scheduling.
        """
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = event.time
            event.action()
            executed += 1

    @property
    def pending(self) -> int:
        return len(self._queue)


class Resource:
    """A serially reusable resource (one GPU, one retrieval node) with FIFO queueing.

    ``acquire`` either grants immediately or enqueues the continuation; the
    holder calls ``release`` when its work completes. Busy time is accumulated
    for utilization accounting.
    """

    def __init__(self, loop: EventLoop, name: str) -> None:
        self.loop = loop
        self.name = name
        self._busy = False
        self._waiting: list[Callable[[], None]] = []
        self.busy_seconds = 0.0
        self._acquired_at = 0.0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def acquire(self, continuation: Callable[[], None]) -> None:
        """Grant the resource to *continuation* now or when it frees up."""
        if not self._busy:
            self._busy = True
            self._acquired_at = self.loop.now
            continuation()
        else:
            self._waiting.append(continuation)

    def release(self) -> None:
        """Free the resource, immediately handing it to the next waiter."""
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.busy_seconds += self.loop.now - self._acquired_at
        self._busy = False
        if self._waiting:
            continuation = self._waiting.pop(0)
            self._busy = True
            self._acquired_at = self.loop.now
            continuation()

    def hold_for(self, duration: float, *, then: Callable[[], None] | None = None) -> None:
        """Convenience: acquire, occupy for *duration*, release, then continue."""

        def occupied() -> None:
            def done() -> None:
                self.release()
                if then is not None:
                    then()

            self.loop.schedule(duration, done)

        self.acquire(occupied)
