"""Live end-to-end RAG serving pipeline: stride scheduler + lookahead retrieval.

Until now the serving stack (:class:`ServingFrontend` / :class:`DynamicBatcher`,
admission, caching) and the generation timeline (:mod:`repro.llm.generation`)
never touched: generation consumed canned :class:`RetrievalCost` values, so
nothing end-to-end was ever actually served. This module closes that gap with
a **stride scheduler** that advances a cohort of requests through the paper's
retrieval-interleaved generation loop — encode, retrieve, prefill, decode,
stride by stride — where

- **retrieval is real**: every stride's query batch flows through the live
  :class:`DynamicBatcher` → :class:`ServingFrontend` →
  :class:`~repro.core.hierarchical.HierarchicalSearcher` path (coalescing,
  multi-tier cache with generation-aware lookups, admission control, deadline
  shedding, degraded results), and its latency is *measured* wall-clock from
  submit to future completion;
- **GPU stages are modelled**: prefill/decode advance on the calibrated
  :class:`~repro.llm.inference.InferenceModel` clock (there is no GPU in the
  loop), exactly as the paper composes measured CPU-side retrieval with its
  GPU-side serving model.

Each request owns a virtual timeline stitched from those two clocks. Three
execution disciplines are supported (:attr:`PipelineConfig.mode`):

- ``sequential`` — stride *i+1*'s query is encoded and retrieved only after
  stride *i*'s decode completes: each stride costs ``encode + retrieval +
  block`` back to back.
- ``pipelined`` — PipeRAG-style overlap: stride *i+1*'s retrieval is issued
  with the context available when stride *i*'s inference block starts (a
  *stale* query, missing stride *i*'s decoded tokens) and runs concurrently
  with it, so each stride costs ``max(block, encode + retrieval)``. The
  stale results are used as-is; quality is whatever the stale query finds.
- ``lookahead`` — TeleRAG-style speculation on top of the overlap: the stale
  retrieval is a *speculative prefetch*. When the block ends, the true query
  (including the freshly decoded tokens) is encoded and verified against the
  speculative one; a cosine match ≥
  :attr:`PipelineConfig.speculation_threshold` accepts the prefetched
  results (``pipeline_lookahead_hits_total``) at fully-overlapped cost plus
  the verify encode, while a mis-speculation falls back to a fresh blocking
  search with the true query (``pipeline_lookahead_misses_total``), paying
  sequential cost for that stride with the speculative work wasted.

TTFT is identical under all three modes — ``encode + retrieval[0] +
prefill[0]``, the first two measured live — because the first stride has
nothing to overlap with. Generation itself is the same deterministic grounded
pseudo-decode as :class:`~repro.core.session.StridedRAGSession`: each stride
appends tokens sampled from the top retrieved chunk mixed with the running
context, so the query genuinely drifts and speculation genuinely risks
missing.

Per-request span trees (encode/retrieval on worker ``cpu``, prefill/decode on
worker ``gpu``) are emitted on the virtual timeline when tracing is enabled,
so ``hermes-repro trace e2e`` shows the cross-worker overlap; per-stage
energy is stage power × measured time for the CPU-side stages plus the
batch-shared modelled :class:`~repro.llm.inference.StageCost` energy for the
GPU stages.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import AdmissionRejectedError, DeadlineExceededError
from ..core.hierarchical import HierarchicalSearcher
from ..datastore.chunkstore import ChunkStore
from ..datastore.encoder import SyntheticEncoder
from ..hardware.cpu import XEON_GOLD_6448Y
from ..llm.inference import InferenceModel
from ..obs.metrics import get_registry
from ..obs.trace import Tracer, get_tracer
from ..perfmodel.measurements import ENCODE_POWER_W
from .admission import AdmissionConfig, AdmissionController
from .cache import CacheConfig
from .frontend import DynamicBatcher, ServedQuery, ServingFrontend

__all__ = [
    "PIPELINE_MODES",
    "PipelineConfig",
    "StrideRecord",
    "RequestResult",
    "PipelineReport",
    "RAGServingPipeline",
]

#: Execution disciplines of the stride scheduler.
PIPELINE_MODES = ("sequential", "pipelined", "lookahead")

#: Upper bound on waiting for any single retrieval future (a stuck batcher
#: should fail the run, not hang it).
RESULT_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class PipelineConfig:
    """One serving run's configuration.

    ``gpu_batch=None`` models the whole cohort riding one GPU batch (the
    stride scheduler advances all requests in lockstep, so the cohort *is*
    the inference batch); ``input_tokens`` is the modelled prefill context
    size per stride. ``deadline_s`` is each request's end-to-end wall-clock
    budget, propagated into every per-stride retrieval submit so admission
    control can shed requests whose budget is spent. The speculation
    threshold is the cosine floor between the speculative and true query
    embeddings for a lookahead hit.
    """

    mode: str = "sequential"
    n_strides: int = 4
    stride_tokens: int = 16
    context_window: int = 512
    grounding: float = 0.5
    k: int = 10
    input_tokens: int = 512
    gpu_batch: int | None = None
    speculation_threshold: float = 0.9
    deadline_s: float | None = None
    retrieval_power_w: float = XEON_GOLD_6448Y.active_power_w
    encode_power_w: float = ENCODE_POWER_W

    def __post_init__(self) -> None:
        if self.mode not in PIPELINE_MODES:
            raise ValueError(f"mode must be one of {PIPELINE_MODES}, got {self.mode!r}")
        if min(self.n_strides, self.stride_tokens, self.context_window, self.k) <= 0:
            raise ValueError(
                "n_strides, stride_tokens, context_window, k must be positive"
            )
        if not 0.0 <= self.grounding <= 1.0:
            raise ValueError("grounding must be in [0, 1]")
        if not 0.0 < self.speculation_threshold <= 1.0:
            raise ValueError("speculation_threshold must be in (0, 1]")
        if self.input_tokens <= 0:
            raise ValueError("input_tokens must be positive")
        if self.gpu_batch is not None and self.gpu_batch <= 0:
            raise ValueError("gpu_batch must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    @property
    def output_tokens(self) -> int:
        return self.n_strides * self.stride_tokens


@dataclass(frozen=True)
class StrideRecord:
    """One stride of one request: what was retrieved and what it cost.

    ``encode_s`` and ``retrieval_s`` are measured wall seconds for the query
    that produced ``ids`` (the retrieval window includes the batcher's
    coalescing wait — that *is* the serving latency); ``verify_s`` is the
    true-query verification encode a lookahead stride pays after the block;
    ``prefill_s``/``decode_s`` are modelled. ``speculative`` marks results
    accepted from a stale/prefetched query; on a lookahead mis-speculation
    ``fallback_s`` carries the wasted speculative window (its encode +
    search) and ``encode_s`` is 0 because the fresh search reuses the verify
    embedding. ``query`` is the embedding that produced ``ids``;
    ``true_query`` the context-complete embedding for the stride (equal to
    ``query`` except on accepted speculative strides) — evaluation scores
    ``ids`` against ``true_query``'s ground truth.
    """

    stride: int
    encode_s: float
    retrieval_s: float
    verify_s: float
    prefill_s: float
    decode_s: float
    kind: int
    degradation_level: int
    speculative: bool
    fallback_s: float
    ids: np.ndarray
    distances: np.ndarray
    query: np.ndarray
    true_query: np.ndarray


@dataclass(frozen=True)
class RequestResult:
    """One request's end-to-end outcome on its virtual timeline."""

    request_id: int
    mode: str
    ttft_s: float
    e2e_s: float
    strides: tuple
    lookahead_hits: int
    lookahead_misses: int
    wasted_retrieval_s: float
    cpu_energy_j: float
    gpu_energy_j: float
    shed: str | None = None

    @property
    def completed(self) -> bool:
        return self.shed is None

    @property
    def total_energy_j(self) -> float:
        return self.cpu_energy_j + self.gpu_energy_j

    @property
    def retrieval_s(self) -> float:
        """Total search seconds paid, including wasted speculative windows."""
        return float(sum(s.retrieval_s + s.fallback_s for s in self.strides))

    @property
    def encode_s(self) -> float:
        return float(sum(s.encode_s + s.verify_s for s in self.strides))


@dataclass(frozen=True)
class PipelineReport:
    """One cohort's serving outcome plus the modelled GPU operating point."""

    mode: str
    requests: tuple
    gpu_batch: int
    block_s: float

    @property
    def completed(self) -> tuple:
        return tuple(r for r in self.requests if r.completed)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.requests if not r.completed)

    def _values(self, attr: str) -> np.ndarray:
        vals = [getattr(r, attr) for r in self.completed]
        return np.asarray(vals, dtype=np.float64) if vals else np.zeros(1)

    @property
    def mean_ttft_s(self) -> float:
        return float(self._values("ttft_s").mean())

    @property
    def mean_e2e_s(self) -> float:
        return float(self._values("e2e_s").mean())

    def e2e_percentile(self, q: float) -> float:
        return float(np.percentile(self._values("e2e_s"), q))

    @property
    def mean_energy_j(self) -> float:
        return float(self._values("total_energy_j").mean())

    @property
    def lookahead_hits(self) -> int:
        return sum(r.lookahead_hits for r in self.requests)

    @property
    def lookahead_misses(self) -> int:
        return sum(r.lookahead_misses for r in self.requests)

    @property
    def lookahead_hit_rate(self) -> float:
        total = self.lookahead_hits + self.lookahead_misses
        return self.lookahead_hits / total if total else 0.0

    @property
    def wasted_retrieval_s(self) -> float:
        return float(sum(r.wasted_retrieval_s for r in self.requests))


class _Request:
    """Mutable per-request scheduler state."""

    __slots__ = (
        "rid", "context", "rng", "t", "records", "hits", "misses",
        "wasted_s", "cpu_j", "gpu_j", "served", "deadline_at", "shed",
        "ttft_s", "block_start",
    )

    def __init__(self, rid: int, tokens: np.ndarray, seed: int) -> None:
        self.rid = rid
        self.context = np.asarray(tokens, dtype=np.int64)
        if not len(self.context):
            raise ValueError(f"request {rid}: query tokens must be non-empty")
        self.rng = np.random.default_rng(seed)
        self.t = 0.0  # virtual-timeline cursor (seconds since request start)
        self.records: list = []
        self.hits = 0
        self.misses = 0
        self.wasted_s = 0.0
        self.cpu_j = 0.0
        self.gpu_j = 0.0
        self.served: ServedQuery | None = None
        self.deadline_at: float | None = None
        self.shed: str | None = None
        self.ttft_s = 0.0
        self.block_start = 0.0


class _Call:
    """One in-flight retrieval: future + measured window."""

    __slots__ = ("req", "future", "submit_s", "done_s", "encode_s", "emb", "served")

    def __init__(self, req: _Request, emb: np.ndarray, encode_s: float) -> None:
        self.req = req
        self.emb = emb
        self.encode_s = encode_s
        self.future: Future | None = None
        self.submit_s = 0.0
        self.done_s = 0.0
        self.served: ServedQuery | None = None

    @property
    def wall_s(self) -> float:
        return max(self.done_s - self.submit_s, 0.0)

    @property
    def window_s(self) -> float:
        """Encode + retrieval: the stride's full query-side critical path."""
        return self.encode_s + self.wall_s


class RAGServingPipeline:
    """Stride scheduler driving live retrieval under a modelled GPU clock.

    Owns a :class:`ServingFrontend` + :class:`DynamicBatcher` over the given
    searcher (close with :meth:`close` or use as a context manager). One
    pipeline serves one mode; run separate pipelines (fresh caches) to
    compare modes fairly.
    """

    def __init__(
        self,
        searcher: HierarchicalSearcher,
        encoder: SyntheticEncoder,
        chunk_store: ChunkStore,
        *,
        config: PipelineConfig | None = None,
        inference: InferenceModel | None = None,
        cache_config: CacheConfig | None = None,
        admission: "AdmissionController | AdmissionConfig | None" = None,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        tracer: Tracer | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or PipelineConfig()
        self.encoder = encoder
        self.chunk_store = chunk_store
        self.inference = inference or InferenceModel()
        self.frontend = ServingFrontend(searcher, cache_config=cache_config)
        self.batcher = DynamicBatcher(
            self.frontend,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            admission=admission,
        )
        self.tracer = tracer
        self.seed = seed
        self._wall = time.perf_counter

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "RAGServingPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- encoding / generation ----------------------------------------------
    def _encode(self, req: _Request) -> tuple:
        """Encode the request's current windowed context; measured."""
        t0 = self._wall()
        emb = self.encoder.encode_tokens(req.context[-self.config.context_window:])
        return emb.astype(np.float32, copy=False), self._wall() - t0

    def _generate(self, req: _Request) -> None:
        """Grounded pseudo-decode of one stride (drifts the query)."""
        cfg = self.config
        served = req.served
        top_id = int(served.ids[0]) if served is not None and len(served.ids) else -1
        top_tokens = (
            self.chunk_store.get(top_id).tokens
            if top_id >= 0
            else np.empty(0, dtype=np.int64)
        )
        n_grounded = int(round(cfg.stride_tokens * cfg.grounding))
        n_context = cfg.stride_tokens - n_grounded
        parts = []
        if n_grounded and len(top_tokens):
            parts.append(req.rng.choice(top_tokens, size=n_grounded))
        if n_context and len(req.context):
            parts.append(req.rng.choice(req.context, size=n_context))
        if parts:
            generated = np.concatenate(parts).astype(np.int64)
            req.context = np.concatenate([req.context, generated])

    # -- retrieval waves -----------------------------------------------------
    def _shed(self, req: _Request, exc: BaseException, registry) -> None:
        req.shed = f"{type(exc).__name__}: {exc}"
        registry.counter(
            "pipeline_shed_total",
            "pipeline requests shed by admission control or a spent deadline",
        ).inc()

    def _submit_wave(self, calls: Sequence[_Call], registry) -> list:
        """Submit one wave of retrievals; the batcher coalesces them live."""
        submitted = []
        for call in calls:
            req = call.req
            deadline = None
            if req.deadline_at is not None:
                deadline = req.deadline_at - self._wall()
            try:
                if deadline is not None and deadline <= 0:
                    raise DeadlineExceededError(deadline, stage="pipeline")
                call.submit_s = self._wall()
                call.future = self.batcher.submit(
                    call.emb, k=self.config.k, deadline_s=deadline
                )
            except (AdmissionRejectedError, DeadlineExceededError) as exc:
                self._shed(req, exc, registry)
                continue
            # Completion timestamp from the resolving thread, so wall_s is
            # the true submit→done window rather than submit→result() call.
            call.future.add_done_callback(
                lambda _f, c=call: setattr(c, "done_s", self._wall())
            )
            submitted.append(call)
        return submitted

    def _resolve_wave(self, calls: Sequence[_Call], registry) -> list:
        """Wait for a wave; sheds requests whose retrieval hit the deadline."""
        resolved = []
        for call in calls:
            try:
                call.served = call.future.result(timeout=RESULT_TIMEOUT_S)
            except (AdmissionRejectedError, DeadlineExceededError) as exc:
                self._shed(call.req, exc, registry)
                continue
            if not call.done_s:  # pragma: no cover - callback always ran
                call.done_s = self._wall()
            resolved.append(call)
        return resolved

    def _retrieve_blocking(self, reqs: Sequence[_Request], registry) -> dict:
        """Encode + retrieve one wave synchronously; returns rid -> _Call."""
        calls = []
        for req in reqs:
            emb, encode_s = self._encode(req)
            calls.append(_Call(req, emb, encode_s))
        resolved = self._resolve_wave(self._submit_wave(calls, registry), registry)
        return {c.req.rid: c for c in resolved}

    def _charge_cpu(self, req: _Request, call: _Call, verify_s: float = 0.0) -> None:
        cfg = self.config
        req.cpu_j += cfg.retrieval_power_w * call.wall_s
        req.cpu_j += cfg.encode_power_w * (call.encode_s + verify_s)

    # -- main loop -----------------------------------------------------------
    def serve(self, requests: Sequence[np.ndarray]) -> PipelineReport:
        """Serve one cohort of token-id query requests end to end."""
        cfg = self.config
        registry = get_registry()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        reqs = [
            _Request(i, tokens, self.seed + 7919 * i)
            for i, tokens in enumerate(requests)
        ]
        if not reqs:
            raise ValueError("serve needs at least one request")
        registry.counter(
            "pipeline_requests_total", "requests entering the serving pipeline"
        ).inc(len(reqs))
        if cfg.deadline_s is not None:
            start = self._wall()
            for req in reqs:
                req.deadline_at = start + cfg.deadline_s

        gpu_batch = cfg.gpu_batch if cfg.gpu_batch is not None else len(reqs)
        prefill = self.inference.prefill(gpu_batch, cfg.input_tokens)
        decode = self.inference.decode(gpu_batch, cfg.stride_tokens)
        block_s = prefill.latency_s + decode.latency_s
        # Batch-shared modelled GPU energy per stride per request.
        gpu_stride_j = (prefill.energy_j + decode.energy_j) / gpu_batch

        live = list(reqs)
        # Stride 0: nothing to overlap with — encode + blocking retrieval in
        # every mode, so TTFT = encode + retrieval[0] + prefill[0].
        first = self._retrieve_blocking(live, registry)
        live = [r for r in live if r.shed is None]
        for req in live:
            call = first[req.rid]
            req.served = call.served
            req.t = call.window_s
            req.ttft_s = call.window_s + prefill.latency_s
            self._charge_cpu(req, call)
            self._record_stride(req, 0, call, prefill, decode)

        overlap = cfg.mode in ("pipelined", "lookahead")
        for i in range(cfg.n_strides):
            if not live:
                break
            for req in live:
                req.block_start = req.t

            # 1. Overlap modes issue stride i+1's retrieval at block-i start
            #    from the *current* (pre-decode) context — the stale query.
            spec: dict = {}
            if overlap and i + 1 < cfg.n_strides:
                calls = []
                for req in live:
                    emb, encode_s = self._encode(req)
                    calls.append(_Call(req, emb, encode_s))
                spec = {c.req.rid: c for c in self._submit_wave(calls, registry)}
                live = [r for r in live if r.shed is None]

            # 2. The inference block advances the modelled GPU clock; the
            #    pseudo-decode's tokens drift the context for the true query.
            for req in live:
                self._generate(req)
                req.gpu_j += gpu_stride_j

            if i + 1 >= cfg.n_strides:
                for req in live:
                    req.t = req.block_start + block_s
                break

            # 3. Obtain stride i+1's results per discipline.
            if not overlap:
                for req in live:
                    req.t = req.block_start + block_s
                nxt = self._retrieve_blocking(live, registry)
                live = [r for r in live if r.shed is None]
                for req in live:
                    call = nxt[req.rid]
                    req.served = call.served
                    req.t += call.window_s
                    self._charge_cpu(req, call)
                    self._record_stride(req, i + 1, call, prefill, decode)
                continue

            resolved = {
                c.req.rid: c
                for c in self._resolve_wave(list(spec.values()), registry)
            }
            live = [r for r in live if r.shed is None]
            fallback_reqs = []
            verify: dict = {}
            for req in live:
                call = resolved[req.rid]
                if cfg.mode == "pipelined":
                    # PipeRAG: stale results are used unconditionally, no
                    # verification encode. The true-query embedding is kept
                    # for evaluation only (its cost is not on the timeline).
                    req.served = call.served
                    req.t = req.block_start + max(block_s, call.window_s)
                    self._charge_cpu(req, call)
                    self._record_stride(
                        req, i + 1, call, prefill, decode,
                        speculative=True, true_query=self._encode(req)[0],
                    )
                    continue
                true_emb, verify_s = self._encode(req)
                verify[req.rid] = (true_emb, verify_s)
                self._charge_cpu(req, call, verify_s)
                if float(call.emb @ true_emb) >= cfg.speculation_threshold:
                    req.hits += 1
                    registry.counter(
                        "pipeline_lookahead_hits_total",
                        "speculative stride retrievals verified and reused",
                    ).inc()
                    req.served = call.served
                    req.t = req.block_start + max(block_s, call.window_s) + verify_s
                    self._record_stride(
                        req, i + 1, call, prefill, decode,
                        speculative=True, verify_s=verify_s, true_query=true_emb,
                    )
                else:
                    req.misses += 1
                    req.wasted_s += call.window_s
                    registry.counter(
                        "pipeline_lookahead_misses_total",
                        "mis-speculated stride retrievals re-searched fresh",
                    ).inc()
                    fallback_reqs.append(req)

            if fallback_reqs:
                calls = []
                for req in fallback_reqs:
                    true_emb, _ = verify[req.rid]
                    # Fresh search reuses the verify embedding: encode_s=0.
                    calls.append(_Call(req, true_emb, 0.0))
                fresh = {
                    c.req.rid: c
                    for c in self._resolve_wave(
                        self._submit_wave(calls, registry), registry
                    )
                }
                live = [r for r in live if r.shed is None]
                for req in fallback_reqs:
                    if req.shed is not None:
                        continue
                    call = fresh[req.rid]
                    _, verify_s = verify[req.rid]
                    req.served = call.served
                    req.t = req.block_start + block_s + verify_s + call.wall_s
                    req.cpu_j += cfg.retrieval_power_w * call.wall_s
                    self._record_stride(
                        req, i + 1, call, prefill, decode,
                        verify_s=verify_s,
                        fallback_s=resolved[req.rid].window_s,
                    )

        results = []
        for req in reqs:
            result = self._finish_request(req, registry)
            results.append(result)
            if tracer.enabled and req.shed is None:
                self._emit_trace(tracer, result, block_s)
        return PipelineReport(
            mode=cfg.mode,
            requests=tuple(results),
            gpu_batch=gpu_batch,
            block_s=block_s,
        )

    # -- bookkeeping ---------------------------------------------------------
    def _record_stride(
        self,
        req: _Request,
        stride: int,
        call: _Call,
        prefill,
        decode,
        *,
        speculative: bool = False,
        verify_s: float = 0.0,
        fallback_s: float = 0.0,
        true_query: np.ndarray | None = None,
    ) -> None:
        served = call.served
        req.records.append(
            StrideRecord(
                stride=stride,
                encode_s=call.encode_s,
                retrieval_s=call.wall_s,
                verify_s=verify_s,
                prefill_s=prefill.latency_s,
                decode_s=decode.latency_s,
                kind=int(served.kind),
                degradation_level=int(served.degradation_level),
                speculative=speculative,
                fallback_s=fallback_s,
                ids=np.asarray(served.ids).copy(),
                distances=np.asarray(served.distances).copy(),
                query=call.emb,
                true_query=call.emb if true_query is None else true_query,
            )
        )

    def _finish_request(self, req: _Request, registry) -> RequestResult:
        if req.shed is None:
            registry.histogram(
                "pipeline_ttft_seconds", "measured time to first token"
            ).observe(req.ttft_s)
            registry.histogram(
                "pipeline_e2e_seconds", "measured end-to-end request latency"
            ).observe(req.t)
        return RequestResult(
            request_id=req.rid,
            mode=self.config.mode,
            ttft_s=req.ttft_s,
            e2e_s=req.t,
            strides=tuple(req.records),
            lookahead_hits=req.hits,
            lookahead_misses=req.misses,
            wasted_retrieval_s=req.wasted_s,
            cpu_energy_j=req.cpu_j,
            gpu_energy_j=req.gpu_j,
            shed=req.shed,
        )

    # -- tracing -------------------------------------------------------------
    def _emit_trace(self, tracer: Tracer, result: RequestResult, block_s: float) -> None:
        """Reconstruct the request's timeline as a span tree from t=0.

        Mirrors the cursor arithmetic of :meth:`serve` exactly, so the root
        closes at ``e2e_s`` (up to float association order) and the
        cross-worker overlap (cpu retrieval under the gpu inference block)
        is visible in the Chrome trace. Encode and retrieval live on worker
        ``cpu`` — they are measured on the host — and prefill/decode on
        ``gpu``. A wasted speculative window that outlives its block is
        clamped to the block end on the ``cpu`` track (the full measured
        window is in the span attrs) so same-worker spans stay disjoint.
        """
        cfg = self.config
        records = result.strides
        root = tracer.start_span(
            "request",
            start_s=0.0,
            worker="timeline",
            request=result.request_id,
            mode=cfg.mode,
            strides=len(records),
            ttft_s=result.ttft_s,
            e2e_s=result.e2e_s,
            lookahead_hits=result.lookahead_hits,
            lookahead_misses=result.lookahead_misses,
        )
        r0 = records[0]
        tracer.record(
            "encode", start_s=0.0, end_s=r0.encode_s, parent=root, worker="cpu"
        )
        t = r0.encode_s
        tracer.record(
            "retrieval", start_s=t, end_s=t + r0.retrieval_s,
            parent=root, worker="cpu", stride=0, kind=r0.kind,
        )
        t += r0.retrieval_s
        for i, rec in enumerate(records):
            block_start = t
            tracer.record(
                "prefill", start_s=t, end_s=t + rec.prefill_s,
                parent=root, worker="gpu", stride=i,
            )
            tracer.record(
                "decode", start_s=t + rec.prefill_s, end_s=t + block_s,
                parent=root, worker="gpu", stride=i,
            )
            if i + 1 >= len(records):
                t = block_start + block_s
                break
            nxt = records[i + 1]
            if nxt.speculative:
                # Issued at block start, ran under the block.
                tracer.record(
                    "encode", start_s=block_start,
                    end_s=block_start + nxt.encode_s,
                    parent=root, worker="cpu", stride=i + 1, speculative=True,
                )
                spec_end = block_start + nxt.encode_s + nxt.retrieval_s
                tracer.record(
                    "retrieval", start_s=block_start + nxt.encode_s,
                    end_s=spec_end, parent=root, worker="cpu",
                    stride=i + 1, kind=nxt.kind, speculative=True,
                )
                t = block_start + max(block_s, nxt.encode_s + nxt.retrieval_s)
                if nxt.verify_s:
                    tracer.record(
                        "encode", start_s=t, end_s=t + nxt.verify_s,
                        parent=root, worker="cpu", stride=i + 1, verify=True,
                    )
                    t += nxt.verify_s
            elif nxt.fallback_s:
                # Mis-speculation: wasted prefetch under the block (clamped
                # to the block on the cpu track), then verify encode + fresh
                # search after the block.
                tracer.record(
                    "retrieval", start_s=block_start,
                    end_s=block_start + min(nxt.fallback_s, block_s),
                    parent=root, worker="cpu", stride=i + 1,
                    speculative=True, wasted=True,
                    measured_window_s=nxt.fallback_s,
                )
                t = block_start + block_s
                tracer.record(
                    "encode", start_s=t, end_s=t + nxt.verify_s,
                    parent=root, worker="cpu", stride=i + 1, verify=True,
                )
                t += nxt.verify_s
                tracer.record(
                    "retrieval", start_s=t, end_s=t + nxt.retrieval_s,
                    parent=root, worker="cpu", stride=i + 1, kind=nxt.kind,
                )
                t += nxt.retrieval_s
            else:
                # Sequential: encode + retrieve strictly after the block.
                t = block_start + block_s
                tracer.record(
                    "encode", start_s=t, end_s=t + nxt.encode_s,
                    parent=root, worker="cpu", stride=i + 1,
                )
                t += nxt.encode_s
                tracer.record(
                    "retrieval", start_s=t, end_s=t + nxt.retrieval_s,
                    parent=root, worker="cpu", stride=i + 1, kind=nxt.kind,
                )
                t += nxt.retrieval_s
        root.finish(result.e2e_s)
