"""Thin launcher for the retrieval microbenchmark harness.

Usage (from the repo root)::

    python benchmarks/bench_retrieval.py [--smoke] [--out BENCH_retrieval.json]

The harness itself lives in :mod:`repro.bench.retrieval` so it is importable
and installable (``hermes-bench-retrieval`` console entry); this wrapper only
makes the checkout runnable without an install.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.retrieval import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
