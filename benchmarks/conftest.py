"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure: it runs the experiment
once under ``pytest-benchmark`` timing (``rounds=1`` — these are experiment
regenerations, not micro-benchmarks), asserts the paper's qualitative shape,
and prints the regenerated rows/series so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation section.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
