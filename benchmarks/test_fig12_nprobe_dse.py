"""Figure 12: nProbe design-space exploration."""

from repro.experiments import fig12
from repro.metrics.reporting import format_table


def _print_panel(title, points):
    rows = [
        (p.sample_nprobe, p.deep_nprobe, p.clusters_searched, p.ndcg, p.latency_s)
        for p in points
        if p.clusters_searched in (1, 3, 10)
    ]
    print("\n" + format_table(
        ["sample nProbe", "deep nProbe", "clusters", "NDCG", "latency (s)"],
        rows,
        title=title,
    ))


def test_fig12_small_nprobe_sweep(run_once):
    points = run_once(fig12.small_nprobe_sweep)
    _print_panel("Figure 12 (left): sampling nProbe sweep", points)

    at = lambda np_, m: next(
        p for p in points if p.sample_nprobe == np_ and p.clusters_searched == m
    )
    # Better sampling improves routing at modest latency cost.
    assert at(8, 3).ndcg >= at(1, 3).ndcg - 0.01
    assert at(8, 3).latency_s < 2 * at(1, 3).latency_s


def test_fig12_large_nprobe_sweep(run_once):
    points = run_once(fig12.large_nprobe_sweep)
    _print_panel("Figure 12 (right): deep nProbe sweep", points)

    at = lambda np_, m: next(
        p for p in points if p.deep_nprobe == np_ and p.clusters_searched == m
    )
    # Deep-search depth buys NDCG at a much steeper latency cost.
    assert at(128, 3).ndcg >= at(16, 3).ndcg - 0.01
    assert at(128, 3).latency_s > 3 * at(16, 3).latency_s

    # The DSE decision at the paper's 3-cluster design point: a deep search
    # of nProbe >= 64 is needed for near-maximal NDCG (the paper picks 128).
    at_design_point = [p for p in points if p.clusters_searched == 3]
    best = fig12.optimal_config(at_design_point)
    print(f"chosen operating point: sample {best.sample_nprobe} / deep {best.deep_nprobe}")
    assert best.sample_nprobe == 8
    assert best.deep_nprobe >= 64
