"""Thin launcher for the live end-to-end serving benchmark harness.

Usage (from the repo root)::

    python benchmarks/bench_e2e.py [--smoke] [--out BENCH_e2e.json]

The harness itself lives in :mod:`repro.bench.e2e` so it is importable and
installable (``hermes-bench-e2e`` console entry); this wrapper only makes
the checkout runnable without an install.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.e2e import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
