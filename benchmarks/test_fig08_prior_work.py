"""Figure 8: PipeRAG and RAGCache lose their edge as datastores grow."""

from repro.experiments import fig08


def test_fig08_prior_work(run_once):
    fig = run_once(fig08.run)
    print("\n" + fig.render())

    piperag = fig.get("PipeRAG")
    ragcache = fig.get("RAGCache")

    # RAGCache's speedup decays monotonically with datastore size.
    assert ragcache.y == sorted(ragcache.y, reverse=True)
    # PipeRAG peaks near the retrieval/inference crossover, then decays.
    peak = max(piperag.y)
    assert piperag.y.index(peak) not in (0, len(piperag.y) - 1)
    assert peak > 1.3  # meaningful overlap benefit near the crossover
    # At the trillion scale both prior techniques are nearly useless.
    assert piperag.y[-1] < 1.1
    assert ragcache.y[-1] < 1.1


def test_fig08_crossover(run_once):
    cross = run_once(fig08.crossover_size)
    print(f"\nretrieval/inference crossover: {cross:.3g} tokens")
    assert 5e9 < cross < 5e10
