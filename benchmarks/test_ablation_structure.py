"""Ablation: how much corpus cluster structure does Hermes need?

Hermes's accuracy claim rests on the corpus being semantically clusterable.
This ablation sweeps the topic spread of the synthetic corpus from tightly
clustered to nearly structureless and measures the NDCG gap between Hermes
(3-of-10 clusters) and the monolithic search — quantifying the regime where
the paper's design applies.
"""

from repro.baselines.monolithic import MonolithicRetriever
from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.datastore.embeddings import make_corpus
from repro.datastore.queries import trivia_queries
from repro.metrics.ndcg import ndcg
from repro.metrics.reporting import format_table

SPREADS = (0.25, 0.45, 0.8)


def sweep_structure(spreads=SPREADS, *, n_docs=4000, n_queries=48):
    rows = []
    for spread in spreads:
        corpus = make_corpus(n_docs, n_topics=10, dim=64, spread=spread, seed=11)
        queries = trivia_queries(corpus.topic_model, n_queries, query_spread=spread)
        mono = MonolithicRetriever(corpus.embeddings)
        _, truth = mono.ground_truth(queries.embeddings, 5)
        _, mono_ids = mono.search(queries.embeddings, 5)
        datastore = cluster_datastore(corpus.embeddings, HermesConfig())
        hermes = HermesSearcher(datastore)
        result = hermes.search(queries.embeddings, clusters_to_search=3)
        rows.append(
            {
                "spread": spread,
                "mono_ndcg": ndcg(mono_ids, truth),
                "hermes_ndcg": ndcg(result.ids, truth),
            }
        )
    return rows


def test_ablation_structure(run_once):
    rows = run_once(sweep_structure)
    print("\n" + format_table(
        ["topic spread", "monolithic NDCG", "Hermes@3 NDCG", "gap"],
        [
            (r["spread"], r["mono_ndcg"], r["hermes_ndcg"],
             r["mono_ndcg"] - r["hermes_ndcg"])
            for r in rows
        ],
        title="Ablation: corpus structure strength vs Hermes accuracy",
    ))

    # With strong structure, Hermes is iso-accurate.
    assert rows[0]["mono_ndcg"] - rows[0]["hermes_ndcg"] < 0.03
    # The gap widens as structure dissolves (Hermes routes blind), but stays
    # graceful rather than catastrophic.
    gaps = [r["mono_ndcg"] - r["hermes_ndcg"] for r in rows]
    assert gaps[-1] >= gaps[0] - 1e-6
    assert rows[-1]["hermes_ndcg"] > 0.5
