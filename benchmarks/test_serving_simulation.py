"""Serving-simulation bench: event-driven validation of the pipeline claims.

Cross-checks the paper's "retrieval hides under inference" pipelining story
by *executing* the serving system: at the recommended cluster sizing the GPU
saturates and retrieval nodes idle; with monolithic-scale retrieval the GPU
starves. Also reports latency percentiles the closed-form model cannot see.
"""


from repro.datastore.embeddings import zipf_weights
from repro.llm.generation import GenerationConfig
from repro.perfmodel.aggregate import expected_deep_loads
from repro.metrics.reporting import format_table
from repro.serving import PipelineSimulator, plan_from_models

CONFIG = GenerationConfig(batch=128, output_tokens=128, stride=16)


def simulate(total_tokens: float, *, n_clusters=10, n_batches=10):
    loads = expected_deep_loads(
        CONFIG.batch, zipf_weights(n_clusters, exponent=0.45), 3
    )
    plan = plan_from_models(
        CONFIG,
        shard_tokens=[total_tokens / n_clusters] * n_clusters,
        deep_loads=loads,
    )
    sim = PipelineSimulator(plan, batch_size=CONFIG.batch)
    return sim.run(n_batches)


def run_regimes():
    return {
        "hidden (10B total)": simulate(10e9),
        "balanced (100B total)": simulate(100e9),
        "retrieval-bound (1T total)": simulate(1e12),
    }


def test_serving_simulation(run_once):
    reports = run_once(run_regimes)
    rows = []
    for name, report in reports.items():
        rows.append(
            (
                name,
                report.throughput_qps,
                report.mean_latency_s,
                report.latency_percentile(99),
                f"{report.gpu_utilization:.0%}",
                f"{report.node_utilization.max():.0%}",
            )
        )
    print("\n" + format_table(
        ["regime", "QPS", "mean lat (s)", "p99 lat (s)", "GPU util", "hot node util"],
        rows,
        title="Event-driven serving simulation across regimes",
    ))

    hidden = reports["hidden (10B total)"]
    bound = reports["retrieval-bound (1T total)"]
    # At the recommended sizing the GPU is the bottleneck (retrieval hidden).
    assert hidden.gpu_utilization > 0.9
    assert hidden.node_utilization.max() < 0.5
    # At monolithic scales the roles flip: nodes saturate, GPU starves.
    assert bound.gpu_utilization < 0.5
    assert bound.node_utilization.max() > 0.8
    # And throughput degrades accordingly.
    assert hidden.throughput_qps > 3 * bound.throughput_qps
