"""Ablation: adaptive early termination inside the deep search (§7 ext.).

The paper's related work argues learned early termination and SPANN-style
pruning are complementary to Hermes. This bench measures the effort/recall
trade-off of our implementation on a per-cluster index — how many cells the
deep search actually needs before its top-k stops changing.
"""


from repro.ann.early_termination import search_with_early_termination
from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex
from repro.datastore.embeddings import make_corpus
from repro.datastore.queries import trivia_queries
from repro.metrics.recall import recall_at_k
from repro.metrics.reporting import format_table

PATIENCES = (1, 2, 4, 8, 16)


def sweep_patience(patiences=PATIENCES, *, n_docs=4000, nlist=64, max_nprobe=64):
    corpus = make_corpus(n_docs, n_topics=10, dim=48, seed=21)
    queries = trivia_queries(corpus.topic_model, 48).embeddings
    index = IVFIndex(48, "ip", nlist=nlist, nprobe=max_nprobe)
    index.train(corpus.embeddings)
    index.add(corpus.embeddings)
    flat = FlatIndex(48, "ip")
    flat.add(corpus.embeddings)
    _, truth = flat.search(queries, 5)

    rows = []
    for patience in patiences:
        result = search_with_early_termination(
            index, queries, 5, max_nprobe=max_nprobe, patience=patience
        )
        rows.append(
            {
                "patience": patience,
                "cells": result.mean_cells_probed,
                "recall": recall_at_k(result.ids, truth),
            }
        )
    # Reference: fixed full-depth probing.
    _, fixed = index.search(queries, 5, nprobe=max_nprobe)
    rows.append(
        {"patience": "full", "cells": float(max_nprobe), "recall": recall_at_k(fixed, truth)}
    )
    return rows


def test_ablation_early_termination(run_once):
    rows = run_once(sweep_patience)
    print("\n" + format_table(
        ["patience", "mean cells probed", "recall@5"],
        [(r["patience"], r["cells"], r["recall"]) for r in rows],
        title="Ablation: IVF adaptive early termination (of 64 cells max)",
    ))
    full = rows[-1]
    moderate = next(r for r in rows if r["patience"] == 16)
    # Patience 16 keeps recall within a few points of full-depth probing
    # while touching well under half the cells.
    assert moderate["recall"] > full["recall"] - 0.05
    assert moderate["cells"] < 0.5 * full["cells"]
    # Effort grows monotonically with patience.
    efforts = [r["cells"] for r in rows[:-1]]
    assert efforts == sorted(efforts)
