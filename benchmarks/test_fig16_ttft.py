"""Figure 16: time-to-first-token across datastore sizes."""

import pytest

from repro.experiments import fig16
from repro.metrics.reporting import format_table


def test_fig16_ttft(run_once):
    points = run_once(fig16.run)
    rows = []
    for p in points:
        normalized = p.normalized_ttft()
        rows.append(
            (
                f"{p.datastore_tokens:.0e}",
                normalized["baseline"],
                normalized["hermes"],
                normalized["hermes_combined"],
                f"{p.hermes_ttft_speedup():.2f}x",
            )
        )
    print("\n" + format_table(
        ["tokens", "baseline", "hermes", "combined", "speedup"],
        rows,
        title="Figure 16: normalized TTFT",
    ))

    # Paper: 9.1x TTFT improvement at the trillion-token scale.
    assert points[-1].hermes_ttft_speedup() == pytest.approx(9.1, rel=0.25)
    # Pipelining/caching cannot cut TTFT — only Hermes's retrieval does.
    for p in points:
        assert not p.pipelining_helps_ttft()
    # Gains grow with scale.
    speedups = [p.hermes_ttft_speedup() for p in points]
    assert speedups == sorted(speedups)
