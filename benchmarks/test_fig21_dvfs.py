"""Figure 21: DVFS energy savings vs clusters deep-searched."""

import pytest

from repro.experiments import fig21
from repro.metrics.reporting import format_table


def test_fig21_dvfs(run_once):
    points = run_once(fig21.run)
    rows = [
        (
            p.clusters_searched,
            p.energy_none_j,
            p.energy_baseline_j,
            p.energy_enhanced_j,
            f"{p.baseline_savings:.1%}",
            f"{p.enhanced_savings:.1%}",
        )
        for p in points
    ]
    print("\n" + format_table(
        ["clusters", "none (J)", "baseline (J)", "enhanced (J)", "base save", "enh save"],
        rows,
        title="Figure 21: DVFS policies",
    ))

    avg = fig21.average_savings(points)
    print(f"averages: baseline {avg['baseline']:.2%} (paper 12.24%), "
          f"enhanced {avg['enhanced']:.2%} (paper 20.44%)")

    # Paper averages within a few points.
    assert avg["baseline"] == pytest.approx(0.1224, abs=0.05)
    assert avg["enhanced"] == pytest.approx(0.2044, abs=0.06)
    # Policy ordering holds at every fan-out.
    for p in points:
        assert p.energy_enhanced_j <= p.energy_baseline_j <= p.energy_none_j
