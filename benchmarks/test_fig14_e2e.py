"""Figure 14: Hermes vs prior techniques across serving configurations."""

from repro.experiments import fig14


def test_fig14_batch_sweep(run_once):
    points = run_once(fig14.sweep_batch)
    print("\n" + fig14.render(points, metric="latency"))
    print(fig14.render(points, metric="energy"))
    for p in points:
        lat = p.normalized_latency()
        # Hermes standalone beats the baseline; the combined stack beats all.
        assert lat["hermes"] < 1.0
        assert lat["hermes_combined"] <= min(lat.values()) + 1e-9


def test_fig14_datastore_sweep(run_once):
    points = run_once(fig14.sweep_datastore)
    print("\n" + fig14.render(points, metric="latency"))
    print(fig14.render(points, metric="energy"))

    speedups = [p.hermes_speedup() for p in points]
    assert speedups == sorted(speedups)  # gains grow with datastore size
    at_1t = points[-1]
    # Paper headline: up to 9.33x latency / 2.10x energy at 1T tokens.
    print(f"1T: {at_1t.hermes_speedup():.2f}x latency, "
          f"{at_1t.hermes_energy_saving():.2f}x energy")
    assert at_1t.hermes_speedup() > 8.0
    assert at_1t.hermes_energy_saving() > 1.8
    # Paper range across configs: 2.45-10.25x latency.
    assert 2.0 < points[1].hermes_speedup() < 12.0


def test_fig14_stride_sweep(run_once):
    points = run_once(fig14.sweep_stride)
    print("\n" + fig14.render(points, metric="latency"))
    speedups = [p.hermes_speedup() for p in points]
    # More frequent retrieval -> larger cumulative gains (paper: up to
    # 10.12x at stride 4).
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > 6.0
