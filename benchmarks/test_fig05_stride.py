"""Figure 5: perplexity and retrieval latency vs retrieval stride."""

from repro.experiments import fig05


def test_fig05_panels(run_once):
    panels = run_once(fig05.run)
    print()
    for fig in panels.values():
        print(fig.render())

    ppl = panels["perplexity"]
    # Smaller models with frequent retrieval rival larger models.
    retro = ppl.get("RETRO 578M")
    gpt2_large = ppl.get("GPT-2 1.5B")
    assert retro.y[retro.x.index(4)] < gpt2_large.y[gpt2_large.x.index(64)] + 3.5
    # Perplexity degrades monotonically with stride for every model.
    for series in ppl.series:
        assert series.y == sorted(series.y)

    lat = panels["retrieval_latency"]
    for series in lat.series:
        # Total retrieval time halves as the stride doubles.
        for a, b in zip(series.y, series.y[1:]):
            assert a / b == sorted([a / b, 1.9, 2.1])[1]  # ~2x each step


def test_fig05_stride_cost_headline(run_once):
    # Paper: stride 4 vs 64 at 100B tokens costs ~12.12x end to end.
    ratio = run_once(fig05.e2e_stride_cost_ratio)
    print(f"\nE2E stride-4/stride-64 ratio at 100B: {ratio:.2f}x (paper 12.12x)")
    assert 8 < ratio < 16
