"""Table 1: quantization scheme sweep (recall vs vector size)."""

from repro.experiments import table1


def test_table1_quantization(run_once):
    rows = run_once(table1.run, n_docs=1500, n_queries=32)
    print("\n" + table1.render(rows))

    by = {r.scheme: r for r in rows}
    # Code sizes are exact.
    for row in rows:
        assert row.vector_bytes == row.paper_vector_bytes
    # SQ8 is the knee: ~Flat recall at 1/4 the bytes; cheaper codecs pay.
    assert table1.sq8_is_knee(rows)
    # Row ordering mirrors the paper's conclusions.
    assert by["flat"].recall >= by["sq8"].recall - 0.01
    assert by["sq8"].recall > by["sq4"].recall
    assert by["sq8"].recall > by["pq256"].recall
