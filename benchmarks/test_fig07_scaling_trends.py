"""Figure 7: retrieval throughput/energy/memory scaling trends."""

import pytest

from repro.experiments import fig07


def test_fig07_scaling_trends(run_once):
    points = run_once(fig07.run)
    print("\n" + fig07.render(points))

    # Each decade of datastore size costs ~a decade of everything.
    for a, b in zip(points, points[1:]):
        assert b.throughput_qps == pytest.approx(a.throughput_qps / 10, rel=0.05)
        assert b.energy_per_query_j == pytest.approx(a.energy_per_query_j * 10, rel=0.05)
        assert b.memory_gb == pytest.approx(a.memory_gb * 10, rel=0.05)

    by_tokens = {p.datastore_tokens: p for p in points}
    # Paper anchors: ~5.69 QPS at 100B; ~10 TB at 1T.
    assert by_tokens[100e9].throughput_qps == pytest.approx(5.69, rel=0.05)
    assert 5000 < by_tokens[1e12].memory_gb < 12000


def test_fig07_gpu_contrast(run_once):
    contrast = run_once(fig07.gpu_contrast)
    print(f"\nGPU contrast: {contrast}")
    # Paper: GPU prefill 132 QPS at 2.2 J/query vs CPU's 5.69 QPS @100B.
    assert contrast["gpu_prefill_qps"] == pytest.approx(132, rel=0.02)
    assert contrast["gpu_prefill_j_per_query"] == pytest.approx(2.2, rel=0.1)
