"""Figure 19: optimal cluster sizes across inference serving scenarios."""

from repro.experiments import fig19
from repro.metrics.reporting import format_table


def test_fig19_inference_grid(run_once):
    cells = run_once(fig19.inference_latency_grid)
    rows = [
        (c.batch, f"({c.input_tokens},{c.output_tokens})", c.latency_s)
        for c in cells
    ]
    print("\n" + format_table(
        ["batch", "(in,out)", "latency (s)"],
        rows,
        title="Figure 19 (left): inference latency grid",
    ))
    # Longer sequences cost more at every batch size.
    by_batch = {}
    for c in cells:
        by_batch.setdefault(c.batch, {})[(c.input_tokens, c.output_tokens)] = c.latency_s
    for shapes in by_batch.values():
        assert shapes[(256, 32)] > shapes[(32, 4)]


def test_fig19_optimal_cluster_sizes(run_once):
    cells = run_once(fig19.optimal_cluster_sizes)
    rows = [
        (c.input_tokens, c.inference_window_s, f"{c.optimal_cluster_tokens:.3g}")
        for c in cells
    ]
    print("\n" + format_table(
        ["input tokens", "window (s)", "optimal cluster (tokens)"],
        rows,
        title="Figure 19 (right): hidden cluster size vs input length",
    ))
    sizes = [c.optimal_cluster_tokens for c in cells]
    # Paper's example direction: longer inputs -> bigger hidden clusters
    # (their 32->2048 tokens moved clusters from 34B to 114B).
    assert sizes == sorted(sizes)
    assert sizes[-1] / sizes[0] > 2.0
    assert all(1e9 < s < 1e12 for s in sizes)
