"""Thin launcher for the serving cache/batching benchmark harness.

Usage (from the repo root)::

    python benchmarks/bench_serve.py [--smoke] [--out BENCH_serve.json]

The harness itself lives in :mod:`repro.bench.serve` so it is importable and
installable (``hermes-bench-serve`` console entry); this wrapper only makes
the checkout runnable without an install.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.serve import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
