"""Ablation: auditing RAGCache's ideal-hit-rate assumption.

The paper grants RAGCache a 100% KV-cache hit rate across strides (§3). This
ablation runs *real* token-level strided sessions (retrieval re-executed
each stride with a drifting query) and measures the actual consecutive-stride
document overlap and the hit rate of a real LRU prefix cache — bounding how
much of the ideal saving a deployment would truly capture.
"""

import numpy as np

from repro.baselines.ragcache import simulate_cache_hit_rate
from repro.core.clustering import cluster_datastore
from repro.core.config import HermesConfig
from repro.core.hierarchical import HermesSearcher
from repro.core.session import StridedRAGSession
from repro.datastore.chunkstore import ChunkStore
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder
from repro.metrics.reporting import format_table


def run_sessions(*, n_sessions=10, n_strides=8):
    vocab = TokenVocabulary(n_topics=6, pool_size=150, common_size=80)
    gen = CorpusGenerator(vocab, doc_tokens=96, topical_fraction=0.8, seed=4)
    docs = gen.generate(360)
    chunks = chunk_documents(docs, chunk_tokens=48)
    encoder = SyntheticEncoder(dim=64, seed=0)
    embeddings = encoder.encode_chunks(chunks)
    datastore = cluster_datastore(
        embeddings, HermesConfig(n_clusters=6, clusters_to_search=2)
    )
    searcher = HermesSearcher(datastore)
    store = ChunkStore(chunks)
    rng = np.random.default_rng(9)

    records = []
    for s in range(n_sessions):
        topic = s % 6
        query = rng.choice(vocab.topic_pool(topic), size=16, replace=False)
        session = StridedRAGSession(
            searcher, encoder, store, stride_tokens=16, grounding=0.6, seed=s
        )
        trace = session.run(query, n_strides=n_strides)
        records.append(
            {
                "topic": topic,
                "overlap": trace.document_overlap(),
                "routing_stability": trace.routing_stability(),
                "lru_hit_rate": simulate_cache_hit_rate(
                    trace.stride_results(), capacity=4096, chunk_tokens=48
                ),
            }
        )
    return records


def test_ablation_ragcache_overlap(run_once):
    records = run_once(run_sessions)
    print("\n" + format_table(
        ["topic", "doc overlap", "routing stability", "LRU hit rate"],
        [
            (r["topic"], r["overlap"], r["routing_stability"], r["lru_hit_rate"])
            for r in records
        ],
        title="Ablation: real strided sessions vs RAGCache's ideal assumption",
    ))
    mean_overlap = float(np.mean([r["overlap"] for r in records]))
    mean_hits = float(np.mean([r["lru_hit_rate"] for r in records]))
    mean_routing = float(np.mean([r["routing_stability"] for r in records]))
    print(
        f"means: overlap {mean_overlap:.2f}, LRU hit rate {mean_hits:.2f}, "
        f"routing stability {mean_routing:.2f} (paper assumes hit rate 1.0)"
    )

    # Substantial-but-not-ideal reuse: the assumption is optimistic yet
    # directionally sound for topically stable sessions.
    assert 0.2 < mean_overlap < 1.0
    # The LRU rate trails raw overlap slightly: every session pays k cold
    # misses on its first stride, which the ideal assumption waives.
    assert mean_hits > 0.5
    assert mean_hits > mean_overlap - 0.15
    # Hermes routing is stable across strides, so per-node state persists.
    assert mean_routing > 0.6
