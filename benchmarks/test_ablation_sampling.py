"""Ablation: how many documents should the sampling phase retrieve?

Hermes samples a *single* document per cluster (§4.2, ``sample_k=1``). This
ablation asks whether sampling more documents per cluster buys routing
quality, and how the sampling nProbe interacts — quantifying the design
choice DESIGN.md calls out.
"""

from repro.core.hierarchical import HierarchicalSearcher
from repro.core.router import SampledRouter
from repro.experiments.common import (
    accuracy_queries,
    clustered_accuracy_datastore,
    monolithic_accuracy_retriever,
)
from repro.metrics.ndcg import ndcg
from repro.metrics.reporting import format_table

SAMPLE_KS = (1, 3, 5)
SAMPLE_NPROBES = (2, 8)


def sweep_sampling(ks=SAMPLE_KS, nprobes=SAMPLE_NPROBES, *, m=2):
    queries = accuracy_queries().embeddings
    _, truth = monolithic_accuracy_retriever().ground_truth(queries, 5)
    datastore = clustered_accuracy_datastore()
    rows = []
    for nprobe in nprobes:
        for sample_k in ks:
            searcher = HierarchicalSearcher(
                datastore,
                router=SampledRouter(sample_nprobe=nprobe, sample_k=sample_k),
            )
            result = searcher.search(queries, clusters_to_search=m)
            rows.append(
                {
                    "sample_nprobe": nprobe,
                    "sample_k": sample_k,
                    "ndcg": ndcg(result.ids, truth),
                }
            )
    return rows


def test_ablation_sampling(run_once):
    rows = run_once(sweep_sampling)
    print("\n" + format_table(
        ["sample nProbe", "sample k", "NDCG @ 2 clusters"],
        [(r["sample_nprobe"], r["sample_k"], r["ndcg"]) for r in rows],
        title="Ablation: sampling fan-out (paper uses k=1)",
    ))

    at = lambda nprobe, k: next(
        r["ndcg"] for r in rows
        if r["sample_nprobe"] == nprobe and r["sample_k"] == k
    )
    # The paper's choice holds: one sampled document at nProbe 8 is already
    # within a point of the richer sampling configurations...
    assert at(8, 1) >= max(at(8, 3), at(8, 5)) - 0.015
    # ...while sampling depth (nProbe) matters more than sample count.
    assert at(8, 1) >= at(2, 5) - 0.02
