"""Figure 11: NDCG vs clusters deep-searched (real-search ablation)."""

from repro.experiments import fig11


def test_fig11_accuracy(run_once):
    sweep = run_once(fig11.run)
    print("\n" + fig11.to_figure(sweep).render())

    # Hermes reaches iso-accuracy with ~3 clusters (the paper's design point).
    assert sweep.hermes_iso_accuracy_clusters() <= 3

    at = lambda curve, m: curve[sweep.clusters.index(m)]
    # Naive splitting needs nearly all clusters for comparable accuracy.
    assert at(sweep.split, 3) < sweep.monolithic - 0.05
    assert at(sweep.split, 10) >= sweep.monolithic - 0.02
    # Document sampling beats centroid-only routing at the design point.
    assert at(sweep.hermes, 2) >= at(sweep.centroid, 2)
    assert at(sweep.hermes, 3) >= at(sweep.centroid, 3)
    # All strategies converge once everything is searched.
    assert abs(at(sweep.hermes, 10) - at(sweep.split, 10)) < 0.02
