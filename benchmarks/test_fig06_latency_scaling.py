"""Figure 6: TTFT and end-to-end latency vs datastore size."""

import pytest

from repro.experiments import fig06


def test_fig06_latency_scaling(run_once):
    points = run_once(fig06.run)
    print("\n" + fig06.render(points))

    by_tokens = {p.datastore_tokens: p for p in points}
    # Paper-quoted E2E anchors within 3%.
    for tokens, expected in fig06.PAPER_E2E.items():
        assert by_tokens[tokens].e2e_s == pytest.approx(expected, rel=0.03)
    # Paper-quoted TTFT retrieval shares within 2 points.
    for tokens, expected in fig06.PAPER_TTFT_RETRIEVAL_SHARE.items():
        assert by_tokens[tokens].retrieval_share_of_ttft == pytest.approx(
            expected, abs=0.02
        )
    # Retrieval comes to dominate TTFT as the store grows.
    shares = [p.retrieval_share_of_ttft for p in points]
    assert shares == sorted(shares)
