"""Thin launcher for the index-construction benchmark harness.

Usage (from the repo root)::

    python benchmarks/bench_build.py [--smoke] [--out BENCH_build.json]

The harness itself lives in :mod:`repro.bench.build` so it is importable and
installable (``hermes-bench-build`` console entry); this wrapper only makes
the checkout runnable without an install.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.build import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
