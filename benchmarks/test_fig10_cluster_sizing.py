"""Figure 10: sizing clusters to hide retrieval under inference."""

from repro.experiments import fig10


def test_fig10_cluster_sizing(run_once):
    points = run_once(fig10.run)
    print("\n" + fig10.to_figure(points).render())

    # Search latency crosses the inference line somewhere inside the sweep.
    assert points[0].hidden
    assert not points[-1].hidden

    max_hidden = fig10.max_hidden_cluster_tokens()
    print(f"max hidden cluster size: {max_hidden:.3g} tokens")
    # The paper's example: ~10B-token clusters hide under Gemma2-9B inference.
    assert 1e9 < max_hidden < 1e11

    # And a 100B store therefore wants on the order of 10 clusters.
    n = fig10.recommended_clusters(100e9)
    print(f"recommended clusters for 100B tokens: {n}")
    assert 5 <= n <= 15
