"""Figure 17: Hermes across inference models and GPU platforms."""

from repro.experiments import fig17
from repro.metrics.reporting import format_table


def test_fig17_model_architectures(run_once):
    points = run_once(fig17.run_models)
    rows = [
        (p.label, p.n_gpus, f"{p.hermes_speedup():.2f}x", f"{p.hermes_energy_saving():.2f}x")
        for p in points
    ]
    print("\n" + format_table(
        ["model", "GPUs", "latency gain", "energy gain"],
        rows,
        title="Figure 17 (left): model-architecture sweep on A6000 Ada",
    ))

    speedups = [p.hermes_speedup() for p in points]
    # Paper: gains shrink as the inference model grows (9.38x Phi -> 3.92x OPT).
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > 2 * speedups[-1] * 0.5  # Phi clearly ahead of OPT
    assert all(s > 1.5 for s in speedups)        # everyone still gains
    # OPT needs 2 GPUs (memory), as in the paper's setup note.
    assert points[-1].n_gpus == 2


def test_fig17_hardware_platforms(run_once):
    points = run_once(fig17.run_hardware)
    rows = [
        (p.label, p.n_gpus, f"{p.hermes_speedup():.2f}x", f"{p.hermes_energy_saving():.2f}x")
        for p in points
    ]
    print("\n" + format_table(
        ["GPU", "count", "latency gain", "energy gain"],
        rows,
        title="Figure 17 (right): GPU-platform sweep with Gemma2-9B",
    ))
    by = {p.label: p for p in points}
    # Gemma2 needs 2 L4s (memory), and gains persist on both platforms.
    assert by["L4"].n_gpus == 2
    assert by["A6000"].n_gpus == 1
    assert by["L4"].hermes_speedup() > 1.5
    assert by["A6000"].hermes_speedup() > 1.5
