"""Ablation: the paper's §2.1 sparse-vs-dense retrieval claims.

§2.1 argues: dense indices "more effectively identify semantic similarity",
sparse term-based retrieval is "better suited for handling rare terms that
cannot be adequately represented through embeddings", and hybrid approaches
combine both. This bench constructs the two query regimes and measures top-1
precision of dense, sparse (BM25), and hybrid (z-fusion) retrieval.

- **semantic queries**: same-topic *synonyms* — the corpus only uses the
  first half of each topic's token pool, queries only the second half, so
  there is zero verbatim overlap; the semantic encoder (topic-shared token
  directions) still aligns them. Dense should win, sparse should fail.
- **rare-term queries**: a unique entity token hosted by exactly one document
  plus two common filler words. Exact matching should win; embeddings dilute
  the lone token among the document's 64 others.
"""

import numpy as np

from repro.ann.flat import FlatIndex
from repro.ann.sparse import BM25Index, HybridRetriever
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder
from repro.metrics.reporting import format_table

RARE_TOKEN_BASE = 10_000_000  # outside the vocabulary: unique entity ids
POOL = 150
HALF = POOL // 2


def build_world(*, n_docs=240, n_rare=24, seed=3):
    vocab = TokenVocabulary(n_topics=6, pool_size=POOL, common_size=80)
    gen = CorpusGenerator(vocab, doc_tokens=64, topical_fraction=0.8, seed=seed)
    docs = gen.generate(n_docs)
    chunks = chunk_documents(docs, chunk_tokens=64)
    rng = np.random.default_rng(seed)
    rare_hosts = rng.choice(len(chunks), size=n_rare, replace=False)

    token_docs = []
    for i, chunk in enumerate(chunks):
        tokens = chunk.tokens.copy()
        # Fold every topical token into the first half of its pool so the
        # second half is reserved for synonym queries.
        for j, t in enumerate(tokens):
            topic = vocab.topic_of_token(int(t))
            if topic >= 0:
                start = vocab.common_size + topic * POOL
                tokens[j] = start + (int(t) - start) % HALF
        if i in rare_hosts:
            slot = int(np.flatnonzero(rare_hosts == i)[0])
            # Entities repeat in real text; two mentions.
            tokens[0] = tokens[1] = RARE_TOKEN_BASE + slot
        token_docs.append(tokens)

    encoder = SyntheticEncoder(
        dim=64, seed=0, semantic_vocab=vocab, semantic_weight=0.55
    )
    embeddings = np.stack([encoder.encode_tokens(t) for t in token_docs])
    dense = FlatIndex(64, "ip")
    dense.add(embeddings)
    sparse = BM25Index()
    sparse.add(token_docs)
    hybrid = HybridRetriever(dense, sparse, candidates=10)
    return vocab, token_docs, encoder, dense, sparse, hybrid, rare_hosts


def _dominant_topic(vocab, tokens):
    topics = [vocab.topic_of_token(int(t)) for t in tokens]
    topics = [t for t in topics if t >= 0]
    if not topics:
        return -1
    return int(np.bincount(topics, minlength=6).argmax())


def run_regimes():
    vocab, token_docs, encoder, dense, sparse, hybrid, rare_hosts = build_world()
    rng = np.random.default_rng(7)

    # Regime 1: synonym queries from the unseen half of each topic pool.
    semantic_hits = {"dense": 0, "sparse": 0, "hybrid": 0}
    n_semantic = 30
    for _ in range(n_semantic):
        topic = int(rng.integers(6))
        start = vocab.common_size + topic * POOL
        q_tokens = rng.choice(
            np.arange(start + HALF, start + POOL), size=12, replace=False
        )
        q_emb = encoder.encode_tokens(q_tokens)[np.newaxis, :]

        def topical(ids):
            top = int(np.asarray(ids).ravel()[0])
            return top >= 0 and _dominant_topic(vocab, token_docs[top]) == topic

        semantic_hits["dense"] += topical(dense.search(q_emb, 1)[1])
        semantic_hits["sparse"] += topical(sparse.search(q_tokens, 1).ids)
        semantic_hits["hybrid"] += topical(hybrid.search(q_emb, [q_tokens], 1))

    # Regime 2: entity lookups — the unique token plus two common fillers.
    rare_hits = {"dense": 0, "sparse": 0, "hybrid": 0}
    for slot, host in enumerate(rare_hosts):
        fillers = rng.integers(0, vocab.common_size, size=2)
        q_tokens = np.concatenate([[RARE_TOKEN_BASE + slot], fillers]).astype(np.int64)
        q_emb = encoder.encode_tokens(q_tokens)[np.newaxis, :]
        rare_hits["dense"] += int(dense.search(q_emb, 1)[1][0, 0] == host)
        rare_hits["sparse"] += int(sparse.search(q_tokens, 1).ids[0] == host)
        rare_hits["hybrid"] += int(hybrid.search(q_emb, [q_tokens], 1)[0, 0] == host)

    n_rare = len(rare_hosts)
    return {
        "semantic": {k: v / n_semantic for k, v in semantic_hits.items()},
        "rare": {k: v / n_rare for k, v in rare_hits.items()},
    }


def test_ablation_sparse_hybrid(run_once):
    results = run_once(run_regimes)
    print("\n" + format_table(
        ["regime", "dense", "sparse (BM25)", "hybrid (z-fusion)"],
        [
            ("semantic (synonym) queries", results["semantic"]["dense"],
             results["semantic"]["sparse"], results["semantic"]["hybrid"]),
            ("rare-term (entity) queries", results["rare"]["dense"],
             results["rare"]["sparse"], results["rare"]["hybrid"]),
        ],
        title="Ablation: §2.1 sparse-vs-dense claims (top-1 precision)",
    ))

    # §2.1 claim 1: dense retrieval captures semantic similarity sparse
    # cannot (zero verbatim overlap here).
    assert results["semantic"]["dense"] > 0.8
    assert results["semantic"]["sparse"] < 0.4
    # §2.1 claim 2: sparse handles rare terms embeddings dilute.
    assert results["rare"]["sparse"] > 0.8
    assert results["rare"]["dense"] < results["rare"]["sparse"] - 0.3
    # §2.1 claim 3: hybrid is competitive in both regimes.
    assert results["semantic"]["hybrid"] > 0.7
    assert results["rare"]["hybrid"] > 0.7
