"""Figure 18: retrieval throughput/energy vs clusters deep-searched."""

import pytest

from repro.experiments import fig18


def test_fig18_clusters(run_once):
    points = run_once(fig18.run)
    print("\n" + fig18.to_figure(points).render())

    # Fewer clusters searched -> higher throughput, less energy.
    tput = [p.throughput_qps for p in points]
    energy = [p.energy_per_batch_j for p in points]
    assert all(b <= a + 1e-9 for a, b in zip(tput, tput[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(energy, energy[1:]))

    # Paper headline at the 3-of-10 design point: 1.81x throughput and
    # 1.77x energy vs the naive all-clusters search.
    ratios = fig18.hermes_vs_naive(points)
    assert ratios["throughput_gain"] == pytest.approx(1.81, rel=0.25)
    assert ratios["energy_saving"] == pytest.approx(1.77, rel=0.25)
