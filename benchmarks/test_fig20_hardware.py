"""Figure 20: retrieval latency/throughput across CPU platforms."""

from repro.experiments import fig20
from repro.metrics.reporting import format_table


def test_fig20_hardware(run_once):
    points = run_once(fig20.run)
    at3 = [p for p in points if p.clusters_searched == 3]
    rows = [
        (p.label, p.batch, p.latency_s, p.throughput_qps) for p in at3
    ]
    print("\n" + format_table(
        ["platform", "batch", "latency (s)", "throughput (QPS)"],
        rows,
        title="Figure 20 at 3 clusters searched",
    ))
    window = fig20.inference_latency_line()
    print(f"Gemma2-9B inference latency line: {window:.2f} s")

    # Paper: the Platinum 8380 leads latency and throughput.
    assert "Platinum" in fig20.best_platform(points)
    by = {(p.label): p for p in at3}
    assert (
        by["Platinum 8380"].throughput_qps > by["Silver 4316"].throughput_qps
    )
    # ARM at batch 128 recovers throughput its per-core speed loses at 32.
    assert (
        by["Neoverse-N1 (BS=128)"].throughput_qps
        > by["Neoverse-N1 (BS=32)"].throughput_qps
    )
    # Latency grows (weakly) with clusters searched on every platform.
    for label in {p.label for p in points}:
        series = sorted(
            (p for p in points if p.label == label),
            key=lambda p: p.clusters_searched,
        )
        assert series[-1].latency_s >= series[0].latency_s - 1e-9
