"""Figure 13: cluster size and access-frequency imbalance."""

from repro.experiments import fig13
from repro.metrics.reporting import format_table


def test_fig13_imbalance(run_once):
    report = run_once(fig13.run)
    rows = [
        (i, int(s), int(a))
        for i, (s, a) in enumerate(zip(report.cluster_sizes, report.access_counts))
    ]
    print("\n" + format_table(
        ["cluster", "size (docs)", "deep accesses"],
        rows,
        title="Figure 13: size and access imbalance",
    ))
    print(
        f"size imbalance {report.size_imbalance:.2f}x, "
        f"access imbalance {report.access_imbalance:.2f}x"
    )

    # Paper: sizes vary up to ~2x after the seed sweep; accesses vary >2x.
    assert 1.2 < report.size_imbalance < 3.0
    assert report.access_imbalance > 1.5
    # Every cluster is still reachable (no starvation).
    assert (report.access_counts > 0).all()
