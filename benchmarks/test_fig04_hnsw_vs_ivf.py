"""Figure 4: HNSW vs IVF latency/throughput/memory."""

from repro.experiments import fig04
from repro.metrics.reporting import format_table


def test_fig04_at_scale(run_once):
    results = run_once(fig04.run, (32, 128))
    rows = []
    for batch, comp in results.items():
        rows.append(
            (
                batch,
                comp.ivf_latency_s,
                comp.hnsw_latency_s,
                comp.ivf_qps,
                comp.hnsw_qps,
            )
        )
    print("\n" + format_table(
        ["batch", "IVF lat (s)", "HNSW lat (s)", "IVF QPS", "HNSW QPS"],
        rows,
        title="Figure 4: 10B-token index comparison",
    ))
    at128 = results[128]
    # Paper: >2.4x latency/throughput advantage, 2.3x memory overhead.
    assert at128.latency_advantage > 2.4
    assert at128.hnsw_qps / at128.ivf_qps > 2.4
    assert 2.0 < at128.memory_overhead < 2.6


def test_fig04_in_vivo(run_once):
    comp = run_once(fig04.in_vivo, n_docs=1200, n_queries=24)
    print(
        f"\nin-vivo: IVF recall {comp.ivf_recall:.2f} / HNSW recall "
        f"{comp.hnsw_recall:.2f}, memory overhead {comp.memory_overhead:.2f}x"
    )
    # The real data structures exhibit the same trade-off: HNSW buys speed
    # with link memory.
    assert comp.memory_overhead > 1.0
    assert comp.hnsw_recall > 0.7
