"""Tests for recall@k."""

import numpy as np
import pytest

from repro.metrics.recall import recall_at_k, recall_curve


class TestRecallAtK:
    def test_perfect(self):
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(truth, truth) == 1.0

    def test_order_insensitive(self):
        truth = np.array([[1, 2, 3]])
        shuffled = np.array([[3, 1, 2]])
        assert recall_at_k(shuffled, truth) == 1.0

    def test_partial(self):
        truth = np.array([[1, 2, 3, 4]])
        retrieved = np.array([[1, 2, 9, 9]])
        assert recall_at_k(retrieved, truth) == 0.5

    def test_padding_never_matches(self):
        truth = np.array([[1, 2]])
        retrieved = np.array([[-1, -1]])
        assert recall_at_k(retrieved, truth) == 0.0

    def test_padded_truth_ignored(self):
        truth = np.array([[1, -1]])
        retrieved = np.array([[1, 5]])
        assert recall_at_k(retrieved, truth) == 1.0

    def test_batch_average(self):
        truth = np.array([[1, 2], [3, 4]])
        retrieved = np.array([[1, 2], [9, 9]])
        assert recall_at_k(retrieved, truth) == 0.5

    def test_mismatched_batch_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((1, 2)), np.zeros((2, 2)))

    def test_all_padded_truth_rejected(self):
        with pytest.raises(ValueError, match="no valid ids"):
            recall_at_k(np.array([[1]]), np.array([[-1]]))


class TestRecallCurve:
    def test_monotone_cutoffs(self):
        truth = np.array([[1, 2, 3, 4, 5]])
        retrieved = np.array([[1, 9, 3, 9, 5]])
        curve = recall_curve(retrieved, truth, (1, 3, 5))
        assert set(curve) == {1, 3, 5}
        assert curve[1] == 1.0
        assert curve[5] == pytest.approx(3 / 5)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            recall_curve(np.array([[1]]), np.array([[1]]), (0,))
