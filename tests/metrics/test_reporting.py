"""Tests for report formatting helpers."""

import pytest

from repro.metrics.reporting import (
    FigureResult,
    Series,
    format_table,
    normalize_to_baseline,
    speedup,
)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [(1, 2.5), (3, 4.0)], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_handles_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [("long-name-here", 1), ("s", 2)])
        lines = text.splitlines()
        # All data lines have the value column starting at the same offset.
        offsets = {line.rstrip().rfind(" ") for line in lines[2:]}
        assert len(offsets) == 1


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series(name="s", x=[1, 2], y=[1])


class TestFigureResult:
    def test_add_and_get(self):
        fig = FigureResult(figure_id="f", description="d")
        fig.add("line", [1, 2], [3, 4])
        assert fig.get("line").y == [3, 4]

    def test_get_missing_raises(self):
        fig = FigureResult(figure_id="f", description="d")
        with pytest.raises(KeyError):
            fig.get("nope")

    def test_render_includes_notes(self):
        fig = FigureResult(figure_id="f", description="d")
        fig.add("line", [1], [2])
        fig.notes.append("a note")
        assert "a note" in fig.render()


class TestRatios:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_normalize(self):
        assert normalize_to_baseline([2.0, 4.0], 4.0) == [0.5, 1.0]

    def test_normalize_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_to_baseline([1.0], 0.0)
