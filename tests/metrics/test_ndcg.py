"""Tests for NDCG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ndcg import dcg, ndcg, ndcg_single


class TestDCG:
    def test_single_item(self):
        assert dcg(np.array([3.0])) == 3.0

    def test_discounting(self):
        # Same relevance later is worth less.
        assert dcg(np.array([1.0, 0.0])) > dcg(np.array([0.0, 1.0]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            dcg(np.zeros((2, 2)))


class TestNDCGSingle:
    def test_perfect_ranking_scores_one(self):
        truth = np.array([5, 3, 9])
        assert ndcg_single(truth, truth) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        truth = np.array([5, 3, 9])
        assert ndcg_single(truth[::-1], truth) < 1.0

    def test_disjoint_scores_zero(self):
        assert ndcg_single(np.array([1, 2, 3]), np.array([7, 8, 9])) == 0.0

    def test_padding_counts_as_miss(self):
        truth = np.array([1, 2])
        padded = np.array([1, -1])
        full = np.array([1, 2])
        assert ndcg_single(padded, truth) < ndcg_single(full, truth)

    def test_order_matters_within_hits(self):
        truth = np.array([1, 2, 3])
        good = np.array([1, 2, 3])
        swapped = np.array([2, 1, 3])
        assert ndcg_single(good, truth) > ndcg_single(swapped, truth)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            ndcg_single(np.array([1]), np.array([]))

    @given(st.permutations(list(range(5))))
    @settings(max_examples=40, deadline=None)
    def test_bounded_zero_one(self, perm):
        truth = np.arange(5)
        score = ndcg_single(np.array(perm), truth)
        assert 0.0 <= score <= 1.0

    @given(st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_identity_is_maximal(self, perm):
        truth = np.arange(6)
        assert ndcg_single(np.array(perm), truth) <= ndcg_single(truth, truth) + 1e-12


class TestNDCGBatch:
    def test_mean_over_queries(self):
        truth = np.array([[1, 2], [3, 4]])
        retrieved = np.array([[1, 2], [9, 9]])
        score = ndcg(retrieved, truth)
        assert score == pytest.approx((1.0 + 0.0) / 2)

    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            ndcg(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_accepts_1d_as_single_query(self):
        assert ndcg(np.array([1, 2]), np.array([1, 2])) == pytest.approx(1.0)
