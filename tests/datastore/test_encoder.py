"""Tests for the deterministic bag-of-tokens encoder."""

import numpy as np
import pytest

from repro.ann.kmeans import kmeans
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder


@pytest.fixture(scope="module")
def encoder():
    return SyntheticEncoder(dim=32, seed=0)


class TestTokenVectors:
    def test_unit_norm(self, encoder):
        assert np.isclose(np.linalg.norm(encoder.token_vector(42)), 1.0, atol=1e-5)

    def test_deterministic_across_instances(self):
        a = SyntheticEncoder(dim=32, seed=0)
        b = SyntheticEncoder(dim=32, seed=0)
        assert np.array_equal(a.token_vector(7), b.token_vector(7))

    def test_seed_changes_mapping(self):
        a = SyntheticEncoder(dim=32, seed=0)
        b = SyntheticEncoder(dim=32, seed=1)
        assert not np.array_equal(a.token_vector(7), b.token_vector(7))

    def test_distinct_tokens_nearly_orthogonal(self, encoder):
        sims = [
            abs(float(encoder.token_vector(i) @ encoder.token_vector(i + 1)))
            for i in range(20)
        ]
        assert np.mean(sims) < 0.3


class TestEncoding:
    def test_output_unit_norm(self, encoder):
        emb = encoder.encode_tokens(np.array([1, 2, 3]))
        assert np.isclose(np.linalg.norm(emb), 1.0, atol=1e-5)

    def test_empty_sequence_rejected(self, encoder):
        with pytest.raises(ValueError, match="empty"):
            encoder.encode_tokens(np.array([], dtype=np.int64))

    def test_shared_tokens_increase_similarity(self, encoder):
        a = encoder.encode_tokens(np.array([1, 2, 3, 4]))
        b = encoder.encode_tokens(np.array([1, 2, 3, 5]))
        c = encoder.encode_tokens(np.array([100, 101, 102, 103]))
        assert float(a @ b) > float(a @ c)

    def test_order_invariant(self, encoder):
        a = encoder.encode_tokens(np.array([1, 2, 3]))
        b = encoder.encode_tokens(np.array([3, 1, 2]))
        assert np.allclose(a, b, atol=1e-6)


class TestTextInterface:
    def test_tokenize_parses_tok_words(self):
        ids = SyntheticEncoder.tokenize("tok5 tok70 tok9")
        assert list(ids) == [5, 70, 9]

    def test_tokenize_hashes_free_text(self):
        ids = SyntheticEncoder.tokenize("hello world")
        assert len(ids) == 2 and (ids >= 0).all()

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            SyntheticEncoder.tokenize("   ")

    def test_encode_text_matches_encode_tokens(self, encoder):
        via_text = encoder.encode_text("tok1 tok2 tok3")
        via_tokens = encoder.encode_tokens(np.array([1, 2, 3]))
        assert np.allclose(via_text, via_tokens)

    def test_encode_batch_shape(self, encoder):
        out = encoder.encode_batch(["tok1 tok2", "tok3"])
        assert out.shape == (2, 32)

    def test_encode_batch_empty(self, encoder):
        assert encoder.encode_batch([]).shape == (0, 32)

    def test_oov_ids_clear_of_vocab_namespace(self):
        from repro.datastore.encoder import OOV_TOKEN_OFFSET

        ids = SyntheticEncoder.tokenize("hello tok12 world")
        assert ids[1] == 12
        assert ids[0] >= OOV_TOKEN_OFFSET and ids[2] >= OOV_TOKEN_OFFSET
        # int64-representable (np.asarray in tokenize would overflow otherwise)
        assert ids.dtype == np.int64 and (ids > 0).all()

    def test_oov_hash_distinguishes_words(self):
        a, b = SyntheticEncoder.tokenize("alpha beta")
        assert a != b


class TestHashSeedStability:
    """Free-form text must encode bit-identically across processes.

    Regression: ``tokenize`` used Python's salted ``hash()`` for unknown
    words, so the same query embedded differently under different
    ``PYTHONHASHSEED`` values — breaking exact-cache digest replay across
    restarts and thread/process parity.
    """

    SCRIPT = (
        "import sys; import numpy as np; "
        "from repro.datastore.encoder import SyntheticEncoder; "
        "e = SyntheticEncoder(dim=32, seed=0); "
        "emb = e.encode_text('what is retrieval augmented generation'); "
        "sys.stdout.buffer.write(emb.tobytes())"
    )

    def _encode_in_subprocess(self, hash_seed: str) -> bytes:
        import os
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        out = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env,
            capture_output=True,
            check=True,
        )
        return out.stdout

    def test_encode_text_bit_identical_across_hash_seeds(self):
        first = self._encode_in_subprocess("0")
        second = self._encode_in_subprocess("424242")
        assert len(first) == 32 * 4
        assert first == second

    def test_subprocess_matches_in_process(self, encoder):
        emb = encoder.encode_text("what is retrieval augmented generation")
        assert self._encode_in_subprocess("1").startswith(emb.tobytes())


class TestEndToEndTopicStructure:
    def test_chunk_embeddings_cluster_by_topic(self):
        """The full offline path: tokens -> chunks -> encoder -> K-means
        recovers the latent topics (the property Hermes's clustering uses)."""
        vocab = TokenVocabulary(n_topics=4, pool_size=200, common_size=100)
        gen = CorpusGenerator(vocab, doc_tokens=128, topical_fraction=0.8, seed=1)
        docs = gen.generate(120)
        chunks = chunk_documents(docs, chunk_tokens=64)
        encoder = SyntheticEncoder(dim=48, seed=0)
        emb = encoder.encode_chunks(chunks)
        result = kmeans(emb, 4, seed=0)
        purity = []
        labels = np.array([c.topic for c in chunks])
        for cid in range(4):
            members = labels[result.assignments == cid]
            if len(members):
                purity.append(np.bincount(members).max() / len(members))
        assert np.mean(purity) > 0.85
