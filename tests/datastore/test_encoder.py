"""Tests for the deterministic bag-of-tokens encoder."""

import numpy as np
import pytest

from repro.ann.kmeans import kmeans
from repro.datastore.corpus import CorpusGenerator, TokenVocabulary, chunk_documents
from repro.datastore.encoder import SyntheticEncoder


@pytest.fixture(scope="module")
def encoder():
    return SyntheticEncoder(dim=32, seed=0)


class TestTokenVectors:
    def test_unit_norm(self, encoder):
        assert np.isclose(np.linalg.norm(encoder.token_vector(42)), 1.0, atol=1e-5)

    def test_deterministic_across_instances(self):
        a = SyntheticEncoder(dim=32, seed=0)
        b = SyntheticEncoder(dim=32, seed=0)
        assert np.array_equal(a.token_vector(7), b.token_vector(7))

    def test_seed_changes_mapping(self):
        a = SyntheticEncoder(dim=32, seed=0)
        b = SyntheticEncoder(dim=32, seed=1)
        assert not np.array_equal(a.token_vector(7), b.token_vector(7))

    def test_distinct_tokens_nearly_orthogonal(self, encoder):
        sims = [
            abs(float(encoder.token_vector(i) @ encoder.token_vector(i + 1)))
            for i in range(20)
        ]
        assert np.mean(sims) < 0.3


class TestEncoding:
    def test_output_unit_norm(self, encoder):
        emb = encoder.encode_tokens(np.array([1, 2, 3]))
        assert np.isclose(np.linalg.norm(emb), 1.0, atol=1e-5)

    def test_empty_sequence_rejected(self, encoder):
        with pytest.raises(ValueError, match="empty"):
            encoder.encode_tokens(np.array([], dtype=np.int64))

    def test_shared_tokens_increase_similarity(self, encoder):
        a = encoder.encode_tokens(np.array([1, 2, 3, 4]))
        b = encoder.encode_tokens(np.array([1, 2, 3, 5]))
        c = encoder.encode_tokens(np.array([100, 101, 102, 103]))
        assert float(a @ b) > float(a @ c)

    def test_order_invariant(self, encoder):
        a = encoder.encode_tokens(np.array([1, 2, 3]))
        b = encoder.encode_tokens(np.array([3, 1, 2]))
        assert np.allclose(a, b, atol=1e-6)


class TestTextInterface:
    def test_tokenize_parses_tok_words(self):
        ids = SyntheticEncoder.tokenize("tok5 tok70 tok9")
        assert list(ids) == [5, 70, 9]

    def test_tokenize_hashes_free_text(self):
        ids = SyntheticEncoder.tokenize("hello world")
        assert len(ids) == 2 and (ids >= 0).all()

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            SyntheticEncoder.tokenize("   ")

    def test_encode_text_matches_encode_tokens(self, encoder):
        via_text = encoder.encode_text("tok1 tok2 tok3")
        via_tokens = encoder.encode_tokens(np.array([1, 2, 3]))
        assert np.allclose(via_text, via_tokens)

    def test_encode_batch_shape(self, encoder):
        out = encoder.encode_batch(["tok1 tok2", "tok3"])
        assert out.shape == (2, 32)

    def test_encode_batch_empty(self, encoder):
        assert encoder.encode_batch([]).shape == (0, 32)


class TestEndToEndTopicStructure:
    def test_chunk_embeddings_cluster_by_topic(self):
        """The full offline path: tokens -> chunks -> encoder -> K-means
        recovers the latent topics (the property Hermes's clustering uses)."""
        vocab = TokenVocabulary(n_topics=4, pool_size=200, common_size=100)
        gen = CorpusGenerator(vocab, doc_tokens=128, topical_fraction=0.8, seed=1)
        docs = gen.generate(120)
        chunks = chunk_documents(docs, chunk_tokens=64)
        encoder = SyntheticEncoder(dim=48, seed=0)
        emb = encoder.encode_chunks(chunks)
        result = kmeans(emb, 4, seed=0)
        purity = []
        labels = np.array([c.topic for c in chunks])
        for cid in range(4):
            members = labels[result.assignments == cid]
            if len(members):
                purity.append(np.bincount(members).max() / len(members))
        assert np.mean(purity) > 0.85
