"""Tests for the token corpus generator and chunking."""

import numpy as np
import pytest

from repro.datastore.corpus import (
    Chunk,
    CorpusGenerator,
    TokenVocabulary,
    chunk_documents,
    datastore_tokens,
    tokens_to_vectors,
)


@pytest.fixture(scope="module")
def vocab():
    return TokenVocabulary(n_topics=4, pool_size=100, common_size=50)


@pytest.fixture(scope="module")
def docs(vocab):
    gen = CorpusGenerator(vocab, doc_tokens=130, topical_fraction=0.7, seed=0)
    return gen.generate(20)


class TestVocabulary:
    def test_size(self, vocab):
        assert vocab.size == 50 + 4 * 100

    def test_pools_disjoint(self, vocab):
        pools = [set(vocab.topic_pool(t)) for t in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not pools[i] & pools[j]

    def test_topic_of_token_roundtrip(self, vocab):
        for topic in range(4):
            for token in vocab.topic_pool(topic)[:3]:
                assert vocab.topic_of_token(int(token)) == topic

    def test_common_tokens_have_no_topic(self, vocab):
        assert vocab.topic_of_token(10) == -1

    def test_out_of_range_topic_rejected(self, vocab):
        with pytest.raises(ValueError):
            vocab.topic_pool(4)


class TestGenerator:
    def test_document_length(self, docs):
        assert all(len(d) == 130 for d in docs)

    def test_topical_tokens_match_document_topic(self, docs, vocab):
        for doc in docs:
            topical = [
                vocab.topic_of_token(int(t)) for t in doc.tokens
                if vocab.topic_of_token(int(t)) >= 0
            ]
            # All topical tokens come from the document's own pool.
            assert set(topical) == {doc.topic}

    def test_topical_fraction_respected(self, docs, vocab):
        fractions = [
            sum(1 for t in d.tokens if vocab.topic_of_token(int(t)) >= 0) / len(d)
            for d in docs
        ]
        assert abs(np.mean(fractions) - 0.7) < 0.05

    def test_deterministic(self, vocab):
        a = CorpusGenerator(vocab, seed=5).generate(5)
        b = CorpusGenerator(vocab, seed=5).generate(5)
        for da, db in zip(a, b):
            assert np.array_equal(da.tokens, db.tokens)

    def test_bad_fraction_rejected(self, vocab):
        with pytest.raises(ValueError, match="topical_fraction"):
            CorpusGenerator(vocab, topical_fraction=1.5)


class TestChunking:
    def test_chunk_ids_contiguous(self, docs):
        chunks = chunk_documents(docs, chunk_tokens=64)
        assert [c.chunk_id for c in chunks] == list(range(len(chunks)))

    def test_tokens_preserved(self, docs):
        chunks = chunk_documents(docs, chunk_tokens=64)
        assert datastore_tokens(chunks) == sum(len(d) for d in docs)

    def test_final_partial_chunk_kept(self, docs):
        chunks = chunk_documents(docs, chunk_tokens=64)
        # 130-token docs -> 64 + 64 + 2.
        per_doc = {}
        for c in chunks:
            per_doc.setdefault(c.doc_id, []).append(len(c))
        for lengths in per_doc.values():
            assert lengths == [64, 64, 2]

    def test_chunks_inherit_topic(self, docs):
        chunks = chunk_documents(docs, chunk_tokens=64)
        by_doc = {d.doc_id: d.topic for d in docs}
        assert all(c.topic == by_doc[c.doc_id] for c in chunks)

    def test_rejects_nonpositive_chunk(self, docs):
        with pytest.raises(ValueError):
            chunk_documents(docs, chunk_tokens=0)


class TestTextRendering:
    def test_text_roundtrips_token_ids(self):
        chunk = Chunk(chunk_id=0, doc_id=0, topic=0, tokens=np.array([5, 9, 11]))
        assert chunk.text() == "tok5 tok9 tok11"


class TestTokenAccounting:
    def test_tokens_to_vectors(self):
        assert tokens_to_vectors(6400, chunk_tokens=64) == 100

    def test_rejects_bad_chunk_tokens(self):
        with pytest.raises(ValueError):
            tokens_to_vectors(100, chunk_tokens=0)
